"""Query shipping vs page shipping: move the query, not the pages.

The paper's design keeps one database engine and extends its buffer
pool into remote memory — a *page shipping* architecture: on a miss,
an 8K page crosses the RDMA fabric.  "The End of Slow Networks"
(Binnig et al.) argues that once the network is this fast you can
instead partition the data and move *tuples* between co-located
shards — *query shipping* — or split compute from memory entirely
(the NAM-style *hybrid*).

This script runs one TPC-H-derived join (customer JOIN orders, top-N
by projected tuple) under all three strategies on identical virtual
hardware — same servers, NICs, disks; only placement differs:

* **page**   — all data on DB server 0, buffer-pool extension in
               remote memory; misses pull pages over RDMA.
* **query**  — each server owns a hash shard in local DRAM; fragments
               shuffle probe tuples through credit-flow-controlled
               RDMA exchanges and gather at the root.
* **hybrid** — shards *and* remote extensions: fragments fault pages
               from memory servers and still exchange tuples.

All three must return row-identical results (the planner projects the
probe table's primary key, so the top-N order is total).  A second
query-shipping run turns on Bloom-filter semi-join pushdown: the build
side's join keys are shipped ahead as a compact filter, so probe rows
with no join partner never hit the wire.

Run:  python examples/query_shipping.py
"""

from dataclasses import replace

from repro.dist import DistQuery, DistSpec, Strategy, build_strategy, execute_query
from repro.harness import format_table
from repro.workloads import TpchScale

SCALE = TpchScale(orders=600, lines_per_order=2, customers=150, parts=100, suppliers=25)
SEED = 11

SPEC = DistSpec(
    name="example", db_servers=2, bp_pages=160, tempdb_pages=256,
    data_spindles=2, db_cores=4, seed=SEED,
)

QUERY = DistQuery(
    name="cust_orders",
    build_table="customer", build_key="custkey",
    probe_table="orders", probe_key="custkey",
    build_filter=("acctbal", "<", 40.0),
    probe_filter=("orderdate", "<", 2000),
    projection=(("build", "custkey"), ("build", "acctbal"),
                ("probe", "orderkey"), ("probe", "totalprice")),
    top_n=400,
)


def run(strategy: Strategy, query: DistQuery):
    setup = build_strategy(
        strategy, SPEC, total_ext_pages=1024, scale=SCALE, seed=SEED
    )
    return execute_query(setup, query)


def main() -> None:
    results = {s: run(s, QUERY) for s in Strategy}

    rows = [
        [
            result.strategy,
            len(result.rows),
            f"{result.elapsed_us:,.1f}",
            result.metrics["exchange_rows"],
            result.metrics["exchange_bytes"],
            f"{result.metrics['credit_stalls_us']:,.1f}",
        ]
        for result in results.values()
    ]
    print(format_table(
        ["strategy", "rows", "elapsed (us)", "shuffled rows",
         "shuffled bytes", "credit stalls (us)"],
        rows, title="customer JOIN orders: three placements, one answer",
    ))

    reference = results[Strategy.PAGE].rows
    assert all(r.rows == reference for r in results.values())
    print(f"\nall three strategies returned the same {len(reference)} rows")

    plain = results[Strategy.QUERY]
    pushed = run(Strategy.QUERY, replace(QUERY, semijoin=True))
    assert pushed.rows == reference
    print(
        "semi-join pushdown: "
        f"{plain.metrics['exchange_bytes']:,} -> "
        f"{pushed.metrics['exchange_bytes']:,} shuffled bytes "
        f"({pushed.metrics['bloom_filtered_rows']} probe rows never "
        "crossed the wire)"
    )


if __name__ == "__main__":
    main()
