"""Quickstart: lease remote memory, mount a file on it, run queries.

Builds a two-server cluster (one database server under memory pressure,
one memory server with spare RAM), brokers the spare memory, mounts a
buffer-pool extension on it, and shows the speedup on a simple
key-range workload — the paper's core idea in ~80 lines.

Run:  python examples/quickstart.py
"""

from repro.harness import Design, build_database, prewarm_extension
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

N_ROWS = 60_000     # ~15 MB Customer table
LOCAL_POOL = 512    # pages of local buffer pool (~4 MB): memory pressure!
REMOTE_EXT = 3000   # pages of remote-memory extension (covers the table)


def run(design: Design) -> float:
    setup = build_database(
        design,
        bp_pages=LOCAL_POOL,
        bpext_pages=REMOTE_EXT,
        tempdb_pages=1024,
    )
    database = setup.database
    table = build_customer_table(database, N_ROWS)
    prewarm_extension(setup)  # steady state: extension already populated
    config = RangeScanConfig(n_rows=N_ROWS, workers=40, queries_per_worker=25)
    report = run_rangescan(database, table, config)
    return report.throughput_qps


def main() -> None:
    print("RangeScan on a database 4x larger than local memory")
    print("-" * 55)
    baseline = run(Design.HDD_SSD)
    print(f"HDD+SSD (no remote memory) : {baseline:10,.0f} queries/sec")
    custom = run(Design.CUSTOM)
    print(f"Custom (remote mem + RDMA) : {custom:10,.0f} queries/sec")
    print(f"speedup                    : {custom / baseline:10.1f}x")


if __name__ == "__main__":
    main()
