"""Trace one TPC-H query end to end and export it for Perfetto.

Builds the Custom design (remote-memory BPExt over RDMA), installs the
telemetry recorder, runs one TPC-H query, and writes ``trace.json`` in
Chrome trace-event format — load it at https://ui.perfetto.dev or
``about:tracing`` to see the query, its operators, the page faults they
trigger and the RDMA/NIC work those fan out to, each on its own track.
Also prints the critical-path decomposition of the query's latency
(the simulation-side analogue of the paper's Figure 11/14 drill-downs).

Run:  python examples/trace_a_query.py [output.json]
"""

import json
import sys

from repro.harness import Design, build_database, format_metrics, prewarm_extension
from repro.telemetry import (
    decompose,
    format_breakdown,
    install,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.workloads.tpch import TPCH_QUERIES, build_tpch_database

QUERY_NAME = "Q5"  # a join-heavy query: operators, faults, RDMA traffic


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"

    setup = build_database(
        Design.CUSTOM, bp_pages=256, bpext_pages=2600,
        tempdb_pages=49152, analytic=True, seed=7,
    )
    database = setup.database
    tables = build_tpch_database(database)
    prewarm_extension(setup)

    # Install the recorder only now: loading the tables is setup noise.
    tracer = install(setup.sim)

    spec = next(s for s in TPCH_QUERIES if s.name == QUERY_NAME)
    plan, memory, consumers = spec.factory(
        database, tables, setup.cluster.rng.stream("trace-example")
    )
    result = setup.run(database.execute(plan, memory, consumers))

    write_chrome_trace(tracer, out_path, label=f"TPC-H {QUERY_NAME} (Custom)")
    with open(out_path) as fh:
        events = validate_chrome_trace(json.load(fh))

    root = tracer.find("query")[0]
    depth = tracer.max_depth()
    print(f"TPC-H {QUERY_NAME} on the Custom design")
    print(f"  rows out        : {len(result.rows):,}")
    print(f"  latency         : {result.elapsed_us:,.0f} us (virtual)")
    print(f"  spans recorded  : {len(tracer.spans):,} ({len(events):,} trace events)")
    print(f"  deepest nesting : {depth} levels")
    print(f"  trace written   : {out_path}  (load in ui.perfetto.dev)")
    print()
    print(format_breakdown(decompose(tracer, root), title=f"{QUERY_NAME} critical path"))
    print()
    print(format_metrics(setup.metrics, prefix="bp", title="buffer pool metrics"))

    # The acceptance bar for the example: a real causal chain at least
    # query -> operator -> fault -> transfer -> NIC deep.
    assert depth >= 4, f"expected >= 4 nested span levels, got {depth}"


if __name__ == "__main__":
    main()
