"""Fleet walkthrough: two tenants trading memory across one pool.

Builds a 2-tenant × 4-memory-server fleet twice — once statically
partitioned, once with the marketplace rebalancing leases from demand
signals — and runs the same anti-phase diurnal traffic against both.
Acme peaks while Zen sleeps and vice versa, so a static split wastes
half the pool at any moment; the marketplace follows the sun, shrinking
the idle tenant to its floor and growing the busy one.

Run:  PYTHONPATH=src python examples/fleet_marketplace.py
"""

from repro.fleet import (
    DiurnalShape,
    FleetSpec,
    MarketplacePolicy,
    QosClass,
    TenantSpec,
    build_fleet,
    run_fleet,
)

PERIOD_US = 24e6
EPOCHS = 24


def fleet_spec() -> FleetSpec:
    return FleetSpec(
        name="example",
        memory_servers=4,
        tenants=(
            TenantSpec(
                name="acme", replicas=1, ext_pages=384, bp_pages=64,
                peak_queries_per_epoch=90, workers=8, n_rows=24_000,
                floor_pages=256,
                shape=DiurnalShape(period_us=PERIOD_US, low=0.05, high=1.0,
                                   phase=0.0),
            ),
            TenantSpec(
                name="zen", qos=QosClass.GOLD, replicas=1, ext_pages=384,
                bp_pages=64, peak_queries_per_epoch=90, workers=8,
                n_rows=24_000, floor_pages=256,
                shape=DiurnalShape(period_us=PERIOD_US, low=0.05, high=1.0,
                                   phase=0.5),
            ),
        ),
    )


def run(marketplace: bool):
    policy = MarketplacePolicy(period_us=1e6, cooldown_us=4e6, min_delta_pages=256)
    setup = build_fleet(fleet_spec(), marketplace=policy if marketplace else None)
    report = run_fleet(setup, epochs=EPOCHS, epoch_us=1e6)
    return setup, report


def main() -> None:
    _static_setup, static = run(marketplace=False)
    market_setup, market = run(marketplace=True)

    print("Two tenants, anti-phase diurnal load, one 4-server memory pool\n")
    print(f"{'tenant':8} {'mode':12} {'queries':>8} {'p50 ms':>8} "
          f"{'p99 ms':>8} {'ext pages':>10} {'resizes':>8}")
    for name in sorted(static.tenants):
        for mode, report in (("static", static), ("marketplace", market)):
            t = report.tenants[name]
            print(f"{name:8} {mode:12} {t['queries']:>8} "
                  f"{t['latency_p50_ms']:>8.3f} {t['latency_p99_ms']:>8.3f} "
                  f"{t['ext_pages_final']:>10} {t['resizes']:>8}")

    ms = market.marketplace
    print(f"\nmarketplace: {ms['rounds']} rounds, {ms['resizes']} resizes, "
          f"{ms['reclaimed_pages']} pages reclaimed, "
          f"{ms['granted_pages']} pages granted")
    for name in sorted(static.tenants):
        before = static.tenants[name]["latency_p99_ms"]
        after = market.tenants[name]["latency_p99_ms"]
        print(f"  {name}: p99 {before:.3f} ms -> {after:.3f} ms "
              f"({before / after:.2f}x)")

    # The broker's books must balance after any amount of reallocation.
    consistency = market.consistency
    print(f"\nbroker consistent: {consistency['active_leases']} active leases "
          f"== {consistency['recorded_leases']} metadata records")


if __name__ == "__main__":
    main()
