"""Fault injection: crash a memory server mid-workload, watch recovery.

Remote memory is best-effort (paper Section 4.1.5): when the provider
backing the buffer-pool extension dies, queries must keep returning
correct results — the engine re-faults pages from the local base file,
throughput sags toward the disk baseline, and once the server returns
and the extension is rebuilt on fresh leases the rate climbs back.

This script schedules a deterministic, seeded crash of "mem0" ten
virtual milliseconds into a RangeScan run, lets the fault engine
restore it twenty milliseconds later, and prints the per-fault recovery
record: detection latency, pages lost, re-faults, time until
throughput is back above threshold.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import Design, build_database, prewarm_extension, rebuild_extension
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

N_ROWS = 20_000
SEED = 42
CRASH_AFTER_US = 10_000
CRASH_DURATION_US = 20_000


def run(inject_fault: bool):
    setup = build_database(Design.CUSTOM, bp_pages=192, bpext_pages=900, seed=SEED)
    table = build_customer_table(setup.database, n_rows=N_ROWS)
    prewarm_extension(setup)  # steady state: extension already warm
    extension = setup.database.pool.extension

    monitor = RecoveryMonitor(setup.sim)
    monitor.track_extension(extension)  # stamps detection, counts re-faults
    if inject_fault:
        engine = FaultEngine.for_setup(
            setup,
            monitor=monitor,
            # Once the provider's memory is re-offered, swap a fresh
            # remote store into the extension (it re-warms via eviction).
            on_provider_restored=lambda _name: rebuild_extension(setup),
        )
        plan = FaultPlan(seed=SEED).crash(
            setup.sim.now + CRASH_AFTER_US, "mem0", duration_us=CRASH_DURATION_US
        )
        engine.run_plan(plan)
        monitor.watch_recovery(
            lambda: extension.hits, threshold_per_s=5_000.0, interval_us=10_000
        )

    config = RangeScanConfig(n_rows=N_ROWS, workers=8, queries_per_worker=120, seed=SEED)
    report = run_rangescan(setup.database, table, config)
    return report, monitor, extension


def main() -> None:
    healthy, _, _ = run(inject_fault=False)
    print(f"healthy run      : {healthy.throughput_qps:10,.0f} queries/sec")

    faulted, monitor, extension = run(inject_fault=True)
    print(f"crash-injected   : {faulted.throughput_qps:10,.0f} queries/sec")
    print(f"pages lost       : {extension.pages_lost_to_faults:10,}")
    print(f"re-faults to disk: {extension.failures:10,}")
    print()
    print(monitor.report())

    record = monitor.records[0]
    assert record.detected_at_us is not None, "fault was never observed"
    assert record.recovered_at_us is not None, "throughput never recovered"
    print()
    print(f"detection latency   : {record.detection_latency_us:8,.0f} us")
    print(f"recovered throughput: {record.recovery_latency_us:8,.0f} us after restore")


if __name__ == "__main__":
    main()
