"""Spilling Hash+Sort to TempDB in remote memory (Section 3.2).

Runs the paper's Hash+Sort stress query — a join plus a top-N sort
whose memory grant is far smaller than its inputs — with TempDB on the
SSD and then in remote memory, and prints the phase behaviour.

Run:  python examples/tempdb_spill.py
"""

from repro.harness import Design, build_database
from repro.workloads import HashSortConfig, build_hashsort_tables, run_hashsort


def run(design: Design, config: HashSortConfig):
    setup = build_database(
        design,
        bp_pages=32768,            # data fits in local memory ...
        bpext_pages=0,
        tempdb_pages=64 * 1024,    # ... but the operators must spill
        analytic=True,
        workspace_bytes=48 * 1024 * 1024,
    )
    database = setup.database
    lineitem, orders = build_hashsort_tables(database, config)
    run_hashsort(database, lineitem, orders, config)  # warm the data cache
    return run_hashsort(database, lineitem, orders, config)


def main() -> None:
    config = HashSortConfig(n_orders=20_000)
    print("SELECT TOP-N * FROM lineitem JOIN orders ORDER BY extendedprice")
    print("-" * 64)
    for design in (Design.HDD_SSD, Design.CUSTOM):
        report = run(design, config)
        print(
            f"{design.value:<10s}: {report.elapsed_us / 1e6:6.2f} s "
            f"(spilled {report.spilled_bytes / 1e6:5.0f} MB, "
            f"{report.tempdb_writes} page writes, "
            f"{report.tempdb_reads} page reads)"
        )
    print("\nSame spill volume either way — the medium under TempDB is")
    print("the whole difference, exactly the paper's Figure 14.")


if __name__ == "__main__":
    main()
