"""An in-RDBMS semantic cache pinned in remote memory (Section 3.3).

Materializes a query's result into remote memory, answers matching
queries from the cache, survives a remote-node failure by falling back
to the base plan, and finally recovers the cache on another provider by
replaying the transaction log (Appendix B.4).

Run:  python examples/semantic_cache.py
"""

from repro.broker import MemoryProxy
from repro.engine import RemotePageFile, SemanticCache
from repro.engine.wal import LogRecord, LogRecordKind
from repro.harness import Design, build_database
from repro.storage import MB


def main() -> None:
    setup = build_database(Design.CUSTOM, bp_pages=1024, bpext_pages=1024,
                           tempdb_pages=4096)
    database = setup.database
    sim = database.sim
    cache = SemanticCache(database)
    # Extra remote memory for the cache (it is its own memory broker,
    # separate from the buffer pool).
    extra = MemoryProxy(setup.memory_servers[0], setup.broker, mr_bytes=16 * MB)
    setup.run(extra.offer_available(limit_bytes=256 * MB))

    result_rows = [(key, key * 3.14) for key in range(20_000)]
    file = setup.run(setup.remote_fs.create("mv", 64 * MB))
    setup.run(file.open())
    store = RemotePageFile(6000, file, capacity_pages=4096)
    view = setup.run(cache.create_view(
        "monthly_revenue", "Q-rev", result_rows, row_bytes=24, store=store,
    ))
    setup.run(database.wal.checkpoint())
    view.checkpoint_lsn = database.wal.checkpoint_lsn

    # A matching query answers straight from the pinned view.
    matched = cache.match("Q-rev")
    start = sim.now
    rows = setup.run(cache.scan_view(matched))
    print(f"answered from the semantic cache: {len(rows)} rows "
          f"in {(sim.now - start) / 1000:.2f} ms")

    # Updates since the checkpoint (logged, so REDO can recover them).
    for key in range(2_000):
        database.wal.records.append(LogRecord(
            lsn=database.wal.next_lsn(), kind=LogRecordKind.UPDATE,
            table="mv", key=key, row=(key, float(key)), payload_bytes=128,
        ))

    # The provider fails: the cache invalidates, queries fall back.
    view.valid = False
    print("remote node lost -> cache invalid; queries use the base plan")

    # Rebuild on a fresh provider by REDO from the log.
    new_file = setup.run(setup.remote_fs.create("mv2", 64 * MB))
    setup.run(new_file.open())
    new_store = RemotePageFile(6001, new_file, capacity_pages=4096)
    start = sim.now
    applied = setup.run(cache.recover_view("Q-rev", new_store, result_rows))
    print(f"recovered by replaying {applied} log records "
          f"in {(sim.now - start) / 1000:.2f} ms; cache valid again: "
          f"{cache.match('Q-rev') is not None}")


if __name__ == "__main__":
    main()
