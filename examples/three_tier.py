"""Three-tier hierarchy: DRAM pool -> SSD tier -> remote memory.

The paper's Section 8 sketches a multi-level memory hierarchy as future
work.  With the declarative tier grammar it is *data*: this example
builds a DRAM -> SSD -> remote stack from a :class:`repro.tiers.TierSpec`
alone — no design enum entry, no harness branches — runs a key-range
workload against it, and prints where every page access was served.

Evicted pages park in the hot SSD tier first; when that tier fills, its
coldest pages demote to the larger remote tier instead of being dropped;
a hit at the remote tier promotes the page back into the SSD tier.

Run:  python examples/three_tier.py
"""

from repro.harness import build_database, prewarm_extension
from repro.tiers import TierDef, TierSpec
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

N_ROWS = 60_000     # ~15 MB Customer table
LOCAL_POOL = 512    # DRAM pool pages: memory pressure
EXT_PAGES = 3000    # split 1:2 between the SSD and remote tiers

SPEC = TierSpec(
    name="ThreeTierDemo",
    extension=(
        TierDef(medium="ssd", share=1.0),
        TierDef(medium="remote", share=2.0, promote_on_hit=True),
    ),
    tempdb="remote",
    semcache="remote",
    protocol="ndspi",
    sync_remote_io=True,
)


def main() -> None:
    setup = build_database(
        SPEC, bp_pages=LOCAL_POOL, bpext_pages=EXT_PAGES, tempdb_pages=1024,
    )
    database = setup.database
    table = build_customer_table(database, N_ROWS)
    prewarm_extension(setup)

    config = RangeScanConfig(n_rows=N_ROWS, workers=40, queries_per_worker=25)
    report = run_rangescan(database, table, config)

    pool = database.pool
    stack = pool.extension
    print(f"RangeScan over a {SPEC.name} stack "
          f"({report.throughput_qps:,.0f} queries/sec)")
    print("-" * 58)
    print(f"{'DRAM pool hits':28s}: {pool.hits:10,d}")
    for level in stack.levels:
        tier = level.tier
        print(f"{tier.name + ' (' + tier.latency_class + ') hits':28s}: "
              f"{level.hits:10,d}   parked {level.parked_pages:,d}"
              f"/{level.capacity_pages:,d} pages")
    print(f"{'base-file (HDD) reads':28s}: {pool.base_reads:10,d}")
    print(f"{'demotions ssd -> remote':28s}: {stack.demotions:10,d}")
    print(f"{'promotions remote -> ssd':28s}: {stack.promotions:10,d}")


if __name__ == "__main__":
    main()
