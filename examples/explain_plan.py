"""One logical plan, three physical plans: explain the IR lowerings.

Queries are declarative :mod:`repro.plan` trees — Scan / Filter /
Project / Join / Aggregate / TopN with schemas derived bottom-up.
Nothing in the logical plan names a server, an exchange, or a physical
operator; those appear only when the plan is *lowered*:

* **single-node (page shipping)** — the plan fuses into the engine's
  operators: filter chains become TableScan predicates, a Project over
  a Join becomes the join's combine function;
* **distributed (query / hybrid shipping)** —
  :func:`repro.dist.place_exchanges` first rewrites the *logical* tree,
  inserting shuffle/gather Exchange nodes wherever tuples must cross
  the RDMA fabric, then each fragment lowers the placed tree against
  its own shard.

This script prints all three views for a three-table star join (part
JOIN lineitem JOIN supplier) and for a two-phase group-by: the logical
tree with schemas, the placed tree with exchange routing, and the
per-fragment physical operator trees — then runs every lowering and
shows they return identical rows.

Run:  python examples/explain_plan.py
"""

from repro.dist import (
    TPCH_PARTITIONING,
    DistSpec,
    Strategy,
    build_strategy,
    compile_plan_fragments,
    execute_plan,
    place_exchanges,
)
from repro.plan import explain, explain_fragments, explain_physical, lower_single
from repro.workloads import (
    TPCH_SCHEMAS,
    TpchScale,
    tpch_returnflag_agg_plan,
    tpch_star_join_plan,
)

SCALE = TpchScale(orders=400, lines_per_order=2, customers=100, parts=80, suppliers=20)
SEED = 11

SPEC = DistSpec(
    name="explain", db_servers=2, bp_pages=160, tempdb_pages=256,
    data_spindles=2, db_cores=4, seed=SEED,
)


def show(title: str, body: str) -> None:
    print(f"\n--- {title} ---")
    print(body)


def main() -> None:
    plans = {
        "star join (part |><| lineitem |><| supplier)": tpch_star_join_plan(top_n=100),
        "two-phase group-by (lineitem by returnflag)": tpch_returnflag_agg_plan(),
    }
    for label, plan in plans.items():
        print(f"\n{'=' * 72}\n{label}\n{'=' * 72}")
        show("logical plan (one IR, schemas derived bottom-up)",
             explain(plan, TPCH_SCHEMAS))

        page = build_strategy(Strategy.PAGE, SPEC, total_ext_pages=1024,
                              scale=SCALE, seed=SEED)
        single = lower_single(plan, page.tables[0], TPCH_SCHEMAS)
        show("lowering 1: single-node physical plan (page shipping)",
             explain_physical(single))

        placed = place_exchanges(plan, TPCH_PARTITIONING)
        show("placed logical plan (Exchange nodes mark fabric crossings)",
             explain(placed, TPCH_SCHEMAS, show_schema=False))

        query = build_strategy(Strategy.QUERY, SPEC, total_ext_pages=0,
                               scale=SCALE, seed=SEED)
        fragments = compile_plan_fragments(plan, query, name="demo", tag="show")
        show("lowering 2+3: per-fragment physical plans (query/hybrid shipping)",
             explain_fragments(fragments, servers=query.db_servers))

        page_result = execute_plan(page, plan, name="demo")
        query_result = execute_plan(query, plan, name="demo")
        hybrid = build_strategy(Strategy.HYBRID, SPEC, total_ext_pages=1024,
                                scale=SCALE, seed=SEED)
        hybrid_result = execute_plan(hybrid, plan, name="demo")
        assert page_result.rows == query_result.rows == hybrid_result.rows
        print(f"\nall three lowerings returned the same "
              f"{len(page_result.rows)} rows "
              f"(page={page_result.elapsed_us:,.0f}us, "
              f"query={query_result.elapsed_us:,.0f}us, "
              f"hybrid={hybrid_result.elapsed_us:,.0f}us)")


if __name__ == "__main__":
    main()
