"""Brown-out degradation: ride out a sick NIC instead of hanging on it.

A crash is easy to detect; a *brown-out* — the link to a memory server
suddenly 50000x slower and dropping packets — is the nastier failure,
because every page read parked at that server still *eventually*
succeeds.  Without protection the engine waits out each ~50 ms
transfer and throughput falls off a cliff.

The reliability layer turns the cliff into a slope:

* every remote read runs under a virtual-time **deadline**,
* expired reads are **retried** with seeded exponential backoff,
* repeated failures trip the provider's **circuit breaker**, so the
  buffer-pool extension routes around it (local disk / healthy
  providers) until a **probe** re-admits it,
* page faults issue **hedged** backup disk reads once the fault takes
  longer than the p99-derived hedge delay, so the tail stays bounded
  by (hedge delay + one disk read).

This script runs the same seeded RangeScan through the same seeded
brown-out twice — layer off, then layer on — and prints the
throughput inside the degraded window, the breaker's state changes and
the hedge scoreboard.  Results are byte-correct in both runs; only the
latency profile differs.

Run:  python examples/brownout.py
"""

from repro.faults import FaultEngine, FaultPlan
from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.reliability import ReliabilityPolicy
from repro.workloads import RangeScanConfig, build_customer_table
from repro.workloads.rangescan import _read_query, _start_keys

N_ROWS = 20_000
RANGE_SIZE = 100
SEED = 7
#: Three brown-out windows (start_us, duration_us relative to workload
#: start): the link to mem0 repeatedly turns 50000x slower and lossy,
#: recovers, and relapses — the shape where riding it out costs the
#: most and a breaker that re-admits the provider pays off.
WINDOWS = [(10_000, 30_000), (60_000, 30_000), (110_000, 30_000)]
STORM_SPAN_US = (WINDOWS[0][0], WINDOWS[-1][0] + WINDOWS[-1][1])
POLICY = ReliabilityPolicy(breaker_open_us=10_000.0)
PROBE_INTERVAL_US = 4_000.0


def expected_sum(start_key: int) -> float:
    """Closed form of SUM(acctbal) for one query (acctbal = 1000 + key % 9000)."""
    return float(sum(1000 + key % 9000 for key in range(start_key, start_key + RANGE_SIZE)))


def run(with_layer: bool):
    setup = build_database(
        Design.CUSTOM, bp_pages=192, bpext_pages=900, n_memory_servers=2,
        seed=SEED, reliability=POLICY if with_layer else None,
    )
    db = setup.database
    table = build_customer_table(db, n_rows=N_ROWS)
    prewarm_extension(setup)

    engine = FaultEngine.for_setup(setup)
    plan = FaultPlan(seed=SEED)
    for at_us, duration_us in WINDOWS:
        plan.degrade_link(
            setup.sim.now + at_us, "mem0", duration_us,
            latency_multiplier=50_000.0, drop_probability=0.05,
        )
    engine.run_plan(plan)

    layer = setup.reliability
    sim = setup.sim
    if layer is not None:
        def prober():
            # Ping quarantined providers so an OPEN breaker is
            # re-admitted as soon as its quarantine elapses.
            while True:
                yield sim.timeout(PROBE_INTERVAL_US)
                for name in layer.quarantined_providers():
                    proxy = setup.proxies.get(name)
                    if proxy is not None:
                        yield from layer.probe(setup.db_server, proxy)

        sim.spawn(prober(), name="reliability.prober")

    config = RangeScanConfig(
        n_rows=N_ROWS, workers=8, queries_per_worker=120, seed=2
    )
    rng = setup.cluster.rng.stream("brownout-example")
    total = config.workers * config.queries_per_worker
    starts = _start_keys(config, rng, total)
    completions: list[float] = []
    wrong_results = 0
    begin = sim.now

    def worker(worker_index: int):
        nonlocal wrong_results
        base = worker_index * config.queries_per_worker
        for query_index in range(config.queries_per_worker):
            start_key = int(starts[base + query_index])
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            value = yield from _read_query(db, table, start_key, RANGE_SIZE)
            if value != expected_sum(start_key):
                wrong_results += 1
            completions.append(sim.now - begin)

    processes = [sim.spawn(worker(index)) for index in range(config.workers)]

    def await_all():
        yield sim.all_of(processes)

    sim.run_until_complete(sim.spawn(await_all()))
    qps = total / ((sim.now - begin) / 1e6)
    span_start, span_end = STORM_SPAN_US
    in_window = sum(1 for t in completions if span_start <= t < span_end)
    window_qps = in_window / ((span_end - span_start) / 1e6)
    return qps, window_qps, wrong_results, layer


def main() -> None:
    off_qps, off_window_qps, off_wrong, _ = run(with_layer=False)
    on_qps, on_window_qps, on_wrong, layer = run(with_layer=True)

    print(format_table(
        ["run", "qps", "storm-span qps", "wrong results"],
        [
            ["layer off", f"{off_qps:,.0f}", f"{off_window_qps:,.0f}", off_wrong],
            ["layer on", f"{on_qps:,.0f}", f"{on_window_qps:,.0f}", on_wrong],
        ],
        title="RangeScan through three 30 ms brown-outs of mem0",
    ))

    snap = layer.snapshot()
    print()
    print("breaker transitions (virtual us, provider, old -> new):")
    for at_us, provider, old, new in snap["breaker_transitions"]:
        print(f"  {at_us:12,.0f}  {provider}  {old} -> {new}")
    print()
    print(
        "deadline hits: {read}/{write}/{rpc} (read/write/rpc)".format(
            **snap["deadline_hits"]
        )
    )
    print(
        "hedged reads : {issued} issued, {backup_wins} backup wins, "
        "{rescues} rescues".format(**snap["hedge"])
    )


if __name__ == "__main__":
    main()
