"""Using the lightweight remote-memory file API directly (Table 2).

Shows the substrate without the database on top: a memory broker, a
proxy offering spare RAM, and the Create/Open/Read/Write/Close/Delete
file API over RDMA — including what happens when a lease is lost
(best-effort semantics: the reader falls back, correctness intact).

Run:  python examples/remote_memory_file.py
"""

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.remotefile import (
    AccessPolicy,
    RemoteMemoryFilesystem,
    RemoteMemoryUnavailable,
    StagingPool,
)
from repro.storage import GB, KB, MB


def main() -> None:
    cluster = Cluster(seed=1)
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    mem = cluster.add_server("mem0")
    network.attach(db)
    network.attach(mem)
    # The memory server's local processes use most of its RAM; the proxy
    # pins what is left and registers it with the broker.
    mem.commit_memory(mem.memory_bytes - 2 * GB)
    broker = MemoryBroker(cluster.sim)
    proxy = MemoryProxy(mem, broker, mr_bytes=64 * MB)
    fs = RemoteMemoryFilesystem(db, broker, StagingPool(db), policy=AccessPolicy.SYNC)

    def scenario():
        yield from fs.initialize()
        offered = yield from proxy.offer_available()
        print(f"proxy offered {len(offered)} regions "
              f"({broker.available_bytes() / MB:.0f} MB) to the broker")
        # Create = lease MRs; Open = connect queue pairs (Table 2).
        file = yield from fs.create("scratch", 256 * MB)
        yield from file.open()
        print(f"file of {file.size / MB:.0f} MB on providers {file.providers}")
        # Byte-faithful reads and writes over one-sided RDMA.
        start = cluster.sim.now
        yield from file.write(4096, b"hello remote memory")
        data = yield from file.read(4096, 19)
        print(f"round-trip {data!r} in {cluster.sim.now - start:.1f} us simulated")
        # Timed 8K read (the paper's ~10 us claim).
        start = cluster.sim.now
        yield from file.read(0, 8 * KB)
        print(f"8K RDMA read: {cluster.sim.now - start:.1f} us")
        # The provider comes under local memory pressure and revokes
        # every lease: accesses fail cleanly, nothing crashes.
        yield from proxy.handle_memory_pressure(2 * GB)
        try:
            yield from file.read(0, 8 * KB)
        except RemoteMemoryUnavailable as exc:
            print(f"after revocation: {type(exc).__name__}: fall back to disk")
        yield from fs.delete(file)
        print("file deleted; leases relinquished")

    cluster.sim.run_until_complete(cluster.sim.spawn(scenario()))


if __name__ == "__main__":
    main()
