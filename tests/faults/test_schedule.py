"""Tests for FaultSpec/FaultPlan: validation, ordering, seeded storms."""

import numpy as np
import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(-1, FaultKind.MEMORY_SERVER_CRASH, "mem0")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "mem0", duration_us=-5)

    def test_string_kind_coerced(self):
        spec = FaultSpec(0, "memory-server-crash", "mem0")
        assert spec.kind is FaultKind.MEMORY_SERVER_CRASH

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(0, "power-surge", "mem0")

    def test_restore_time(self):
        timed = FaultSpec(100, FaultKind.LINK_DEGRADATION, "mem0", duration_us=50)
        permanent = FaultSpec(100, FaultKind.MEMORY_SERVER_CRASH, "mem0")
        assert timed.restore_at_us == 150
        assert permanent.restore_at_us is None


class TestFaultPlan:
    def test_specs_replay_in_time_order(self):
        plan = (
            FaultPlan()
            .crash(300, "mem1")
            .lease_storm(100)
            .degrade_link(200, "mem0", 50, latency_multiplier=2.0)
        )
        assert [spec.at_us for spec in plan] == [100, 200, 300]

    def test_ties_fire_in_declaration_order(self):
        plan = FaultPlan().crash(100, "a").crash(100, "b").crash(100, "c")
        assert [spec.target for spec in plan.sorted_specs()] == ["a", "b", "c"]

    def test_builders_set_kind_and_params(self):
        plan = (
            FaultPlan()
            .crash(1, "mem0", duration_us=10)
            .degrade_link(2, "mem1", 20, latency_multiplier=4.0, drop_probability=0.1)
            .lease_storm(3, fraction=0.5, provider="mem0")
            .broker_restart(4, 30, replay=False)
        )
        crash, degrade, storm, restart = plan.sorted_specs()
        assert crash.kind is FaultKind.MEMORY_SERVER_CRASH
        assert degrade.params == {"latency_multiplier": 4.0, "drop_probability": 0.1}
        assert storm.params == {"fraction": 0.5} and storm.target == "mem0"
        assert restart.params == {"replay": False}

    def test_len_and_describe(self):
        plan = FaultPlan().crash(5, "mem0")
        assert len(plan) == 1
        assert "memory-server-crash" in plan.describe()


class TestRandomStorm:
    def test_same_seed_same_plan(self):
        make = lambda: FaultPlan.random_storm(  # noqa: E731
            np.random.default_rng(123),
            horizon_us=20e6,
            mean_interval_us=1e6,
            targets=["mem0", "mem1"],
            seed=123,
        )
        first, second = make(), make()
        assert len(first) > 0
        assert [
            (s.at_us, s.kind, s.target, s.duration_us, s.params) for s in first
        ] == [(s.at_us, s.kind, s.target, s.duration_us, s.params) for s in second]

    def test_different_seed_different_plan(self):
        first = FaultPlan.random_storm(
            np.random.default_rng(1), 20e6, 1e6, ["mem0"], seed=1
        )
        second = FaultPlan.random_storm(
            np.random.default_rng(2), 20e6, 1e6, ["mem0"], seed=2
        )
        assert [s.at_us for s in first] != [s.at_us for s in second]

    def test_all_faults_within_horizon(self):
        plan = FaultPlan.random_storm(np.random.default_rng(7), 5e6, 0.2e6, ["mem0"])
        assert plan.specs
        assert all(0 <= spec.at_us < 5e6 for spec in plan.specs)

    def test_targets_required(self):
        with pytest.raises(ValueError):
            FaultPlan.random_storm(np.random.default_rng(0), 1e6, 1e5, [])

    def test_kind_restriction_respected(self):
        plan = FaultPlan.random_storm(
            np.random.default_rng(0),
            20e6,
            0.5e6,
            ["mem0"],
            kinds=[FaultKind.LEASE_EXPIRY_STORM],
        )
        assert plan.specs
        assert all(s.kind is FaultKind.LEASE_EXPIRY_STORM for s in plan.specs)
