"""Acceptance: a seeded fault experiment replays bit-identically.

Two fresh end-to-end runs — same seed, same plan — must produce the
same fault times, the same recovery statistics and the same workload
results, down to the last microsecond and page count.
"""

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import build_database, prewarm_extension, rebuild_extension
from repro.harness.designs import Design
from repro.workloads.rangescan import (
    RangeScanConfig,
    build_customer_table,
    run_rangescan,
)

N_ROWS = 20_000


def run_fault_experiment(seed=42):
    """One crash-under-load RangeScan run; returns comparable results."""
    setup = build_database(Design.CUSTOM, bp_pages=192, bpext_pages=900, seed=seed)
    table = build_customer_table(setup.database, n_rows=N_ROWS)
    prewarm_extension(setup)

    monitor = RecoveryMonitor(setup.sim)
    extension = setup.database.pool.extension
    monitor.track_extension(extension)
    engine = FaultEngine.for_setup(
        setup,
        monitor=monitor,
        on_provider_restored=lambda _name: rebuild_extension(setup),
    )

    base = setup.sim.now
    plan = (
        FaultPlan(seed=seed)
        .crash(base + 10_000, "mem0", duration_us=20_000)
        .lease_storm(base + 5_000, fraction=0.5)
    )
    engine.run_plan(plan)
    monitor.watch_recovery(
        lambda: extension.hits, threshold_per_s=5_000.0, interval_us=10_000
    )

    config = RangeScanConfig(n_rows=N_ROWS, workers=8, queries_per_worker=120, seed=seed)
    report = run_rangescan(setup.database, table, config)
    return {
        "snapshot": monitor.snapshot(),
        "queries": report.queries,
        "elapsed_us": report.elapsed_us,
        "throughput_qps": report.throughput_qps,
        "ext_hits": extension.hits,
        "ext_failures": extension.failures,
        "pages_lost": extension.pages_lost_to_faults,
        "pool_base_reads": setup.database.pool.base_reads,
        "latency_p99": report.latency.percentile(99),
    }


def test_seeded_fault_replay_is_bit_identical():
    first = run_fault_experiment(seed=42)
    second = run_fault_experiment(seed=42)
    # The faults actually happened...
    assert first["snapshot"], "fault plan never fired"
    assert first["pages_lost"] > 0
    assert first["queries"] == 8 * 120
    # ...and both runs saw the exact same world.
    assert first == second


def test_different_seed_diverges():
    first = run_fault_experiment(seed=42)
    other = run_fault_experiment(seed=43)
    assert first["elapsed_us"] != other["elapsed_us"]
