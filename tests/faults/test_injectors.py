"""Injector tests: each fault kind driven through the public layer hooks."""

import numpy as np
import pytest

from repro.broker import BrokerUnavailable, LeaseState, MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.engine.files import RemoteMemoryUnavailable
from repro.faults import FaultEngine, FaultKind, FaultPlan, FaultSpec, RecoveryMonitor
from repro.net import Network
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB


class Fabric:
    """A DB server, two memory servers, broker, remote FS and one file."""

    def __init__(self, memory_servers=2, spare_gb=1, file_mb=64):
        self.cluster = Cluster(seed=7)
        self.sim = self.cluster.sim
        network = Network(self.sim)
        self.db = self.cluster.add_server("db", memory_bytes=32 * GB)
        network.attach(self.db)
        self.broker = MemoryBroker(self.sim)
        self.proxies = {}
        for index in range(memory_servers):
            server = self.cluster.add_server(f"mem{index}", memory_bytes=64 * GB)
            network.attach(server)
            server.commit_memory(server.memory_bytes - spare_gb * GB)
            self.proxies[server.name] = MemoryProxy(server, self.broker, mr_bytes=16 * MB)
        self.fs = RemoteMemoryFilesystem(self.db, self.broker, StagingPool(self.db))

        def setup():
            yield from self.fs.initialize()
            for proxy in self.proxies.values():
                yield from proxy.offer_available()
            file = yield from self.fs.create(
                "f", file_mb * MB, spread=memory_servers > 1
            )
            yield from file.open()
            return file

        self.file = self.run(setup())
        self.restored = []
        self.engine = FaultEngine(
            sim=self.sim,
            servers=dict(self.cluster.servers),
            broker=self.broker,
            proxies=self.proxies,
            monitor=RecoveryMonitor(self.sim),
            rng=np.random.default_rng(11),
            on_provider_restored=self.restored.append,
        )

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))

    def fire(self, spec):
        return self.run(self.engine.fire(spec))

    def settle(self, delay_us):
        self.sim.run(until=self.sim.now + delay_us)


class TestMemoryServerCrash:
    def test_crash_revokes_leases_and_darkens_server(self):
        fabric = Fabric()
        leases = [l for l in fabric.file.leases if l.provider == "mem0"]
        assert leases
        details = fabric.fire(FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "mem0"))
        server = fabric.cluster.servers["mem0"]
        assert not server.alive and not server.nic.alive
        assert all(l.state is LeaseState.REVOKED for l in leases)
        assert details["revoked_leases"] == len(leases)
        # Crashed regions are gone, not back in the pool.
        assert fabric.broker.available_bytes("mem0") == 0
        assert fabric.proxies["mem0"].offered == []

    def test_crash_aborts_inflight_transfer(self):
        fabric = Fabric(memory_servers=1)
        outcomes = []

        def reader():
            try:
                yield from fabric.file.read_nodata(0, 4 * MB)
                outcomes.append("ok")
            except RemoteMemoryUnavailable:
                outcomes.append("aborted")

        def crasher():
            yield fabric.sim.timeout(40)  # mid-transfer
            yield from fabric.engine.fire(
                FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "mem0")
            )

        process = fabric.sim.spawn(reader())
        fabric.sim.spawn(crasher())
        fabric.sim.run_until_complete(process)
        assert outcomes == ["aborted"]

    def test_access_after_crash_fails_cleanly(self):
        fabric = Fabric(memory_servers=1)
        fabric.fire(FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "mem0"))
        with pytest.raises(RemoteMemoryUnavailable):
            fabric.run(fabric.file.read_nodata(0, 8192))

    def test_timed_crash_restores_server_and_reoffers_memory(self):
        fabric = Fabric()
        offered_before = fabric.proxies["mem0"].offered_bytes
        fabric.fire(
            FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "mem0", duration_us=10_000)
        )
        assert fabric.broker.available_bytes("mem0") == 0
        fabric.settle(2_000_000)  # restore window + re-pin/re-offer RPCs
        server = fabric.cluster.servers["mem0"]
        assert server.alive and server.nic.alive
        assert fabric.proxies["mem0"].offered_bytes == offered_before
        assert fabric.broker.available_bytes("mem0") == offered_before
        assert fabric.restored == ["mem0"]

    def test_unknown_target_rejected(self):
        fabric = Fabric()
        with pytest.raises(KeyError):
            fabric.fire(FaultSpec(0, FaultKind.MEMORY_SERVER_CRASH, "nosuch"))


class TestLinkDegradation:
    def read_time(self, fabric):
        begin = fabric.sim.now
        fabric.run(fabric.file.read_nodata(0, 256 * 1024))
        return fabric.sim.now - begin

    def test_latency_multiplier_slows_transfers(self):
        fabric = Fabric(memory_servers=1)
        baseline = self.read_time(fabric)
        fabric.fire(
            FaultSpec(
                0,
                FaultKind.LINK_DEGRADATION,
                "mem0",
                duration_us=1e9,
                params={"latency_multiplier": 8.0},
            )
        )
        degraded = self.read_time(fabric)
        assert degraded > baseline * 2

    def test_packet_loss_pays_retransmissions(self):
        fabric = Fabric(memory_servers=1)
        nic = fabric.cluster.servers["mem0"].nic
        fabric.fire(
            FaultSpec(
                0,
                FaultKind.LINK_DEGRADATION,
                "mem0",
                duration_us=1e9,
                params={"drop_probability": 0.4},
            )
        )
        for _ in range(20):
            fabric.run(fabric.file.read_nodata(0, 8192))
        assert nic.retransmits > 0

    def test_restore_returns_to_baseline(self):
        fabric = Fabric(memory_servers=1)
        baseline = self.read_time(fabric)
        fabric.fire(
            FaultSpec(
                0,
                FaultKind.LINK_DEGRADATION,
                "mem0",
                duration_us=5_000,
                params={"latency_multiplier": 8.0},
            )
        )
        fabric.settle(10_000)  # past the restore point
        healed = self.read_time(fabric)
        assert healed == pytest.approx(baseline, rel=0.01)


class TestLeaseExpiryStorm:
    def test_fraction_of_leases_expired(self):
        fabric = Fabric()
        active_before = len(fabric.broker.leases_for())
        assert active_before >= 4
        details = fabric.fire(
            FaultSpec(0, FaultKind.LEASE_EXPIRY_STORM, "", params={"fraction": 0.5})
        )
        assert details["expired_leases"] == round(0.5 * active_before)
        assert len(fabric.broker.leases_for()) == active_before - details["expired_leases"]

    def test_storm_scoped_to_provider(self):
        fabric = Fabric()
        mem1_before = len(fabric.broker.leases_for(provider="mem1"))
        fabric.fire(
            FaultSpec(0, FaultKind.LEASE_EXPIRY_STORM, "mem0", params={"fraction": 1.0})
        )
        assert fabric.broker.leases_for(provider="mem0") == []
        assert len(fabric.broker.leases_for(provider="mem1")) == mem1_before

    def test_storm_subset_is_seeded(self):
        survivors = []
        for _ in range(2):
            fabric = Fabric()
            before = fabric.broker.leases_for()  # id-ordered
            fabric.fire(
                FaultSpec(0, FaultKind.LEASE_EXPIRY_STORM, "", params={"fraction": 0.5})
            )
            survivors.append(
                [index for index, lease in enumerate(before)
                 if lease.state is LeaseState.ACTIVE]
            )
        assert survivors[0] and survivors[0] == survivors[1]

    def test_storm_with_no_leases_is_noop(self):
        fabric = Fabric()
        fabric.run(fabric.fs.delete(fabric.file))
        details = fabric.fire(
            FaultSpec(0, FaultKind.LEASE_EXPIRY_STORM, "", params={"fraction": 1.0})
        )
        assert details == {"expired_leases": 0}


class TestBrokerRestart:
    def test_rpcs_fail_until_restore(self):
        fabric = Fabric()
        fabric.fire(FaultSpec(0, FaultKind.BROKER_RESTART, "", duration_us=5_000))
        with pytest.raises(BrokerUnavailable):
            fabric.run(fabric.broker.acquire("db", 16 * MB))
        fabric.settle(100_000)
        assert fabric.broker.alive
        fabric.run(fabric.broker.acquire("db", 16 * MB))  # works again

    def test_replay_preserves_leases(self):
        fabric = Fabric()
        leases = list(fabric.file.leases)
        fabric.fire(
            FaultSpec(0, FaultKind.BROKER_RESTART, "", duration_us=5_000,
                      params={"replay": True})
        )
        fabric.settle(100_000)
        assert all(l.state is LeaseState.ACTIVE for l in leases)

    def test_no_replay_revokes_leases(self):
        fabric = Fabric()
        leases = list(fabric.file.leases)
        fabric.fire(
            FaultSpec(0, FaultKind.BROKER_RESTART, "", duration_us=5_000,
                      params={"replay": False})
        )
        fabric.settle(100_000)
        assert all(l.state is LeaseState.REVOKED for l in leases)


class TestPlanDriver:
    def test_plan_fires_at_scheduled_virtual_times(self):
        fabric = Fabric()
        monitor = fabric.engine.monitor
        base = fabric.sim.now  # setup already burned virtual time
        plan = (
            FaultPlan()
            .degrade_link(base + 2_000, "mem0", 1_000, latency_multiplier=2.0)
            .lease_storm(base + 5_000, fraction=0.25)
        )
        fabric.engine.run_plan(plan)
        fabric.settle(10_000)
        assert [r.injected_at_us for r in monitor.records] == [base + 2_000, base + 5_000]
        assert fabric.engine.faults_fired == 2

    def test_overdue_specs_fire_immediately(self):
        fabric = Fabric()
        plan = FaultPlan().lease_storm(100, fraction=0.25)  # already past
        now = fabric.sim.now
        assert now > 100
        fabric.engine.run_plan(plan)
        fabric.settle(1_000)
        assert fabric.engine.monitor.records[0].injected_at_us == now
