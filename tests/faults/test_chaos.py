"""ChaosMonkey: seeded continuous fault sampling."""

import numpy as np

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.faults import ChaosMonkey, FaultEngine, FaultKind, RecoveryMonitor
from repro.net import Network
from repro.storage import GB, MB


def make_engine(seed=3):
    cluster = Cluster(seed=seed)
    network = Network(cluster.sim)
    db = cluster.add_server("db", memory_bytes=32 * GB)
    network.attach(db)
    broker = MemoryBroker(cluster.sim)
    proxies = {}
    for index in range(2):
        server = cluster.add_server(f"mem{index}", memory_bytes=64 * GB)
        network.attach(server)
        server.commit_memory(server.memory_bytes - 1 * GB)
        proxies[server.name] = MemoryProxy(server, broker, mr_bytes=16 * MB)

    def setup():
        for proxy in proxies.values():
            yield from proxy.offer_available()
        yield from broker.acquire("db", 256 * MB, spread=True)

    cluster.sim.run_until_complete(cluster.sim.spawn(setup()))
    engine = FaultEngine(
        sim=cluster.sim,
        servers=dict(cluster.servers),
        broker=broker,
        proxies=proxies,
        monitor=RecoveryMonitor(cluster.sim),
        rng=cluster.rng.stream("faults"),
    )
    return cluster, engine


def test_monkey_fires_faults_over_time():
    cluster, engine = make_engine()
    monkey = ChaosMonkey(engine, np.random.default_rng(5), mean_interval_us=0.2e6)
    monkey.start()
    cluster.sim.run(until=cluster.sim.now + 3e6)
    assert len(monkey.fired) >= 3
    assert engine.faults_fired == len(monkey.fired)


def test_monkey_defaults_exclude_permanent_crashes():
    cluster, engine = make_engine()
    monkey = ChaosMonkey(engine, np.random.default_rng(5), mean_interval_us=0.1e6)
    monkey.start()
    cluster.sim.run(until=cluster.sim.now + 5e6)
    assert all(s.kind is not FaultKind.MEMORY_SERVER_CRASH for s in monkey.fired)


def test_monkey_targets_default_to_proxied_servers():
    _cluster, engine = make_engine()
    monkey = ChaosMonkey(engine, np.random.default_rng(5))
    assert monkey.targets == ["mem0", "mem1"]


def test_same_seed_fires_identical_sequences():
    traces = []
    for _ in range(2):
        cluster, engine = make_engine(seed=9)
        monkey = ChaosMonkey(engine, np.random.default_rng(21), mean_interval_us=0.2e6)
        monkey.start()
        cluster.sim.run(until=cluster.sim.now + 4e6)
        traces.append(
            [(s.at_us, s.kind, s.target, s.duration_us, tuple(sorted(s.params.items())))
             for s in monkey.fired]
        )
    assert traces[0] and traces[0] == traces[1]


def test_stop_halts_sampling():
    cluster, engine = make_engine()
    monkey = ChaosMonkey(engine, np.random.default_rng(5), mean_interval_us=0.2e6)
    monkey.start()
    cluster.sim.run(until=cluster.sim.now + 1e6)
    monkey.stop()
    fired = len(monkey.fired)
    cluster.sim.run(until=cluster.sim.now + 5e6)
    assert len(monkey.fired) == fired


def test_restart_after_stop():
    cluster, engine = make_engine()
    monkey = ChaosMonkey(engine, np.random.default_rng(5), mean_interval_us=0.2e6)
    monkey.start()
    cluster.sim.run(until=cluster.sim.now + 1e6)
    monkey.stop()
    cluster.sim.run(until=cluster.sim.now + 1e6)
    fired = len(monkey.fired)
    monkey.start()
    cluster.sim.run(until=cluster.sim.now + 1e6)
    assert len(monkey.fired) > fired
