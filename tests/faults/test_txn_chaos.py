"""The headline robustness scenario: faults mid-transaction.

A memory-server crash sweeps pages out of the buffer-pool extension
while conflict-heavy TPC-C transactions are in flight.  The lock
manager, WAL and broker lease recovery must cooperate: every doomed
transaction rolls back cleanly (no leaked locks, no half-applied
writes), every committed transaction's data survives, and the whole
ordeal replays bit-identically under the same seed.  A lease-expiry
storm, by contrast, is survivable — leases renew under the data, so it
must doom nothing.
"""

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import Design, build_database, prewarm_extension, rebuild_extension
from repro.txn import check_serializable, committed_row_images
from repro.workloads import TpccConfig, TpccScale, build_tpcc_database, run_tpcc


def run_chaos(seed=7, crash=True, storm=True):
    setup = build_database(
        Design.CUSTOM, bp_pages=830, bpext_pages=1650, tempdb_pages=512, seed=seed
    )
    db = setup.database
    state = build_tpcc_database(
        db, TpccScale(warehouses=4, items=200, history_orders=40)
    )
    prewarm_extension(setup)
    manager = db.transactions(record_history=True)
    monitor = RecoveryMonitor(setup.sim)
    monitor.track_extension(db.pool.extension)
    monitor.track_transactions(manager)
    engine = FaultEngine.for_setup(
        setup, monitor=monitor,
        on_provider_restored=lambda _name: rebuild_extension(setup),
    )
    base = setup.sim.now
    plan = FaultPlan(seed=seed)
    if storm:
        plan.lease_storm(base + 20_000, fraction=0.5)
    if crash:
        plan.crash(base + 50_000, "mem0", duration_us=100_000)
    engine.run_plan(plan)
    config = TpccConfig(
        scale=state.scale, workers=20, transactions_per_worker=15, seed=seed,
        concurrency="2pl", hot_district_fraction=0.8, hot_district_share=0.05,
        record_history=True,
    )
    report = run_tpcc(db, state, config)
    tables = [
        state.warehouse, state.district, state.customer,
        state.stock, state.orders, state.order_line,
    ]
    final = committed_row_images(db, tables)
    check = check_serializable(manager.history, final_rows=final)
    return setup, db, manager, monitor, report, check


def chaos_fingerprint(seed=7):
    setup, db, manager, monitor, report, check = run_chaos(seed=seed)
    return {
        "now": setup.sim.now,
        "txns": report.transactions,
        "commits": report.commits,
        "aborts": report.aborts,
        "dooms": report.dooms,
        "deadlocks": report.deadlocks,
        "wal_records": len(db.wal.records),
        "snapshot": monitor.snapshot(),
        "serializable": check.ok,
    }


class TestCrashMidTransaction:
    def test_crash_dooms_and_recovers_with_zero_committed_loss(self):
        _setup, _db, manager, monitor, report, check = run_chaos()
        # The crash actually doomed in-flight transactions...
        assert report.dooms > 0
        crash = next(
            record for record in monitor.records
            if record.spec.kind.value == "memory-server-crash"
        )
        assert crash.pages_lost > 0
        assert crash.txns_doomed == report.dooms
        # ...and every one of them retried through to success.
        assert report.commits == report.transactions == 300
        assert manager.exhausted == 0
        # Zero leaked locks, zero stuck transactions.
        assert manager.locks.idle
        assert manager.active_count == 0
        # Zero committed-data loss, verified on real row data.
        assert check.ok, check.violations[:5]

    def test_lease_storm_alone_dooms_nothing(self):
        _setup, _db, manager, monitor, report, check = run_chaos(crash=False)
        storm = next(
            record for record in monitor.records
            if record.spec.kind.value == "lease-expiry-storm"
        )
        # Leases renew under the data: transactions survive expiry.
        assert storm.txns_doomed == 0
        assert report.dooms == 0
        assert report.commits == report.transactions
        assert check.ok, check.violations[:5]

    def test_chaos_replay_is_bit_identical(self):
        assert chaos_fingerprint(seed=7) == chaos_fingerprint(seed=7)

    def test_different_seed_diverges(self):
        assert chaos_fingerprint(seed=7)["now"] != chaos_fingerprint(seed=8)["now"]
