"""Satellite regressions: multi-listener revocations, pluggable
placement, and broker restarts racing in-flight reallocation."""

import pytest

from repro.broker import (
    BrokerUnavailable,
    MemoryBroker,
    MemoryProxy,
    RevocationListeners,
)
from repro.cluster import Cluster
from repro.fleet import verify_broker_consistency
from repro.net import Network
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB


def make_cluster(memory_servers=2, mr_mb=16, spare_gb=4):
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db", memory_bytes=32 * GB)
    network.attach(db)
    broker = MemoryBroker(cluster.sim)
    proxies = {}
    for index in range(memory_servers):
        server = cluster.add_server(f"mem{index}", memory_bytes=64 * GB)
        network.attach(server)
        server.commit_memory(server.memory_bytes - spare_gb * GB)
        proxies[server.name] = MemoryProxy(server, broker, mr_bytes=mr_mb * MB)
    return cluster, db, broker, proxies


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


def offer_all(cluster, proxies):
    for _name, proxy in sorted(proxies.items()):
        complete(cluster.sim, proxy.offer_available())


class TestRevocationListeners:
    def test_two_listeners_both_fire_in_registration_order(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1)
        offer_all(cluster, proxies)
        leases = complete(cluster.sim, broker.acquire("db", 16 * MB))
        fired = []
        broker.add_revocation_listener("db", lambda lease: fired.append("first"))
        broker.add_revocation_listener("db", lambda lease: fired.append("second"))
        complete(cluster.sim, broker.fail_provider("mem0"))
        assert fired == ["first", "second"]
        assert len(leases) == 1

    def test_legacy_setitem_registration_appends_instead_of_overwriting(self):
        # The pre-fleet API assigned one callback per holder; a second
        # assignment silently clobbered the first.  Both must observe now.
        cluster, db, broker, proxies = make_cluster(memory_servers=1)
        offer_all(cluster, proxies)
        complete(cluster.sim, broker.acquire("db", 16 * MB))
        fired = []
        broker.revocation_listeners["db"] = lambda lease: fired.append("bpext")
        broker.revocation_listeners["db"] = lambda lease: fired.append("marketplace")
        complete(cluster.sim, broker.fail_provider("mem0"))
        assert fired == ["bpext", "marketplace"]

    def test_duplicate_registration_fires_once(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1)
        offer_all(cluster, proxies)
        complete(cluster.sim, broker.acquire("db", 16 * MB))
        fired = []

        def listener(lease):
            fired.append(lease.lease_id)

        broker.add_revocation_listener("db", listener)
        broker.add_revocation_listener("db", listener)
        complete(cluster.sim, broker.fail_provider("mem0"))
        assert len(fired) == 1

    def test_remove_listener(self):
        listeners = RevocationListeners()
        fired = []
        listeners.add("db", fired.append)
        assert "db" in listeners and len(listeners) == 1
        listeners.remove("db", fired.append)
        assert listeners.get("db") == ()


class TestPlacementHook:
    def test_default_behavior_drains_first_provider_fifo(self):
        # No hook installed: grants drain providers in sorted-name FIFO
        # order, exactly the pre-hook behavior.
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        offer_all(cluster, proxies)
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        assert [lease.provider for lease in leases] == ["mem0"] * 4

    def test_hook_drives_provider_choice_per_mr(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        offer_all(cluster, proxies)
        picks = []

        def round_robin(holder, candidates, broker_ref):
            picks.append(tuple(candidates))
            return candidates[len(picks) % len(candidates)]

        broker.placement = round_robin
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        assert sorted(lease.provider for lease in leases) == [
            "mem0", "mem0", "mem1", "mem1",
        ]
        assert len(picks) == 4  # consulted once per MR

    def test_hook_returning_none_falls_back_to_default(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        offer_all(cluster, proxies)
        broker.placement = lambda holder, candidates, broker_ref: None
        leases = complete(cluster.sim, broker.acquire("db", 32 * MB))
        assert [lease.provider for lease in leases] == ["mem0", "mem0"]

    def test_hook_picking_unknown_provider_falls_back(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        offer_all(cluster, proxies)
        broker.placement = lambda holder, candidates, broker_ref: "mem99"
        leases = complete(cluster.sim, broker.acquire("db", 16 * MB))
        assert leases[0].provider == "mem0"


class TestBrokerRestartRace:
    """A broker restart racing an in-flight reallocation must leave the
    lease table consistent with the metadata store: no double-grant, no
    orphaned MR, and the interrupted resize re-runnable to completion."""

    def _fs(self, cluster, db, broker):
        fs = RemoteMemoryFilesystem(db, broker, StagingPool(db))
        complete(cluster.sim, fs.initialize())
        return fs

    def test_restart_mid_reallocation_is_recoverable(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        sim = cluster.sim
        offer_all(cluster, proxies)
        fs = self._fs(cluster, db, broker)
        old = complete(sim, fs.create("ext.0", 48 * MB))

        outcome = {}

        def reallocate():
            # The fleet resize protocol: relinquish, then re-acquire.
            try:
                yield from fs.delete(old)
                file = yield from fs.create("ext.1", 64 * MB)
                outcome["file"] = file
            except BrokerUnavailable:
                outcome["aborted"] = True

        def saboteur():
            # Fail the broker while the delete's release RPCs are still
            # draining metadata-store writes (200us per operation).
            yield sim.timeout(300)
            broker.fail()

        proc = sim.spawn(reallocate())
        sim.spawn(saboteur())
        sim.run_until_complete(proc)
        assert outcome.get("aborted") is True

        survivors = complete(sim, broker.recover(replay=True))
        # Replay rebuilt exactly the recorded leases; invariants hold
        # even with the reallocation torn mid-flight.
        verify_broker_consistency(broker, proxies)
        assert all(str(l.lease_id) in {
            key.rsplit("/", 1)[-1] for key in broker.store.peek_keys("leases/")
        } for l in survivors)

        # The resize is re-runnable after recovery and converges.
        def retry():
            yield from fs.delete(old)
            return (yield from fs.create("ext.1", 64 * MB))

        file = complete(sim, retry())
        counts = verify_broker_consistency(broker, proxies)
        assert counts["active_leases"] == len(file.leases) == 4
        assert counts["recorded_leases"] == 4

    def test_restart_without_replay_revokes_and_stays_consistent(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2)
        sim = cluster.sim
        offer_all(cluster, proxies)
        fs = self._fs(cluster, db, broker)
        complete(sim, fs.create("ext.0", 48 * MB))
        broker.fail()
        with pytest.raises(BrokerUnavailable):
            complete(sim, broker.acquire("db", 16 * MB))
        survivors = complete(sim, broker.recover(replay=False))
        assert survivors == []
        counts = verify_broker_consistency(broker)
        assert counts["active_leases"] == 0 and counts["recorded_leases"] == 0
