"""Unit tests for the memory broker, leases, proxy and metadata store."""

import pytest

from repro.broker import (
    BrokerUnavailable,
    CasConflict,
    InsufficientMemory,
    LeaseState,
    MemoryBroker,
    MemoryProxy,
    MetadataStore,
)
from repro.cluster import Cluster
from repro.net import Network
from repro.storage import GB, MB


def make_cluster(memory_servers=2, spare_gb=4):
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db", memory_bytes=32 * GB)
    network.attach(db)
    broker = MemoryBroker(cluster.sim)
    proxies = []
    for index in range(memory_servers):
        server = cluster.add_server(f"mem{index}", memory_bytes=64 * GB)
        network.attach(server)
        # Commit all but `spare_gb` to local processes.
        server.commit_memory(server.memory_bytes - spare_gb * GB)
        proxies.append(MemoryProxy(server, broker, mr_bytes=16 * MB))
    return cluster, db, broker, proxies


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestMetadataStore:
    def test_put_get_roundtrip(self):
        cluster = Cluster()
        store = MetadataStore(cluster.sim)
        complete(cluster.sim, store.put("k", {"v": 1}))
        version, value = complete(cluster.sim, store.get("k"))
        assert version == 1 and value == {"v": 1}

    def test_operations_cost_latency(self):
        cluster = Cluster()
        store = MetadataStore(cluster.sim, op_latency_us=200)
        complete(cluster.sim, store.put("k", 1))
        assert cluster.sim.now == pytest.approx(200)

    def test_cas_succeeds_on_matching_version(self):
        cluster = Cluster()
        store = MetadataStore(cluster.sim)
        complete(cluster.sim, store.put("k", "a"))
        version = complete(cluster.sim, store.cas("k", 1, "b"))
        assert version == 2
        assert store.peek("k") == "b"

    def test_cas_conflict(self):
        cluster = Cluster()
        store = MetadataStore(cluster.sim)
        complete(cluster.sim, store.put("k", "a"))
        with pytest.raises(CasConflict):
            complete(cluster.sim, store.cas("k", 99, "b"))

    def test_keys_prefix_listing(self):
        cluster = Cluster()
        store = MetadataStore(cluster.sim)
        complete(cluster.sim, store.put("leases/1", 1))
        complete(cluster.sim, store.put("leases/2", 1))
        complete(cluster.sim, store.put("regions/x", 1))
        assert complete(cluster.sim, store.keys("leases/")) == ["leases/1", "leases/2"]


class TestProxyOffer:
    def test_offer_carves_fixed_size_regions(self):
        cluster, _db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        regions = complete(cluster.sim, proxies[0].offer_available())
        assert len(regions) == 64  # 1 GB / 16 MB
        assert broker.available_bytes("mem0") == 1 * GB

    def test_offer_respects_reserve(self):
        cluster, _db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        proxies[0].reserve_bytes = 512 * MB
        complete(cluster.sim, proxies[0].offer_available())
        assert broker.available_bytes("mem0") == 512 * MB

    def test_offered_memory_is_pinned(self):
        cluster, _db, _broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        server = proxies[0].server
        before = server.memory_available
        complete(cluster.sim, proxies[0].offer_available())
        assert server.memory_available == before - 1 * GB


class TestLeasing:
    def test_acquire_grants_enough_bytes(self):
        cluster, db, broker, proxies = make_cluster()
        for proxy in proxies:
            complete(cluster.sim, proxy.offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 100 * MB))
        assert sum(l.region.size for l in leases) >= 100 * MB
        assert all(l.state is LeaseState.ACTIVE for l in leases)
        assert all(l.holder == "db" for l in leases)

    def test_acquire_spread_round_robins_providers(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=4)
        for proxy in proxies:
            complete(cluster.sim, proxy.offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 256 * MB, spread=True))
        providers = {lease.provider for lease in leases}
        assert providers == {"mem0", "mem1", "mem2", "mem3"}

    def test_acquire_insufficient_memory(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        with pytest.raises(InsufficientMemory):
            complete(cluster.sim, broker.acquire("db", 2 * GB))

    def test_lease_exclusive_until_released(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 1 * GB))
        assert broker.available_bytes() == 0
        for lease in leases:
            complete(cluster.sim, broker.release(lease))
        assert broker.available_bytes() == 1 * GB
        assert all(l.state is LeaseState.RELEASED for l in leases)

    def test_renewal_extends_expiry(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        (lease, *_rest) = complete(cluster.sim, broker.acquire("db", 16 * MB))
        old_expiry = lease.expires_at_us
        cluster.sim.run(until=cluster.sim.now + 1e6)
        assert complete(cluster.sim, broker.renew(lease)) is True
        assert lease.expires_at_us > old_expiry

    def test_expired_lease_cannot_renew(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        (lease, *_rest) = complete(cluster.sim, broker.acquire("db", 16 * MB))
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        assert complete(cluster.sim, broker.renew(lease)) is False
        assert lease.state is LeaseState.EXPIRED

    def test_expiry_returns_region_to_pool(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        complete(cluster.sim, broker.acquire("db", 1 * GB))
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        broker.check_expiry()
        assert broker.available_bytes() == 1 * GB

    def test_provider_restriction(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=3)
        for proxy in proxies:
            complete(cluster.sim, proxy.offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB, providers=["mem2"]))
        assert {l.provider for l in leases} == {"mem2"}


class TestMemoryPressure:
    def test_pressure_withdraws_unleased_regions(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=2)
        proxy = proxies[0]
        complete(cluster.sim, proxy.offer_available())
        reclaimed = complete(cluster.sim, proxy.handle_memory_pressure(256 * MB))
        assert reclaimed >= 256 * MB
        assert proxy.server.memory_available >= 256 * MB

    def test_pressure_revokes_leases_when_all_leased(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        proxy = proxies[0]
        complete(cluster.sim, proxy.offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 1 * GB))
        revoked_seen = []
        broker.revocation_listeners["db"] = revoked_seen.append
        reclaimed = complete(cluster.sim, proxy.handle_memory_pressure(32 * MB))
        assert reclaimed >= 32 * MB
        assert revoked_seen, "holder must be notified of revocation"
        assert any(l.state is LeaseState.REVOKED for l in leases)

    def test_db_continues_after_revocation(self):
        """Correctness is unaffected: revoked lease just becomes invalid."""
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        proxy = proxies[0]
        complete(cluster.sim, proxy.offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 1 * GB))
        complete(cluster.sim, proxy.handle_memory_pressure(16 * MB))
        revoked = [l for l in leases if l.state is LeaseState.REVOKED]
        assert revoked
        assert not revoked[0].is_valid(cluster.sim.now)


class TestBrokerMetadata:
    def test_leases_are_recorded_in_replicated_store(self):
        """The broker's state lives in the metadata store (the paper's
        Zookeeper argument: a broker crash loses nothing)."""
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        keys = complete(cluster.sim, broker.store.keys("leases/"))
        assert len(keys) == len(leases)
        for lease in leases:
            record = broker.store.peek(f"leases/{lease.lease_id}")
            assert record["holder"] == "db"
            assert record["provider"] == lease.provider

    def test_release_removes_lease_records(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        for lease in leases:
            complete(cluster.sim, broker.release(lease))
        assert complete(cluster.sim, broker.store.keys("leases/")) == []

    def test_regions_catalogued_per_provider(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2, spare_gb=1)
        for proxy in proxies:
            complete(cluster.sim, proxy.offer_available())
        keys = complete(cluster.sim, broker.store.keys("regions/"))
        assert any(key.startswith("regions/mem0/") for key in keys)
        assert any(key.startswith("regions/mem1/") for key in keys)

    def test_broker_not_in_data_path(self):
        """After the lease grant, transfers never touch the broker: the
        store's operation count stays flat during reads."""
        from repro.remotefile import RemoteMemoryFilesystem, StagingPool

        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        fs = RemoteMemoryFilesystem(db, broker, StagingPool(db))

        def setup():
            yield from fs.initialize()
            yield from proxies[0].offer_available()
            file = yield from fs.create("f", 64 * MB)
            yield from file.open()
            return file

        file = complete(cluster.sim, setup())
        before = broker.store.operations
        for _ in range(25):
            complete(cluster.sim, file.read_nodata(0, 8192))
        assert broker.store.operations == before


class TestDaemons:
    def test_expiry_daemon_sweeps_overdue_leases(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        broker.lease_duration_us = 2e6
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        cluster.sim.spawn(broker.expiry_daemon(period_us=0.5e6))
        cluster.sim.run(until=cluster.sim.now + 3e6)
        assert all(lease.state is LeaseState.EXPIRED for lease in leases)
        assert broker.available_bytes() == 1 * GB

    def test_pressure_monitor_keeps_watermark_free(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=2)
        proxy = proxies[0]
        complete(cluster.sim, proxy.offer_available())
        server = proxy.server
        assert server.memory_available < 512 * MB  # everything offered
        cluster.sim.spawn(proxy.pressure_monitor(period_us=0.5e6,
                                                 watermark_bytes=512 * MB))
        cluster.sim.run(until=cluster.sim.now + 2e6)
        assert server.memory_available >= 512 * MB

class TestExpiryMechanics:
    def test_check_expiry_returns_only_newly_expired(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 32 * MB))
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        first = broker.check_expiry()
        assert sorted(l.lease_id for l in first) == sorted(l.lease_id for l in leases)
        assert broker.check_expiry() == []  # second sweep finds nothing new

    def test_renewal_race_with_expiry_sweep(self):
        """A renew that arrives after the sweep at the expiry instant
        loses: the lease is already EXPIRED and cannot be revived."""
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        (lease, *_rest) = complete(cluster.sim, broker.acquire("db", 16 * MB))
        cluster.sim.run(until=lease.expires_at_us + 1)
        broker.check_expiry()
        assert lease.state is LeaseState.EXPIRED
        assert complete(cluster.sim, broker.renew(lease)) is False
        assert lease.state is LeaseState.EXPIRED

    def test_renewal_just_before_expiry_wins(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        (lease, *_rest) = complete(cluster.sim, broker.acquire("db", 16 * MB))
        cluster.sim.run(until=lease.expires_at_us - 300)
        assert complete(cluster.sim, broker.renew(lease)) is True
        broker.check_expiry()
        assert lease.state is LeaseState.ACTIVE

    def test_revoke_one_prefers_oldest_lease(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        first = complete(cluster.sim, broker.acquire("db", 16 * MB))[0]
        second = complete(cluster.sim, broker.acquire("db", 16 * MB))[0]
        revoked = complete(cluster.sim, broker.revoke_one("mem0"))
        assert revoked is first
        assert first.state is LeaseState.REVOKED
        assert second.state is LeaseState.ACTIVE

    def test_revoke_one_without_leases_returns_none(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        assert complete(cluster.sim, broker.revoke_one("mem0")) is None

    def test_force_expire_returns_regions_to_pool(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        before = broker.available_bytes("mem0")
        expired = broker.force_expire(leases)
        assert len(expired) == len(leases)
        assert broker.available_bytes("mem0") == before + 64 * MB

    def test_expiry_during_inflight_transfer(self):
        """One-sided RDMA in flight when the lease expires still lands;
        the *next* access sees the invalid lease and fails cleanly."""
        from repro.engine.files import RemoteMemoryUnavailable
        from repro.remotefile import RemoteMemoryFilesystem, StagingPool

        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        fs = RemoteMemoryFilesystem(db, broker, StagingPool(db))

        def setup():
            yield from fs.initialize()
            yield from proxies[0].offer_available()
            file = yield from fs.create("f", 64 * MB)
            yield from file.open()
            return file

        file = complete(cluster.sim, setup())
        outcomes = []

        def reader():
            try:
                yield from file.read_nodata(0, 4 * MB)  # long transfer
                outcomes.append("ok")
            except RemoteMemoryUnavailable:
                outcomes.append("failed")

        def expirer():
            yield cluster.sim.timeout(50)  # mid-transfer
            broker.force_expire(broker.leases_for(holder="db"))

        process = cluster.sim.spawn(reader())
        cluster.sim.spawn(expirer())
        cluster.sim.run_until_complete(process)
        assert outcomes == ["ok"]

        def reader_again():
            yield from file.read_nodata(0, 8192)

        with pytest.raises(RemoteMemoryUnavailable):
            complete(cluster.sim, reader_again())


class TestBrokerFailover:
    def test_rpcs_fail_while_broker_down(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        broker.fail()
        with pytest.raises(BrokerUnavailable):
            complete(cluster.sim, broker.acquire("db", 16 * MB))

    def test_dead_broker_stops_expiry_sweeps(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 16 * MB))
        broker.fail()
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        assert broker.check_expiry() == []
        assert leases[0].state is LeaseState.ACTIVE  # nobody swept it

    def test_recover_with_replay_keeps_active_leases(self):
        """Paper Section 4.2: broker state lives in the replicated
        metadata store, so a new broker instance re-learns the leases."""
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        broker.fail()
        survivors = complete(cluster.sim, broker.recover(replay=True))
        assert sorted(l.lease_id for l in survivors) == sorted(l.lease_id for l in leases)
        assert all(l.state is LeaseState.ACTIVE for l in leases)
        assert broker.alive

    def test_recover_without_replay_revokes_everything(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 64 * MB))
        broker.fail()
        survivors = complete(cluster.sim, broker.recover(replay=False))
        assert survivors == []
        assert all(l.state is LeaseState.REVOKED for l in leases)

    def test_recover_sweeps_leases_that_expired_during_downtime(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        leases = complete(cluster.sim, broker.acquire("db", 16 * MB))
        broker.fail()
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        survivors = complete(cluster.sim, broker.recover(replay=True))
        assert survivors == []
        assert leases[0].state is LeaseState.EXPIRED

    def test_fail_provider_revokes_without_recycling_regions(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=2, spare_gb=1)
        for proxy in proxies:
            complete(cluster.sim, proxy.offer_available())
        leases = complete(
            cluster.sim, broker.acquire("db", 32 * MB, providers=["mem0"])
        )
        revoked = complete(cluster.sim, broker.fail_provider("mem0"))
        assert sorted(l.lease_id for l in revoked) == sorted(l.lease_id for l in leases)
        assert all(l.state is LeaseState.REVOKED for l in leases)
        # Dead regions must NOT return to the available pool...
        assert broker.available_bytes("mem0") == 0
        # ...and the survivor provider is untouched.
        assert broker.available_bytes("mem1") == 1 * GB

    def test_fail_provider_notifies_holder(self):
        cluster, db, broker, proxies = make_cluster(memory_servers=1, spare_gb=1)
        complete(cluster.sim, proxies[0].offer_available())
        complete(cluster.sim, broker.acquire("db", 16 * MB))
        seen = []
        broker.revocation_listeners["db"] = seen.append
        complete(cluster.sim, broker.fail_provider("mem0"))
        assert len(seen) == 1
