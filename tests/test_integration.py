"""End-to-end integration tests across the full stack.

These exercise complete scenarios — broker to engine to workload — and
the correctness invariants the paper's best-effort design relies on:
query results never change, whatever happens to the remote memory.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import Design, build_database, prewarm_extension
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan


def query_sum(db, table, low, high):
    def job():
        rows = yield from table.clustered.range_scan(low, high)
        index = table.schema.index_of("acctbal")
        return sum(row[index] for row in rows), len(rows)

    return db.sim.run_until_complete(db.sim.spawn(job()))


class TestResultCorrectnessAcrossDesigns:
    """The same query must return identical results on every design."""

    @pytest.mark.parametrize("design", list(Design))
    def test_range_sum_identical(self, design):
        setup = build_database(design, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256)
        db = setup.database
        table = build_customer_table(db, 3000)
        prewarm_extension(setup)
        total, count = query_sum(db, table, 100, 700)
        expected = sum(float(1000 + key % 9000) for key in range(100, 700))
        assert count == 600
        assert total == pytest.approx(expected)


class TestBestEffortSemantics:
    def test_results_identical_before_and_after_remote_failure(self):
        setup = build_database(Design.CUSTOM, bp_pages=128, bpext_pages=1024,
                               tempdb_pages=256)
        db = setup.database
        table = build_customer_table(db, 3000)
        prewarm_extension(setup)
        before = query_sum(db, table, 0, 3000)
        # Every lease expires: the extension evaporates mid-flight.
        db.sim.run(until=db.sim.now + setup.broker.lease_duration_us + 1)
        db.pool.drop_all()
        after = query_sum(db, table, 0, 3000)
        assert before == after
        assert db.pool.extension.failures > 0 or not db.pool.extension.contains((2, 0))

    def test_updates_survive_remote_failure(self):
        setup = build_database(Design.CUSTOM, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256)
        db = setup.database
        table = build_customer_table(db, 2000)
        prewarm_extension(setup)
        config = RangeScanConfig(n_rows=2000, workers=4, queries_per_worker=10,
                                 update_fraction=1.0, seed=3)
        run_rangescan(db, table, config)
        total_before, _ = query_sum(db, table, 0, 2000)
        # The remote extension evaporates; local state (pool + data
        # file) is untouched — a remote failure must not lose updates.
        db.sim.run(until=db.sim.now + setup.broker.lease_duration_us + 1)
        total_after, _ = query_sum(db, table, 0, 2000)
        assert total_after == pytest.approx(total_before)
        # Even after a checkpoint and a full local restart, the durable
        # image has every update.
        db.sim.run_until_complete(db.sim.spawn(db.pool.flush_all()))
        db.pool.drop_all()
        total_restart, _ = query_sum(db, table, 0, 2000)
        assert total_restart == pytest.approx(total_before)


class TestStackLatencyOrdering:
    def test_design_latency_ordering_on_cold_reads(self):
        """Cold page reads order by medium: remote < SSD-ext < HDD base."""
        latencies = {}
        for design in (Design.HDD, Design.HDD_SSD, Design.CUSTOM):
            setup = build_database(design, bp_pages=128, bpext_pages=1024,
                                   tempdb_pages=256)
            db = setup.database
            table = build_customer_table(db, 3000)
            prewarm_extension(setup)
            start = db.sim.now
            query_sum(db, table, 1500, 1600)
            latencies[design] = db.sim.now - start
        assert latencies[Design.CUSTOM] < latencies[Design.HDD_SSD]
        assert latencies[Design.HDD_SSD] < latencies[Design.HDD]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    low=st.integers(min_value=0, max_value=2500),
    span=st.integers(min_value=0, max_value=500),
    bp_pages=st.sampled_from([64, 256, 1024]),
)
def test_property_range_sum_independent_of_pool_size(low, span, bp_pages):
    """Property: results never depend on how much local memory exists."""
    setup = build_database(Design.CUSTOM, bp_pages=bp_pages, bpext_pages=512,
                           tempdb_pages=256)
    db = setup.database
    table = build_customer_table(db, 3000)
    high = min(3000, low + span)
    total, count = query_sum(db, table, low, high)
    expected_rows = [float(1000 + key % 9000) for key in range(low, high)]
    assert count == len(expected_rows)
    assert total == pytest.approx(sum(expected_rows))
