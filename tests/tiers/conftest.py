"""Shared fixtures for tier-stack tests.

Stack semantics (placement, demotion, promotion) are independent of the
backing medium, so the fixtures build two-level stacks from plain local
device stores — the engine rig's SSD over its HDD array — which keeps
the tests free of remote-memory bootstrap.
"""

import pytest

from repro.engine.files import DevicePageFile
from repro.engine.page import Page
from repro.tiers import Tier, build_stack
from tests.engine.conftest import EngineRig


@pytest.fixture
def rig():
    return EngineRig()


def make_page(n, file_id=1):
    return Page.build(file_id, n, [(n, "row")])


def make_stack(rig, cap_hot=2, cap_cold=8, promote=False):
    """SSD-over-HDD stack; ``promote`` pulls cold-tier hits back up."""
    hot = DevicePageFile(900, rig.db, rig.ssd, capacity_pages=cap_hot)
    cold = DevicePageFile(910, rig.db, rig.hdd, capacity_pages=cap_cold)
    return build_stack(
        [
            Tier("bpext.ssd", hot, medium="ssd"),
            Tier("bpext.hdd", cold, medium="hdd", promote_on_hit=promote),
        ]
    )
