"""TierStack semantics: placement, demotion, promotion, aggregation."""

import pytest

from repro.engine.bufferpool import BufferPoolExtension
from repro.engine.errors import PageNotFound
from repro.engine.files import DevicePageFile
from repro.tiers import Tier, TierStack, build_stack
from tests.tiers.conftest import make_page, make_stack


class TestBuildStack:
    def test_no_tiers_means_no_extension(self):
        assert build_stack([]) is None

    def test_single_tier_is_a_plain_extension(self, rig):
        store = DevicePageFile(900, rig.db, rig.ssd, capacity_pages=4)
        ext = build_stack([Tier("bpext", store, medium="ssd")])
        assert isinstance(ext, BufferPoolExtension)
        assert not isinstance(ext, TierStack)
        assert ext.tier.name == "bpext"

    def test_two_tiers_compose_a_stack(self, rig):
        stack = make_stack(rig)
        assert isinstance(stack, TierStack)
        assert [tier.name for tier in stack.tiers] == ["bpext.ssd", "bpext.hdd"]
        # Every level except the last has a demotion path.
        assert stack.levels[0].demote_sink is not None
        assert stack.levels[1].demote_sink is None


class TestPlacement:
    def test_put_lands_in_the_fastest_tier(self, rig):
        stack = make_stack(rig)
        rig.run(stack.put(make_page(0)))
        assert stack.levels[0].contains((1, 0))
        assert not stack.levels[1].contains((1, 0))

    def test_overflow_demotes_the_coldest_page(self, rig):
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        assert stack.demotions == 1
        # Page 0 was evicted from the hot tier into the cold tier, not
        # dropped; the two newest pages stay hot.
        assert stack.levels[1].contains((1, 0))
        assert stack.levels[0].contains((1, 1))
        assert stack.levels[0].contains((1, 2))
        assert stack.contains((1, 0))

    def test_put_skips_pages_a_lower_tier_already_holds(self, rig):
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))  # page 0 demoted below
        parked_hot = stack.levels[0].parked_pages
        rig.run(stack.put(make_page(0)))  # re-evicted from the pool
        # The cold copy is current (updates invalidate every level), so
        # re-parking it up top would double-cache and churn demotions.
        assert stack.levels[0].parked_pages == parked_hot
        assert not stack.levels[0].contains((1, 0))
        assert stack.demotions == 1

    def test_adopt_fills_fastest_first(self, rig):
        stack = make_stack(rig, cap_hot=2, cap_cold=2)
        assert all(stack.adopt(make_page(n)) for n in range(4))
        assert stack.levels[0].parked_pages == 2
        assert stack.levels[1].parked_pages == 2
        assert stack.adopt(make_page(4)) is False  # every tier full


class TestFetch:
    def test_get_from_any_tier_counts_one_stack_hit(self, rig):
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        assert rig.run(stack.get((1, 2))).page_no == 2  # hot tier
        assert rig.run(stack.get((1, 0))).page_no == 0  # cold tier
        assert stack.hits == 2
        assert stack.levels[0].hits == 1
        assert stack.levels[1].hits == 1
        assert len(stack.read_latency) == 2

    def test_absent_page_raises(self, rig):
        stack = make_stack(rig)
        with pytest.raises(PageNotFound):
            rig.run(stack.get((1, 99)))

    def test_cold_hit_promotes_when_asked(self, rig):
        stack = make_stack(rig, cap_hot=2, promote=True)
        for n in range(3):
            rig.run(stack.put(make_page(n)))  # page 0 demoted below
        page = rig.run(stack.get((1, 0)))
        assert page.page_no == 0
        assert stack.promotions == 1
        assert stack.levels[0].contains((1, 0))
        assert not stack.levels[1].contains((1, 0))
        # The hot tier was full: the promotion demoted another victim.
        assert stack.demotions == 2

    def test_cold_hit_stays_put_by_default(self, rig):
        stack = make_stack(rig, cap_hot=2, promote=False)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        rig.run(stack.get((1, 0)))
        assert stack.promotions == 0
        assert stack.levels[1].contains((1, 0))


class TestExtensionSurface:
    """The stack mirrors BufferPoolExtension, so the pool never branches."""

    def test_aggregates_sum_over_levels(self, rig):
        stack = make_stack(rig, cap_hot=2, cap_cold=8)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        assert stack.capacity_pages == 10
        assert stack.parked_pages == 3
        rig.run(stack.get((1, 1)))
        rig.run(stack.get((1, 0)))
        with pytest.raises(PageNotFound):
            rig.run(stack.get((1, 9)))
        assert stack.hits == sum(level.hits for level in stack.levels) == 2
        assert stack.misses == sum(level.misses for level in stack.levels)

    def test_invalidate_clears_every_level(self, rig):
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        stack.invalidate((1, 0))  # parked cold
        stack.invalidate((1, 2))  # parked hot
        assert not stack.contains((1, 0))
        assert not stack.contains((1, 2))
        assert stack.parked_pages == 1

    def test_enabled_toggles_every_level(self, rig):
        stack = make_stack(rig)
        rig.run(stack.put(make_page(0)))
        stack.enabled = False
        assert not stack.enabled
        assert not stack.contains((1, 0))
        stack.enabled = True
        assert stack.contains((1, 0))

    def test_clear_empties_the_hierarchy(self, rig):
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        stack.clear()
        assert stack.parked_pages == 0

    def test_on_fault_sweeps_every_level(self, rig):
        # Device stores name no provider, so a provider-targeted sweep
        # conservatively invalidates both tiers.
        stack = make_stack(rig, cap_hot=2)
        for n in range(3):
            rig.run(stack.put(make_page(n)))
        lost = stack.on_fault(provider="mem0")
        assert len(lost) == 3
        assert stack.pages_lost_to_faults == 3
        assert stack.parked_pages == 0

    def test_level_failures_reach_stack_listeners(self, rig):
        stack = make_stack(rig)
        seen = []
        stack.fault_listeners.append(seen.append)
        rig.run(stack.put(make_page(0)))
        level = stack.levels[0]
        level._on_failure((1, 0), level._slots[(1, 0)])
        assert seen == [(1, 0)]
        assert stack.failures == 1

    def test_shared_bytes_series(self, rig):
        stack = make_stack(rig)
        series = stack.track_throughput()
        assert all(level.bytes_series is series for level in stack.levels)
        assert stack.bytes_series is series
        rig.run(stack.put(make_page(0)))
        rig.run(stack.get((1, 0)))
        assert sum(series.buckets.values()) == 2 * 8192

    def test_level_for_finds_the_medium(self, rig):
        stack = make_stack(rig)
        assert stack.level_for("hdd") is stack.levels[1]
        assert stack.level_for("ssd") is stack.levels[0]
        assert stack.level_for("remote") is None
