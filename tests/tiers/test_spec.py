"""The declarative tier grammar: validation, resolution, compilation."""

import pytest

from repro.harness import DESIGNS, TIER_SPECS, Design
from repro.tiers import TierDef, TierSpec, latency_class_for, spec_for


class TestValidation:
    def test_unknown_tier_medium_rejected(self):
        with pytest.raises(ValueError):
            TierDef(medium="tape")

    def test_non_positive_share_rejected(self):
        with pytest.raises(ValueError):
            TierDef(medium="ssd", share=0)

    def test_unknown_store_medium_rejected(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", tempdb="floppy")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", protocol="nfs")

    def test_remote_placement_requires_protocol(self):
        with pytest.raises(ValueError):
            TierSpec(name="x", extension=(TierDef(medium="remote"),))
        with pytest.raises(ValueError):
            TierSpec(name="x", tempdb="remote")
        # With a protocol the same topologies are fine.
        TierSpec(name="x", extension=(TierDef(medium="remote"),), protocol="ndspi")


class TestResolve:
    def spec(self, **kwargs):
        defaults = dict(
            name="t",
            extension=(
                TierDef(medium="ssd", share=1.0),
                TierDef(medium="remote", share=2.0),
            ),
            protocol="ndspi",
        )
        defaults.update(kwargs)
        return TierSpec(**defaults)

    def test_share_weighted_split_is_exact(self):
        plan = self.spec().resolve(analytic=False, bpext_pages=1200, tempdb_pages=64)
        assert [t.capacity_pages for t in plan.extension] == [400, 800]

    def test_remainder_lands_in_last_tier(self):
        spec = TierSpec(
            name="t",
            extension=tuple(TierDef(medium="ssd", share=1.0) for _ in range(3)),
        )
        plan = spec.resolve(analytic=False, bpext_pages=10, tempdb_pages=0)
        assert [t.capacity_pages for t in plan.extension] == [3, 3, 4]
        assert sum(t.capacity_pages for t in plan.extension) == 10

    def test_tier_names_single_vs_stack(self):
        single = TierSpec(name="t", extension=(TierDef(medium="ssd"),))
        plan = single.resolve(analytic=False, bpext_pages=8, tempdb_pages=0)
        assert [t.name for t in plan.extension] == ["bpext"]
        plan = self.spec().resolve(analytic=False, bpext_pages=8, tempdb_pages=0)
        assert [t.name for t in plan.extension] == ["bpext.ssd", "bpext.remote"]

    def test_analytic_rule_lives_in_resolve(self):
        spec = self.spec(extension_for_analytics=False)
        assert spec.resolve(analytic=False, bpext_pages=8, tempdb_pages=0).extension
        assert not spec.resolve(analytic=True, bpext_pages=8, tempdb_pages=0).extension
        keeps = self.spec(extension_for_analytics=True)
        assert keeps.resolve(analytic=True, bpext_pages=8, tempdb_pages=0).extension

    def test_zero_budget_disables_extension(self):
        plan = self.spec().resolve(analytic=False, bpext_pages=0, tempdb_pages=0)
        assert plan.extension == ()

    def test_plan_carries_placements(self):
        plan = self.spec(tempdb="remote", wal="hdd").resolve(
            analytic=False, bpext_pages=8, tempdb_pages=32
        )
        assert plan.tempdb.medium == "remote"
        assert plan.tempdb.capacity_pages == 32
        assert plan.wal.medium == "hdd"
        assert plan.needs_remote
        assert [t.medium for t in plan.remote_extension_tiers()] == ["remote"]

    def test_latency_classes(self):
        assert latency_class_for("remote", "ndspi") == "rdma"
        assert latency_class_for("remote", "smb") == "lan"
        assert latency_class_for("ssd") == "ssd"
        assert latency_class_for("hdd") == "hdd"


class TestSpecCompilation:
    @pytest.mark.parametrize("design", list(DESIGNS))
    def test_spec_for_matches_design_config(self, design):
        config = DESIGNS[design]
        spec = spec_for(config)
        assert spec.name == design.value
        assert spec.tempdb == config.tempdb
        assert spec.protocol == config.protocol
        assert spec.sync_remote_io == config.sync_remote_io
        assert spec.extension_for_analytics == config.bpext_for_analytics
        if config.bpext is None:
            assert spec.extension == ()
        else:
            assert [t.medium for t in spec.extension] == [config.bpext]
        assert spec.semcache == ("remote" if config.protocol else "ssd")

    def test_tier_specs_cover_every_design(self):
        assert set(TIER_SPECS) == set(Design)

    def test_local_memory_absorbs_extension_budget(self):
        assert TIER_SPECS[Design.LOCAL_MEMORY].pool_absorbs_extension
        assert not TIER_SPECS[Design.CUSTOM].pool_absorbs_extension

    def test_three_tier_is_pure_data(self):
        spec = TIER_SPECS[Design.THREE_TIER]
        assert [t.medium for t in spec.extension] == ["ssd", "remote"]
        assert spec.extension[1].promote_on_hit
        assert spec.protocol == "ndspi"
