"""TPC-C under real transactions: 2PL row locks, deadlock recovery,
serializability, and bit-identical seeded replay."""

import pytest

from repro.harness import Design, build_database
from repro.txn import check_serializable, committed_row_images
from repro.workloads import TpccConfig, TpccScale, build_tpcc_database, run_tpcc


def make(seed=7):
    setup = build_database(
        Design.CUSTOM, bp_pages=830, bpext_pages=1650, tempdb_pages=512, seed=seed
    )
    db = setup.database
    state = build_tpcc_database(
        db, TpccScale(warehouses=4, items=200, history_orders=40)
    )
    return setup, db, state


def conflict_heavy_config(state, seed=7, record_history=False):
    """Hot-district routing concentrates 80% of traffic on 5% of the
    districts — enough contention for real deadlocks."""
    return TpccConfig(
        scale=state.scale, workers=20, transactions_per_worker=10, seed=seed,
        concurrency="2pl", hot_district_fraction=0.8, hot_district_share=0.05,
        record_history=record_history,
    )


def tpcc_tables(state):
    return [
        state.warehouse, state.district, state.customer,
        state.stock, state.orders, state.order_line,
    ]


class TestTwoPhaseLocking:
    def test_conflict_heavy_run_commits_everything(self):
        _setup, db, state = make()
        report = run_tpcc(db, state, conflict_heavy_config(state))
        manager = db.transactions()
        assert report.transactions == 200
        assert report.commits == 200
        # Real contention: deadlocks happened and every victim retried
        # through to success.
        assert report.deadlocks > 0
        assert report.aborts > 0
        assert report.retries == report.aborts
        assert report.abort_rate > 0
        assert manager.exhausted == 0
        # No leaked locks and no stuck transactions.
        assert manager.locks.idle
        assert manager.active_count == 0

    def test_conflict_heavy_run_is_serializable(self):
        _setup, db, state = make()
        manager = db.transactions(record_history=True)
        run_tpcc(db, state, conflict_heavy_config(state, record_history=True))
        final = committed_row_images(db, tpcc_tables(state))
        result = check_serializable(manager.history, final_rows=final)
        assert result.ok, result.violations[:5]
        assert result.txns > 0

    def test_two_seeded_runs_bit_identical(self):
        def run_once():
            _setup, db, state = make()
            report = run_tpcc(db, state, conflict_heavy_config(state))
            return (
                db.sim.now, report.transactions, report.commits, report.aborts,
                report.deadlocks, report.retries, report.lock_wait_us,
                len(db.wal.records), state.next_order_id,
            )

        assert run_once() == run_once()

    def test_district_mode_remains_deadlock_free(self):
        _setup, db, state = make()
        config = TpccConfig(
            scale=state.scale, workers=20, transactions_per_worker=10, seed=7,
            hot_district_fraction=0.8, hot_district_share=0.05,
        )
        report = run_tpcc(db, state, config)
        assert report.transactions == 200
        # District-granularity writers lock one resource each: no
        # cycles are possible, so nothing ever aborts.
        assert report.deadlocks == 0
        assert report.aborts == 0

    def test_2pl_mode_preserves_workload_invariants(self):
        _setup, db, state = make()
        before = state.next_order_id
        rows_before = state.orders.stats.row_count
        config = TpccConfig(
            scale=state.scale, workers=5, transactions_per_worker=10,
            mix={"new_order": 1.0}, concurrency="2pl",
        )
        report = run_tpcc(db, state, config)
        # Order ids allocate eagerly per *attempt* (aborted retries burn
        # ids), but exactly one order row lands per committed intent.
        assert report.commits == 50
        assert state.next_order_id == before + 50 + report.aborts
        assert state.orders.stats.row_count == rows_before + 50

        def check():
            rows = yield from state.orders.clustered.search(before)
            return rows

        assert len(db.sim.run_until_complete(db.sim.spawn(check()))) == 1
