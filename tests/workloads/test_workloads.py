"""Tests for the workload generators and the harness builders."""

import pytest

from repro.harness import DESIGNS, Design, build_database, prewarm_extension
from repro.harness.dbbench import prewarm_pool
from repro.workloads import (
    DEFAULT_MIX,
    READ_MOSTLY_MIX,
    RangeScanConfig,
    TpccConfig,
    TpccScale,
    build_customer_table,
    build_tpcc_database,
    build_tpcds_database,
    build_tpch_database,
    run_rangescan,
    run_tpcc,
    run_query_streams,
    improvement_histogram,
)
from repro.workloads.tpcds import TPCDS_QUERIES
from repro.workloads.tpch import TPCH_QUERIES


class TestDesignTable:
    def test_all_six_designs_defined(self):
        assert len(DESIGNS) == 6

    def test_remote_designs_have_protocols(self):
        assert DESIGNS[Design.CUSTOM].protocol == "ndspi"
        assert DESIGNS[Design.SMB_RAMDRIVE].protocol == "smb"
        assert DESIGNS[Design.SMBDIRECT_RAMDRIVE].protocol == "smbdirect"
        assert DESIGNS[Design.HDD].protocol is None

    def test_only_custom_is_synchronous(self):
        sync = [d for d, c in DESIGNS.items() if c.sync_remote_io]
        assert sync == [Design.CUSTOM]


class TestBuildDatabase:
    @pytest.mark.parametrize("design", list(Design))
    def test_every_design_builds_and_serves(self, design):
        bonus = 512 if design is Design.LOCAL_MEMORY else 0
        setup = build_database(design, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256, local_memory_bonus_pages=bonus)
        db = setup.database
        table = build_customer_table(db, 2000)
        config = RangeScanConfig(n_rows=2000, workers=4, queries_per_worker=5)
        report = run_rangescan(db, table, config)
        assert report.queries == 20
        assert report.throughput_qps > 0

    def test_analytic_flag_disables_bpext_on_disk_designs(self):
        setup = build_database(Design.HDD_SSD, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256, analytic=True)
        assert setup.database.pool.extension is None
        setup = build_database(Design.CUSTOM, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256, analytic=True)
        assert setup.database.pool.extension is not None

    def test_prewarm_extension_installs_pages(self):
        setup = build_database(Design.CUSTOM, bp_pages=128, bpext_pages=512,
                               tempdb_pages=256)
        db = setup.database
        build_customer_table(db, 2000)
        installed = prewarm_extension(setup)
        assert 0 < installed <= 512

    def test_prewarm_pool_fills_frames(self):
        setup = build_database(Design.LOCAL_MEMORY, bp_pages=512,
                               bpext_pages=0, tempdb_pages=256)
        db = setup.database
        build_customer_table(db, 2000)
        cached = prewarm_pool(setup)
        assert cached > 0
        assert db.pool.in_memory_pages == cached


class TestRangeScan:
    def test_hotspot_distribution_concentrates(self):
        import numpy as np
        from repro.workloads.rangescan import _start_keys

        config = RangeScanConfig(n_rows=10_000, distribution="hotspot",
                                 hotspot_fraction=0.2, hotspot_probability=0.99)
        keys = _start_keys(config, np.random.default_rng(0), 2000)
        hot = (keys < 0.2 * (10_000 - config.range_size)).mean()
        assert hot > 0.95

    def test_update_fraction_produces_updates(self):
        setup = build_database(Design.CUSTOM, bp_pages=256, bpext_pages=512,
                               tempdb_pages=256)
        db = setup.database
        table = build_customer_table(db, 3000)
        config = RangeScanConfig(n_rows=3000, workers=4, queries_per_worker=10,
                                 update_fraction=0.5)
        report = run_rangescan(db, table, config)
        assert report.update_latency.count > 0
        assert len(db.wal.records) > 0

    def test_updates_actually_change_rows(self):
        setup = build_database(Design.CUSTOM, bp_pages=256, bpext_pages=512,
                               tempdb_pages=256)
        db = setup.database
        table = build_customer_table(db, 1000)
        config = RangeScanConfig(n_rows=1000, workers=2, queries_per_worker=10,
                                 update_fraction=1.0)
        run_rangescan(db, table, config)

        def check():
            rows = yield from table.clustered.range_scan(0, 1000)
            return rows

        rows = db.sim.run_until_complete(db.sim.spawn(check()))
        balance_index = table.schema.index_of("acctbal")
        original_total = sum(float(1000 + k % 9000) for k in range(1000))
        assert sum(row[balance_index] for row in rows) > original_total


class TestAnalyticsWorkloads:
    def test_tpch_queries_all_run(self):
        setup = build_database(Design.CUSTOM, bp_pages=256, bpext_pages=2600,
                               tempdb_pages=49152, analytic=True)
        db = setup.database
        tables = build_tpch_database(db)
        prewarm_extension(setup)
        report = run_query_streams(db, tables, TPCH_QUERIES, streams=1, seed=3)
        assert report.queries == 22
        assert set(report.per_query) == {spec.name for spec in TPCH_QUERIES}

    def test_tpcds_has_sixty_templates(self):
        assert len(TPCDS_QUERIES) == 60

    def test_tpcds_subset_runs(self):
        setup = build_database(Design.CUSTOM, bp_pages=256, bpext_pages=4600,
                               tempdb_pages=49152, analytic=True)
        db = setup.database
        tables = build_tpcds_database(db)
        prewarm_extension(setup)
        report = run_query_streams(db, tables, TPCDS_QUERIES[:12], streams=2, seed=3)
        assert report.queries == 24

    def test_improvement_histogram_buckets(self):
        from repro.sim import LatencyRecorder
        from repro.workloads.analytics import StreamReport

        slow = StreamReport()
        fast = StreamReport()
        for name, (s, f) in {"a": (100, 80), "b": (300, 100), "c": (900, 100),
                             "d": (10_000, 100)}.items():
            slow.per_query[name] = LatencyRecorder(name)
            slow.per_query[name].record(s)
            fast.per_query[name] = LatencyRecorder(name)
            fast.per_query[name].record(f)
        histogram = improvement_histogram(slow, fast, buckets=(2, 5, 10))
        assert histogram == {"<2x": 1, "2-5x": 1, "5-10x": 1, ">10x": 1}


class TestTpcc:
    def make(self, design=Design.CUSTOM):
        setup = build_database(design, bp_pages=830, bpext_pages=1650,
                               tempdb_pages=512)
        db = setup.database
        state = build_tpcc_database(db, TpccScale(warehouses=4, items=200,
                                                  history_orders=40))
        return setup, db, state

    def test_transactions_complete(self):
        _setup, db, state = self.make()
        config = TpccConfig(scale=state.scale, workers=10,
                            transactions_per_worker=10)
        report = run_tpcc(db, state, config)
        assert report.transactions == 100
        assert report.throughput_tps > 0

    def test_new_order_inserts_rows(self):
        _setup, db, state = self.make()
        before = state.next_order_id
        config = TpccConfig(scale=state.scale, workers=5,
                            transactions_per_worker=10,
                            mix={"new_order": 1.0})
        run_tpcc(db, state, config)
        assert state.next_order_id == before + 50

        def check():
            rows = yield from state.orders.clustered.search(before)
            return rows

        assert len(db.sim.run_until_complete(db.sim.spawn(check()))) == 1

    def test_payment_updates_balance(self):
        _setup, db, state = self.make()
        config = TpccConfig(scale=state.scale, workers=4,
                            transactions_per_worker=10, mix={"payment": 1.0})
        run_tpcc(db, state, config)

        def check():
            total = 0.0
            for c_key in range(state.scale.customers):
                rows = yield from state.customer.clustered.search(c_key)
                total += rows[0][1]
            return total

        total = db.sim.run_until_complete(db.sim.spawn(check()))
        assert total < 100.0 * state.scale.customers  # payments debited

    def test_mixes_are_valid_distributions(self):
        assert abs(sum(DEFAULT_MIX.values()) - 1.0) < 1e-9
        assert abs(sum(READ_MOSTLY_MIX.values()) - 1.0) < 1e-9
        assert READ_MOSTLY_MIX["stock_level"] == 0.9
