"""Tests for the SQLIO driver and the cluster/server model."""

import pytest

from repro.cluster import Cluster
from repro.harness import build_io_target
from repro.storage import GB, KB
from repro.workloads import RANDOM_8K, SEQUENTIAL_512K, SqlioPattern, run_sqlio
from repro.workloads.sqlio import launch_sqlio


class TestCluster:
    def test_memory_accounting(self):
        cluster = Cluster()
        server = cluster.add_server("s", memory_bytes=10 * GB)
        server.commit_memory(4 * GB)
        assert server.memory_available == 6 * GB
        server.release_memory(4 * GB)
        assert server.memory_available == 10 * GB

    def test_overcommit_rejected(self):
        cluster = Cluster()
        server = cluster.add_server("s", memory_bytes=1 * GB)
        with pytest.raises(MemoryError):
            server.commit_memory(2 * GB)

    def test_over_release_rejected(self):
        cluster = Cluster()
        server = cluster.add_server("s")
        with pytest.raises(ValueError):
            server.release_memory(1)

    def test_duplicate_server_name_rejected(self):
        cluster = Cluster()
        cluster.add_server("s")
        with pytest.raises(ValueError):
            cluster.add_server("s")

    def test_duplicate_device_key_rejected(self):
        from repro.storage import SsdDevice

        cluster = Cluster()
        server = cluster.add_server("s")
        server.attach_device("ssd", SsdDevice(cluster.sim))
        with pytest.raises(ValueError):
            server.attach_device("ssd", SsdDevice(cluster.sim))

    def test_iteration_and_len(self):
        cluster = Cluster()
        cluster.add_server("a")
        cluster.add_server("b")
        assert len(cluster) == 2
        assert {server.name for server in cluster} == {"a", "b"}


class TestSqlio:
    def test_op_count_and_bytes(self):
        target = build_io_target("SSD", span_bytes=8 * GB)
        pattern = SqlioPattern(name="t", threads=3, io_bytes=8 * KB,
                               random=True, ops_per_thread=7)
        result = run_sqlio(target.cluster.sim, target, pattern,
                           span_bytes=target.span_bytes)
        assert result.latency.count == 21
        assert result.total_bytes == 21 * 8 * KB

    def test_deterministic_given_seed(self):
        def once():
            target = build_io_target("HDD(4)", span_bytes=8 * GB)
            result = run_sqlio(
                target.cluster.sim, target, RANDOM_8K,
                span_bytes=target.span_bytes,
                rng=target.cluster.rng.stream("sqlio"),
            )
            return result.mean_latency_us

        assert once() == once()

    def test_sequential_streams_are_disjoint(self):
        offsets = []
        target = build_io_target("SSD", span_bytes=8 * GB)
        original = target._reader.read

        def recording_read(offset, size):
            offsets.append(offset)
            yield from original(offset, size)

        target._reader.read = recording_read
        pattern = SqlioPattern(name="t", threads=4, io_bytes=512 * KB,
                               random=False, ops_per_thread=5)
        run_sqlio(target.cluster.sim, target, pattern, span_bytes=8 * GB)
        slice_bytes = 8 * GB // 4
        for thread in range(4):
            lo = thread * slice_bytes
            hi = lo + slice_bytes
            thread_offsets = [o for o in offsets if lo <= o < hi]
            assert len(thread_offsets) == 5

    def test_launch_does_not_block(self):
        target = build_io_target("SSD", span_bytes=8 * GB)
        sim = target.cluster.sim
        processes, finalize = launch_sqlio(
            sim, target, SEQUENTIAL_512K, span_bytes=target.span_bytes
        )
        assert all(process.is_alive for process in processes)
        for process in processes:
            sim.run_until_complete(process)
        result = finalize()
        assert result.latency.count == SEQUENTIAL_512K.threads * SEQUENTIAL_512K.ops_per_thread
