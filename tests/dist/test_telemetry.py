"""Dist telemetry: exchange gauges, tracing invariance, trace export."""

from repro.dist import (
    DistQuery,
    DistSpec,
    Strategy,
    build_strategy,
    compile_fragments,
    execute_query,
)
from repro.telemetry import install, to_chrome_trace, validate_chrome_trace
from repro.telemetry.attach import register_dist
from repro.workloads import TpchScale

SMALL = TpchScale(orders=300, lines_per_order=2, customers=80, parts=60, suppliers=15)

CUST_ORDERS = DistQuery(
    name="cust_orders",
    build_table="customer", build_key="custkey",
    probe_table="orders", probe_key="custkey",
    build_filter=("acctbal", "<", 50.0),
    projection=(("build", "custkey"), ("build", "acctbal"),
                ("probe", "orderkey"), ("probe", "totalprice")),
    top_n=250, semijoin=True,
)

SPEC = DistSpec(name="ttest", db_servers=2, bp_pages=400, tempdb_pages=256,
                data_spindles=2, db_cores=4)


def _fingerprint(trace: bool):
    setup = build_strategy(Strategy.QUERY, SPEC, total_ext_pages=0,
                           scale=SMALL, seed=6)
    tracer = install(setup.sim) if trace else None
    result = execute_query(setup, CUST_ORDERS)
    fingerprint = (
        setup.sim.now,
        result.elapsed_us,
        tuple(result.rows),
        tuple(sorted(result.metrics.items())),
    )
    return fingerprint, tracer, setup


class TestRegisterDist:
    def test_gauges_bound_after_compile(self):
        setup = build_strategy(Strategy.QUERY, SPEC, total_ext_pages=0,
                               scale=SMALL, seed=6)
        # Compiling declares the exchange ids eagerly; binding then sees
        # them even before the query runs.
        compile_fragments(CUST_ORDERS, setup, tag="bind")
        register_dist(setup.metrics, "dist", setup.runtime)
        for tag in ("shuffle", "gather", "bloom"):
            name = f"dist.exchange.cust_orders.bind.{tag}.bytes"
            assert name in setup.metrics
            assert setup.metrics.get(name).read() == 0.0

    def test_total_gauges_are_live(self):
        setup = build_strategy(Strategy.QUERY, SPEC, total_ext_pages=0,
                               scale=SMALL, seed=6)
        # Bind BEFORE anything is compiled: the fabric-wide totals read
        # live over the stats dict, so exchanges declared by later
        # compiles are still counted.
        register_dist(setup.metrics, "dist", setup.runtime)
        total_rows = setup.metrics.get("dist.exchange.total.rows")
        assert total_rows.read() == 0.0
        execute_query(setup, CUST_ORDERS)
        expected = sum(stats.rows for stats in setup.runtime.stats.values())
        assert expected > 0
        assert total_rows.read() == float(expected)
        assert setup.metrics.get("dist.exchange.total.bytes").read() > 0

    def test_gauges_track_execution(self):
        setup = build_strategy(Strategy.QUERY, SPEC, total_ext_pages=0,
                               scale=SMALL, seed=6)
        result = execute_query(setup, CUST_ORDERS)
        register_dist(setup.metrics, "dist", setup.runtime)
        shuffle = setup.runtime.stats["cust_orders.run.shuffle"]
        prefix = "dist.exchange.cust_orders.run.shuffle"
        assert setup.metrics.get(f"{prefix}.rows").read() == float(shuffle.rows)
        assert setup.metrics.get(f"{prefix}.bytes").read() == float(shuffle.bytes)
        assert shuffle.rows > 0
        assert result.metrics["exchange_bytes"] >= shuffle.bytes


class TestTracingInvariance:
    def test_query_shipping_identical_with_tracing_on_and_off(self):
        off, _, _ = _fingerprint(trace=False)
        on, tracer, _ = _fingerprint(trace=True)
        assert on == off  # bit-identical rows, metrics and virtual clock
        assert tracer.spans

    def test_exchange_spans_exported_and_valid(self):
        _, tracer, _ = _fingerprint(trace=True)
        names = {span.name for span in tracer.spans}
        assert "dist.exchange.send" in names
        # Operator auto-spans name themselves after the class.
        assert {"ShuffleExchange", "GatherExchange", "HashJoin"} <= names
        events = validate_chrome_trace(to_chrome_trace(tracer, label="dist"))
        assert events
