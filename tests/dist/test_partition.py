"""Partitioning grammar: stable hashing, ownership, sharding."""

import pytest

from repro.dist import (
    TPCH_PARTITIONING,
    DistSpec,
    PartitionSpec,
    build_dist,
    load_tpch_partitioned,
    load_tpch_single,
    partition_rows,
    stable_hash,
)
from repro.workloads import TPCH_SCHEMAS, TpchScale, generate_tpch_rows

SMALL = TpchScale(orders=200, lines_per_order=2, customers=50, parts=40, suppliers=10)


class TestStableHash:
    def test_stable_across_calls(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash("abc") == stable_hash("abc")

    def test_known_values_pinned(self):
        # Pinned so a refactor cannot silently re-shard every table.
        assert stable_hash(0) == 0
        assert stable_hash(1) == 6238072747940578789
        assert stable_hash("lineitem") == 2705002430

    def test_spreads_sequential_keys(self):
        owners = [stable_hash(key) % 4 for key in range(1000)]
        counts = [owners.count(i) for i in range(4)]
        assert min(counts) > 150  # roughly balanced, not degenerate


class TestPartitionSpec:
    def test_hash_owner_in_range(self):
        spec = PartitionSpec("orders", "orderkey")
        assert all(0 <= spec.owner(k, 3) < 3 for k in range(100))

    def test_single_server_owns_everything(self):
        spec = PartitionSpec("orders", "orderkey")
        assert all(spec.owner(k, 1) == 0 for k in range(50))

    def test_range_owner(self):
        spec = PartitionSpec("orders", "orderkey", method="range", bounds=(100, 200))
        assert spec.owner(5, 3) == 0
        assert spec.owner(100, 3) == 1
        assert spec.owner(999, 3) == 2

    def test_range_needs_matching_bounds(self):
        spec = PartitionSpec("orders", "orderkey", method="range", bounds=(100,))
        with pytest.raises(ValueError):
            spec.owner(5, 3)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            PartitionSpec("orders", "orderkey", method="round_robin")

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            PartitionSpec("orders", "orderkey", method="range", bounds=(200, 100))


class TestPartitionRows:
    def test_shards_are_a_partition_of_the_input(self):
        rows = generate_tpch_rows(SMALL, seed=1)["orders"]
        spec = PartitionSpec("orders", "orderkey")
        shards = partition_rows(rows, TPCH_SCHEMAS["orders"], spec, 4)
        assert sum(len(s) for s in shards) == len(rows)
        merged = sorted(row for shard in shards for row in shard)
        assert merged == sorted(rows)

    def test_zero_row_shard_is_legal(self):
        rows = generate_tpch_rows(SMALL, seed=1)["orders"]
        # All orderkeys < 200, so the upper range partitions are empty.
        spec = PartitionSpec(
            "orders", "orderkey", method="range", bounds=(10_000, 20_000)
        )
        shards = partition_rows(rows, TPCH_SCHEMAS["orders"], spec, 3)
        assert len(shards[0]) == len(rows)
        assert shards[1] == [] and shards[2] == []

    def test_tpch_partitioning_covers_all_tables(self):
        assert set(TPCH_PARTITIONING) == set(TPCH_SCHEMAS)
        for name, spec in TPCH_PARTITIONING.items():
            assert spec.table == name


class TestBuildDist:
    def test_identical_hardware_per_server(self):
        spec = DistSpec(name="t", db_servers=3, bp_pages=64, tempdb_pages=64,
                        data_spindles=2, db_cores=4)
        setup = build_dist(spec)
        assert len(setup.databases) == 3
        for server in setup.db_servers:
            assert set(server.devices) == {"hdd", "ssd"}
        # All-pairs exchange channels exist.
        assert len(setup.runtime.channels) == 6

    def test_partitioned_load_covers_every_row(self):
        spec = DistSpec(name="t", db_servers=2, bp_pages=128, tempdb_pages=64,
                        data_spindles=2, db_cores=4)
        setup = build_dist(spec)
        load_tpch_partitioned(setup, scale=SMALL, seed=2)
        rows = generate_tpch_rows(SMALL, seed=2)
        for table in TPCH_SCHEMAS:
            sharded = sum(
                tables[table].stats.row_count for tables in setup.tables
            )
            assert sharded == len(rows[table])
        assert setup.partitioning is not None

    def test_single_load_puts_everything_on_db0(self):
        spec = DistSpec(name="t", db_servers=2, bp_pages=128, tempdb_pages=64,
                        data_spindles=2, db_cores=4)
        setup = build_dist(spec)
        load_tpch_single(setup, scale=SMALL, seed=2)
        assert len(setup.tables) == 1
        assert setup.partitioning is None

    def test_remote_extension_wiring(self):
        spec = DistSpec(name="t", db_servers=2, memory_servers=2, bp_pages=64,
                        ext_pages=(256, 256), tempdb_pages=64,
                        data_spindles=2, db_cores=4)
        setup = build_dist(spec)
        assert setup.broker is not None
        assert len(setup.memory_servers) == 2
        for database in setup.databases:
            assert database.pool.extension is not None

    def test_ext_pages_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_dist(DistSpec(name="t", db_servers=2, ext_pages=(256,)))
