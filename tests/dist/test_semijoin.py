"""Bloom-filter semi-join pushdown: geometry, unions, byte savings."""

import pytest

from repro.dist import (
    BloomFilter,
    DistQuery,
    DistSpec,
    build_dist,
    execute_query,
    load_tpch_partitioned,
    prewarm_dist,
)
from repro.workloads import TpchScale

SMALL = TpchScale(orders=400, lines_per_order=2, customers=100, parts=80, suppliers=20)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1 << 12)
        keys = list(range(0, 4000, 7))
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_is_bounded(self):
        bloom = BloomFilter(1 << 15)
        for key in range(200):
            bloom.add(key)
        absent = range(1_000_000, 1_002_000)
        false_positives = sum(1 for key in absent if key in bloom)
        assert false_positives / 2000 < 0.05

    def test_rejects_non_power_of_two_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(1000)

    def test_union_requires_matching_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(1 << 10).union(BloomFilter(1 << 12))

    def test_union_merges_membership(self):
        left, right = BloomFilter(1 << 12), BloomFilter(1 << 12)
        left.add("alpha")
        right.add("beta")
        left.union(right)
        assert "alpha" in left and "beta" in left

    def test_wire_size_matches_geometry(self):
        assert BloomFilter(1 << 15).size_bytes == (1 << 15) // 8

    def test_string_and_int_keys_coexist(self):
        bloom = BloomFilter(1 << 12)
        bloom.add("orderkey")
        bloom.add(42)
        assert "orderkey" in bloom and 42 in bloom


def _query(semijoin: bool) -> DistQuery:
    return DistQuery(
        name="semi", build_table="customer", build_key="custkey",
        probe_table="orders", probe_key="custkey",
        build_filter=("acctbal", "<", 60.0),
        projection=(("build", "custkey"), ("probe", "orderkey"),
                    ("probe", "totalprice")),
        top_n=400, semijoin=semijoin,
    )


def _run(semijoin: bool, tag: str):
    setup = build_dist(DistSpec(
        name="semi", db_servers=2, bp_pages=400, tempdb_pages=256,
        data_spindles=2, db_cores=4,
    ))
    load_tpch_partitioned(setup, scale=SMALL, seed=7)
    prewarm_dist(setup)
    result = execute_query(setup, _query(semijoin), tag=tag)
    return result, setup


class TestBloomBuildPushdown:
    def test_pushdown_cuts_shuffled_bytes_same_answer(self):
        plain, _ = _run(semijoin=False, tag="plain")
        pushed, setup = _run(semijoin=True, tag="pushed")
        # The filter dropped probe rows before they hit the wire...
        assert pushed.metrics["bloom_filtered_rows"] > 0
        assert pushed.metrics["exchange_rows"] < plain.metrics["exchange_rows"]
        assert pushed.metrics["exchange_bytes"] < plain.metrics["exchange_bytes"]
        # ...without changing the answer (no false negatives).
        assert pushed.rows == plain.rows
        assert len(pushed.rows) > 0
        # Shipping the filter itself was accounted on its own exchange.
        assert setup.runtime.stats["semi.pushed.bloom"].bytes > 0

    def test_pushdown_is_deterministic(self):
        first, _ = _run(semijoin=True, tag="repeat")
        second, _ = _run(semijoin=True, tag="repeat")
        assert first.rows == second.rows
        assert first.metrics == second.metrics
        assert first.elapsed_us == second.elapsed_us
