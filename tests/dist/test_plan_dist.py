"""One logical plan, three physical plans: multi-join, repartitioning
joins, two-phase aggregation, and skewed exchanges under minimal credits."""

from dataclasses import replace

from repro.dist import (
    TPCH_PARTITIONING,
    DistSpec,
    PartitionSpec,
    Strategy,
    build_strategy,
    execute_plan,
    place_exchanges,
)
from repro.plan import Aggregate, Exchange, Join, walk
from repro.workloads import (
    TpchScale,
    tpch_order_lines_plan,
    tpch_returnflag_agg_plan,
    tpch_star_join_plan,
)

SMALL = TpchScale(orders=300, lines_per_order=2, customers=80, parts=60, suppliers=15)

SPEC = DistSpec(name="plandist", db_servers=2, bp_pages=400, tempdb_pages=256,
                data_spindles=2, db_cores=4)


def run_all_strategies(plan, name, spec=SPEC, scale=SMALL, seed=3):
    results = {}
    for strategy in (Strategy.PAGE, Strategy.QUERY, Strategy.HYBRID):
        setup = build_strategy(strategy, spec, total_ext_pages=512,
                               scale=scale, seed=seed)
        results[strategy.value] = execute_plan(setup, plan, name=name)
    return results


class TestStarJoin:
    def test_three_table_star_join_identical_across_strategies(self):
        results = run_all_strategies(tpch_star_join_plan(top_n=200), "star")
        rows = {k: r.rows for k, r in results.items()}
        assert rows["page"] == rows["query"] == rows["hybrid"]
        assert len(rows["page"]) == 200
        assert results["query"].metrics["exchange_rows"] > 0

    def test_placement_shuffles_intermediate_to_supplier(self):
        placed = place_exchanges(tpch_star_join_plan(), TPCH_PARTITIONING)
        joins = [n for n in walk(placed) if isinstance(n, Join)]
        assert len(joins) == 2
        outer, inner = joins  # pre-order: suppkey join first, then partkey
        # part |><| lineitem is co-partitioned on partkey: build side stays
        # put, the lineitem shuffle self-ships.
        assert isinstance(inner.right, Exchange) and inner.right.kind == "shuffle"
        assert inner.right.spec is TPCH_PARTITIONING["part"]
        # The intermediate is partitioned on partkey, not suppkey, so it
        # shuffles to the supplier owners for the second join.
        assert isinstance(outer.left, Exchange) and outer.left.kind == "shuffle"
        assert outer.left.spec is TPCH_PARTITIONING["supplier"]
        assert not isinstance(outer.right, Exchange)


class TestRepartitioningJoin:
    def test_neither_side_co_located_shuffles_both(self):
        placed = place_exchanges(tpch_order_lines_plan(), TPCH_PARTITIONING)
        outer = next(n for n in walk(placed) if isinstance(n, Join))
        assert isinstance(outer.left, Exchange) and outer.left.kind == "shuffle"
        assert isinstance(outer.right, Exchange) and outer.right.kind == "shuffle"
        # Both route through the same ad-hoc hash spec.
        assert outer.left.spec is outer.right.spec
        assert outer.left.spec.table == "*"

    def test_repartitioning_join_identical_across_strategies(self):
        results = run_all_strategies(tpch_order_lines_plan(top_n=200), "repart")
        rows = {k: r.rows for k, r in results.items()}
        assert rows["page"] == rows["query"] == rows["hybrid"]
        assert len(rows["page"]) == 200
        # Two shuffles feed the repartitioned join (plus the co-located
        # first join's probe shuffle): more exchanged rows than a single
        # shuffle would move.
        assert results["query"].metrics["exchange_rows"] > 0


class TestTwoPhaseAggregation:
    def test_aggregate_splits_into_partial_and_final(self):
        placed = place_exchanges(tpch_returnflag_agg_plan(), TPCH_PARTITIONING)
        phases = [n.phase for n in walk(placed) if isinstance(n, Aggregate)]
        assert sorted(phases) == ["final", "partial"]
        final = next(n for n in walk(placed) if isinstance(n, Aggregate))
        assert isinstance(final.child, Exchange) and final.child.kind == "gather"

    def test_groups_identical_across_strategies(self):
        results = run_all_strategies(tpch_returnflag_agg_plan(), "agg")
        rows = {k: r.rows for k, r in results.items()}
        assert rows["page"] == rows["query"] == rows["hybrid"]
        assert len(rows["page"]) == 3  # returnflag in {0, 1, 2}
        # Only the tiny partial rows cross the fabric, not the lineitems.
        query = results["query"].metrics
        assert 0 < query["exchange_rows"] <= 3 * SPEC.db_servers


class TestSkewUnderMinimalCredits:
    def test_heavy_hitter_repartition_completes_with_one_credit(self):
        # Two distinct custkey values across 400 orders: every exchanged
        # tuple of the repartitioning join hashes to one of two owners,
        # overflowing a single fragment's staging slot repeatedly.  One
        # credit per channel forces maximal back-pressure; the drain
        # protocol must still finish, with rows identical to page
        # shipping.
        skew = TpchScale(orders=400, lines_per_order=2, customers=2,
                         parts=40, suppliers=10)
        partitioning = dict(TPCH_PARTITIONING)
        partitioning["customer"] = PartitionSpec("customer", "nationkey")
        spec = replace(SPEC, name="skew", db_servers=3, credits=1)
        plan = tpch_order_lines_plan(top_n=300, acctbal_below=1e9)

        placed = place_exchanges(plan, partitioning)
        joins = [n for n in walk(placed) if isinstance(n, Join)]
        # customer is no longer partitioned on custkey, so *both* joins
        # repartition: four shuffles total.
        shuffles = [n for n in walk(placed)
                    if isinstance(n, Exchange) and n.kind == "shuffle"]
        assert len(joins) == 2 and len(shuffles) == 4

        query = build_strategy(Strategy.QUERY, spec, total_ext_pages=0,
                               scale=skew, partitioning=partitioning, seed=7)
        stalled = execute_plan(query, plan, name="skew")
        page = build_strategy(Strategy.PAGE, spec, total_ext_pages=512,
                              scale=skew, seed=7)
        baseline = execute_plan(page, plan, name="skew")
        assert stalled.rows == baseline.rows
        assert len(stalled.rows) == 300
        assert stalled.metrics["credit_stalls_us"] > 0
