"""Exchange fabric: flow control, merges, edge cases, fault injection."""

import pytest

from repro.dist import (
    BroadcastExchange,
    DistQuery,
    DistSpec,
    build_dist,
    execute_query,
    load_tpch_partitioned,
    prewarm_dist,
)
from repro.engine import TableScan
from repro.faults import FaultEngine, FaultPlan
from repro.net import RdmaError
from repro.sim.kernel import AllOf, SimulationError
from repro.storage import MB
from repro.workloads import TpchScale, generate_tpch_rows

SMALL = TpchScale(orders=400, lines_per_order=2, customers=100, parts=80, suppliers=20)

CUST_ORDERS = DistQuery(
    name="cust_orders",
    build_table="customer", build_key="custkey",
    probe_table="orders", probe_key="custkey",
    build_filter=("acctbal", "<", 60.0),
    probe_filter=("orderdate", "<", 1500),
    projection=(("build", "custkey"), ("build", "acctbal"),
                ("probe", "orderkey"), ("probe", "totalprice")),
    top_n=300,
)


def partitioned_setup(n=2, seed=5, **overrides):
    kwargs = dict(bp_pages=400, tempdb_pages=256, data_spindles=2, db_cores=4)
    kwargs.update(overrides)
    setup = build_dist(DistSpec(name="xtest", db_servers=n, **kwargs))
    load_tpch_partitioned(setup, scale=SMALL, seed=seed)
    prewarm_dist(setup)
    return setup


def run_fragments(setup, plans, memory_bytes=2 * MB):
    sim = setup.sim
    results = [None] * len(plans)

    def fragment(index, plan):
        results[index] = yield from setup.databases[index].execute(
            plan, requested_memory_bytes=memory_bytes,
            fragment_index=index, fragments=len(plans),
        )

    processes = [sim.spawn(fragment(i, p)) for i, p in enumerate(plans)]

    def waiter():
        yield AllOf(sim, processes)

    setup.run(waiter())
    return results


class TestEdgeCases:
    def test_zero_row_partitions(self):
        """A probe filter that drops everything still terminates cleanly."""
        setup = partitioned_setup()
        empty = DistQuery(
            name="empty", build_table="customer", build_key="custkey",
            probe_table="orders", probe_key="custkey",
            probe_filter=("orderdate", "<", -1),
            projection=(("probe", "orderkey"),), top_n=10,
        )
        result = execute_query(setup, empty)
        assert result.rows == []
        # Only EOS control batches crossed the wire.
        shuffle = setup.runtime.stats["empty.run.shuffle"]
        assert shuffle.rows == 0
        assert shuffle.batches == 4  # 2 fragments x 2 destinations, EOS each

    def test_single_server_degenerate_topology(self):
        """fragments=1: everything self-ships, zero wire traffic."""
        setup = partitioned_setup(n=1)
        result = execute_query(setup, CUST_ORDERS)
        assert len(result.rows) > 0
        assert result.metrics["exchange_bytes"] == 0
        assert setup.runtime.channels == {}
        # Same answer as a 2-server run of the same data.
        two = execute_query(partitioned_setup(n=2), CUST_ORDERS)
        assert result.rows == two.rows

    def test_seeded_merge_determinism(self):
        """Two identical runs produce bit-identical rows and metrics."""
        first = execute_query(partitioned_setup(), CUST_ORDERS)
        second = execute_query(partitioned_setup(), CUST_ORDERS)
        assert first.rows == second.rows
        assert first.metrics == second.metrics
        assert first.elapsed_us == second.elapsed_us

    def test_merge_invariant_to_credit_budget(self):
        """Credits change timing, never the merged row order."""
        plenty = execute_query(partitioned_setup(credits=8), CUST_ORDERS)
        starved = execute_query(partitioned_setup(credits=1), CUST_ORDERS)
        assert plenty.rows == starved.rows
        assert starved.elapsed_us >= plenty.elapsed_us

    def test_broadcast_replicates_to_every_fragment(self):
        setup = partitioned_setup()
        runtime = setup.runtime
        plans = [
            BroadcastExchange(
                TableScan(tables["supplier"]), runtime, "bcast.suppliers"
            )
            for tables in setup.tables
        ]
        results = run_fragments(setup, plans)
        full = sorted(generate_tpch_rows(SMALL, seed=5)["supplier"])
        for result in results:
            assert sorted(result.rows) == full


class TestCreditStarvation:
    def test_degraded_link_stalls_credits_but_not_correctness(self):
        """Reuses the faults link-degradation injector on a receiver."""
        baseline = execute_query(partitioned_setup(credits=1), CUST_ORDERS)

        setup = partitioned_setup(credits=1)
        engine = FaultEngine(
            sim=setup.sim, servers=dict(setup.cluster.servers),
            rng=setup.cluster.rng.stream("faults"),
        )
        plan = FaultPlan().degrade_link(
            at_us=setup.sim.now, server="db1", duration_us=60e6,
            latency_multiplier=50.0,
        )
        engine.run_plan(plan)
        degraded = execute_query(setup, CUST_ORDERS)
        assert degraded.rows == baseline.rows
        assert (
            degraded.metrics["credit_stalls_us"]
            > baseline.metrics["credit_stalls_us"]
        )
        assert degraded.elapsed_us > baseline.elapsed_us

    def test_degraded_run_is_deterministic(self):
        def once():
            setup = partitioned_setup(credits=1)
            engine = FaultEngine(
                sim=setup.sim, servers=dict(setup.cluster.servers),
                rng=setup.cluster.rng.stream("faults"),
            )
            engine.run_plan(FaultPlan().degrade_link(
                at_us=setup.sim.now, server="db1", duration_us=60e6,
                latency_multiplier=50.0, drop_probability=0.05,
            ))
            result = execute_query(setup, CUST_ORDERS)
            return result.rows, result.elapsed_us, result.metrics

        assert once() == once()


class TestStagingRevocation:
    def test_force_deregister_racing_shuffle_fails_deterministically(self):
        """A lease-style revocation of a staging buffer mid-query must
        surface as a deterministic RDMA failure, never silent data."""
        def once():
            setup = partitioned_setup()
            runtime = setup.runtime
            channel = runtime.channels[(0, 1)]

            def revoke():
                yield setup.sim.timeout(400.0)  # mid-shuffle
                yield from runtime.registrars[1].deregister(
                    channel.region, force=True
                )

            setup.sim.spawn(revoke())
            with pytest.raises((RdmaError, SimulationError)) as exc_info:
                execute_query(setup, CUST_ORDERS)
            exc = exc_info.value
            cause = exc.__cause__ if isinstance(exc, SimulationError) else exc
            assert isinstance(cause, RdmaError)
            assert channel.region.doomed or not channel.region.registered
            return type(exc).__name__, str(exc)

        assert once() == once()
