"""Three-strategy planner: identical answers, placement-shaped metrics."""

import pytest

from repro.dist import (
    TPCH_PARTITIONING,
    DistQuery,
    DistSpec,
    PartitionSpec,
    Strategy,
    build_dist,
    build_strategy,
    compile_fragments,
    execute_query,
    load_tpch_single,
    place_exchanges,
)
from repro.plan import Exchange, Join, walk
from repro.workloads import TpchScale

SMALL = TpchScale(orders=300, lines_per_order=2, customers=80, parts=60, suppliers=15)

CUST_ORDERS = DistQuery(
    name="cust_orders",
    build_table="customer", build_key="custkey",
    probe_table="orders", probe_key="custkey",
    build_filter=("acctbal", "<", 50.0),
    projection=(("build", "custkey"), ("build", "acctbal"),
                ("probe", "orderkey"), ("probe", "totalprice")),
    top_n=250,
)

SPEC = DistSpec(name="ptest", db_servers=2, bp_pages=400, tempdb_pages=256,
                data_spindles=2, db_cores=4)


def _run(strategy):
    setup = build_strategy(strategy, SPEC, total_ext_pages=512, scale=SMALL, seed=3)
    return execute_query(setup, CUST_ORDERS)


class TestStrategies:
    def test_all_three_strategies_row_identical(self):
        page = _run(Strategy.PAGE)
        query = _run(Strategy.QUERY)
        hybrid = _run(Strategy.HYBRID)
        assert page.rows == query.rows == hybrid.rows
        assert len(page.rows) > 0
        assert {page.strategy, query.strategy, hybrid.strategy} == {
            "page", "query", "hybrid",
        }

    def test_placement_shapes_the_metrics(self):
        page = _run(Strategy.PAGE)
        query = _run(Strategy.QUERY)
        # Page shipping never touches the exchange fabric; query shipping
        # moves tuples and stays out of remote memory entirely.
        assert page.metrics["exchange_bytes"] == 0
        assert query.metrics["exchange_bytes"] > 0
        assert query.metrics["exchange_rows"] > 0

    def test_hybrid_faults_pages_and_ships_tuples(self):
        setup = build_strategy(
            Strategy.HYBRID, SPEC, total_ext_pages=512, scale=SMALL, seed=3
        )
        result = execute_query(setup, CUST_ORDERS)
        assert result.metrics["exchange_bytes"] > 0
        assert all(db.pool.extension is not None for db in setup.databases)

    def test_strategy_accepts_plain_strings(self):
        setup = build_strategy("query", SPEC, total_ext_pages=0, scale=SMALL, seed=3)
        assert execute_query(setup, CUST_ORDERS).strategy == "query"


class TestCompileErrors:
    def test_unpartitioned_setup_rejected(self):
        setup = build_dist(SPEC)
        load_tpch_single(setup, scale=SMALL, seed=3)
        with pytest.raises(ValueError, match="unpartitioned"):
            compile_fragments(CUST_ORDERS, setup)

    def test_mispartitioned_build_shuffles_left(self):
        # orders is hash-partitioned on orderkey, so a join that builds on
        # orders.custkey is not co-located.  The legacy planner rejected
        # this; the IR planner notices the *probe* side (customer) is
        # partitioned on the join key and shuffles the build side instead.
        mis = DistQuery(
            name="mis", build_table="orders", build_key="custkey",
            probe_table="customer", probe_key="custkey",
            projection=(("build", "orderkey"), ("probe", "custkey")),
            top_n=200,
        )
        placed = place_exchanges(mis.to_plan(), TPCH_PARTITIONING)
        join = next(n for n in walk(placed) if isinstance(n, Join))
        assert isinstance(join.left, Exchange) and join.left.kind == "shuffle"
        assert not isinstance(join.right, Exchange)

        setup = build_strategy("query", SPEC, total_ext_pages=0, scale=SMALL, seed=3)
        result = execute_query(setup, mis)
        page = build_strategy("page", SPEC, total_ext_pages=512, scale=SMALL, seed=3)
        assert result.rows == execute_query(page, mis).rows
        assert len(result.rows) > 0
        assert result.metrics["exchange_rows"] > 0

    def test_custom_partitioning_satisfies_colocation(self):
        custom = {
            "customer": PartitionSpec("customer", "custkey"),
            "orders": PartitionSpec("orders", "custkey"),
            "lineitem": PartitionSpec("lineitem", "orderkey"),
            "part": PartitionSpec("part", "partkey"),
            "supplier": PartitionSpec("supplier", "suppkey"),
        }
        setup = build_strategy(
            "query", SPEC, total_ext_pages=0, scale=SMALL,
            partitioning=custom, seed=3,
        )
        orders_on_custkey = DistQuery(
            name="oc", build_table="orders", build_key="custkey",
            probe_table="customer", probe_key="custkey",
            projection=(("build", "orderkey"), ("probe", "custkey")),
            top_n=100,
        )
        result = execute_query(setup, orders_on_custkey)
        assert len(result.rows) > 0
