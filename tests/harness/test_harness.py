"""Tests for the harness: report formatting, I/O-bench builders."""

import pytest

from repro.harness import (
    IO_DESIGNS,
    build_custom_multi,
    build_io_target,
    format_series,
    format_table,
)
from repro.harness.iobench import build_multi_db
from repro.storage import GB, KB
from repro.workloads import RANDOM_8K, run_sqlio


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [[1, 2.5], [300, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equally wide

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_number_formatting(self):
        text = format_table(["v"], [[12345.6], [0.1234], [42]])
        assert "12,346" in text
        assert "0.123" in text
        assert "42" in text

    def test_format_series_downsamples(self):
        points = [(float(i), float(i * 2)) for i in range(100)]
        text = format_series("s", points, max_points=10)
        assert len(text.splitlines()) == 11  # header + 10 points


class TestIoBuilders:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            build_io_target("Floppy")

    @pytest.mark.parametrize("design", IO_DESIGNS)
    def test_every_design_serves_reads(self, design):
        target = build_io_target(design, span_bytes=8 * GB)
        sim = target.cluster.sim

        def one_read():
            yield from target.read(0, 8 * KB)

        sim.run_until_complete(sim.spawn(one_read()))
        assert sim.now > 0

    def test_custom_multi_uses_all_providers(self):
        target = build_custom_multi(3, span_bytes=8 * GB)
        assert len(target.memory_servers) == 3
        assert len(target._reader.file.providers) == 3

    def test_multi_db_targets_share_one_provider(self):
        targets = build_multi_db(3, per_db_span=1 * GB)
        providers = {t._reader.file.providers[0] for t in targets}
        assert providers == {"mem0"}
        # All three can run concurrently on the shared simulator.
        assert len({t.cluster.sim for t in targets}) == 1

    def test_write_path_works(self):
        target = build_io_target("Custom", span_bytes=8 * GB)
        result = run_sqlio(
            target.cluster.sim, target,
            RANDOM_8K.__class__(name="w", threads=2, io_bytes=8 * KB,
                                random=True, ops_per_thread=10),
            span_bytes=target.span_bytes, write=True,
        )
        assert result.total_bytes == 2 * 10 * 8 * KB
