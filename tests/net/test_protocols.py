"""Tests for the TCP, SMB and SMB Direct protocol models."""

import pytest

from repro.cluster import Cluster
from repro.net import Network, SmbClient, SmbDirectClient, SmbFileServer, TcpChannel
from repro.storage import KB, MB, RamDrive


def make_pair():
    cluster = Cluster()
    network = Network(cluster.sim)
    client = cluster.add_server("client")
    server = cluster.add_server("server")
    network.attach(client)
    network.attach(server)
    return cluster, client, server


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestTcp:
    def test_send_charges_both_cpus(self):
        cluster, client, server = make_pair()
        channel = TcpChannel(client, server)
        complete(cluster.sim, channel.send(512 * KB))
        # Both sides burned CPU (kernel + copies) — unlike RDMA.
        assert client.cpu.cores.utilization() > 0
        assert server.cpu.cores.utilization() > 0

    def test_latency_grows_with_size(self):
        cluster, client, server = make_pair()
        channel = TcpChannel(client, server)
        start = cluster.sim.now
        complete(cluster.sim, channel.send(8 * KB))
        small = cluster.sim.now - start
        start = cluster.sim.now
        complete(cluster.sim, channel.send(512 * KB))
        large = cluster.sim.now - start
        assert large > 3 * small

    def test_byte_accounting(self):
        cluster, client, server = make_pair()
        channel = TcpChannel(client, server)
        complete(cluster.sim, channel.send(1000))
        assert client.tcp.bytes_sent == 1000
        assert server.tcp.bytes_received == 1000


class TestSmb:
    def make_smb(self, direct=False):
        cluster, client, server = make_pair()
        drive = server.attach_device("ramdrive", RamDrive(cluster.sim))
        file_server = SmbFileServer(server, drive)
        cls = SmbDirectClient if direct else SmbClient
        return cluster, client, server, cls(client, file_server), file_server

    def test_smb_read_serves_request(self):
        cluster, _client, _server, smb, file_server = self.make_smb()
        complete(cluster.sim, smb.read(0, 8 * KB))
        assert file_server.requests_served == 1

    def test_smb_direct_faster_than_smb(self):
        cluster, *_rest, smb, _fs = self.make_smb(direct=False)
        start = cluster.sim.now
        complete(cluster.sim, smb.read(0, 8 * KB))
        tcp_latency = cluster.sim.now - start
        cluster2, *_rest2, smbd, _fs2 = self.make_smb(direct=True)
        start = cluster2.sim.now
        complete(cluster2.sim, smbd.read(0, 8 * KB))
        direct_latency = cluster2.sim.now - start
        assert direct_latency < tcp_latency

    def test_smb_direct_spares_server_cpu(self):
        cluster, _client, server, smbd, _fs = self.make_smb(direct=True)
        for _ in range(20):
            complete(cluster.sim, smbd.read(0, 8 * KB))
        direct_busy = server.cpu.cores.utilization()
        cluster2, _client2, server2, smb, _fs2 = self.make_smb(direct=False)
        for _ in range(20):
            complete(cluster2.sim, smb.read(0, 8 * KB))
        tcp_busy = server2.cpu.cores.utilization()
        assert tcp_busy > 2 * direct_busy

    def test_write_path(self):
        cluster, _client, _server, smb, file_server = self.make_smb()
        complete(cluster.sim, smb.write(4096, 8 * KB))
        assert file_server.device.bytes_written == 8 * KB

    def test_worker_pool_limits_concurrency(self):
        cluster, _client, _server, smb, file_server = self.make_smb()
        sim = cluster.sim
        finish = []

        def reader(tag):
            yield from smb.read(tag * 8 * KB, 8 * KB)
            finish.append(sim.now)

        for tag in range(12):
            sim.spawn(reader(tag))
        sim.run()
        # 12 requests through 4 workers: completion times stagger.
        assert finish[-1] > finish[0] * 1.5


class TestNicPort:
    def test_transfer_accounts_bytes(self):
        cluster, a, b = make_pair()
        complete(cluster.sim, a.nic.transfer(b.nic, 1 * MB))
        assert a.nic.bytes_sent == 1 * MB
        assert b.nic.bytes_received == 1 * MB

    def test_transfer_time_scales_with_size(self):
        cluster, a, b = make_pair()
        small = complete(cluster.sim, a.nic.transfer(b.nic, 8 * KB))
        large = complete(cluster.sim, a.nic.transfer(b.nic, 8 * MB))
        assert large > 100 * small

    def test_tx_pipe_serializes(self):
        cluster, a, b = make_pair()
        sim = cluster.sim
        done = []

        def sender(tag):
            yield from a.nic.transfer(b.nic, 1 * MB)
            done.append((tag, sim.now))

        sim.spawn(sender(0))
        sim.spawn(sender(1))
        sim.run()
        assert done[1][1] > done[0][1] * 1.3

    def test_double_attach_rejected(self):
        cluster = Cluster()
        network = Network(cluster.sim)
        server = cluster.add_server("s")
        network.attach(server)
        with pytest.raises(ValueError):
            network.attach(server)
