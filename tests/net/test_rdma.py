"""Unit tests for RDMA verbs, registration and the fabric."""

import pytest

from repro.cluster import Cluster
from repro.net import (
    MR_MAX_SIZE,
    MemoryRegion,
    Network,
    QueuePair,
    RdmaError,
    RdmaRegistrar,
)
from repro.storage import KB, MB


def make_pair():
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    mem = cluster.add_server("mem")
    network.attach(db)
    network.attach(mem)
    return cluster, db, mem


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestRegistration:
    def test_register_costs_50us_for_one_page(self):
        cluster, _db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        assert registrar.registration_cost_us(8 * KB) == pytest.approx(50.0)

    def test_register_pins_memory(self):
        cluster, _db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        before = mem.memory_available
        region = complete(cluster.sim, registrar.register(64 * MB))
        assert region.registered
        assert mem.memory_available == before - 64 * MB

    def test_deregister_releases_memory(self):
        cluster, _db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        before = mem.memory_available
        region = complete(cluster.sim, registrar.register(64 * MB))
        complete(cluster.sim, registrar.deregister(region))
        assert not region.registered
        assert mem.memory_available == before

    def test_mr_size_limit(self):
        cluster, _db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        with pytest.raises(RdmaError):
            complete(cluster.sim, registrar.register(MR_MAX_SIZE + 1))

    def test_registration_takes_time(self):
        cluster, _db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        complete(cluster.sim, registrar.register(8 * KB))
        assert cluster.sim.now == pytest.approx(50.0)


class TestMemoryRegion:
    def test_byte_roundtrip(self):
        cluster, _db, mem = make_pair()
        region = MemoryRegion(mem, 1 * MB)
        region.write_bytes(100, b"hello remote memory")
        assert region.read_bytes(100, 19) == b"hello remote memory"

    def test_out_of_range_rejected(self):
        cluster, _db, mem = make_pair()
        region = MemoryRegion(mem, 1024)
        with pytest.raises(RdmaError):
            region.read_bytes(1020, 8)
        with pytest.raises(RdmaError):
            region.write_bytes(-1, b"x")

    def test_object_overlay(self):
        cluster, _db, mem = make_pair()
        region = MemoryRegion(mem, 1 * MB)
        payload = {"page": 42}
        region.put_object(8192, 8192, payload)
        assert region.get_object(8192) is payload
        region.drop_object(8192)
        with pytest.raises(RdmaError):
            region.get_object(8192)


class TestQueuePair:
    def test_read_roundtrip(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        region.write_bytes(0, b"A" * 8192)
        qp = QueuePair(db, mem)
        data = complete(cluster.sim, qp.read(region, 0, 8192))
        assert data == b"A" * 8192
        assert qp.reads == 1

    def test_write_then_read(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        complete(cluster.sim, qp.write(region, 4096, payload=b"B" * 1000))
        assert region.read_bytes(4096, 1000) == b"B" * 1000

    def test_unloaded_8k_read_is_about_10us(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        start = cluster.sim.now
        complete(cluster.sim, qp.read(region, 0, 8192))
        latency = cluster.sim.now - start
        # Paper: remote memory access via RDMA ~10 usec.
        assert 5 < latency < 15

    def test_read_does_not_use_remote_cpu(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        busy_before = mem.cpu.cores.utilization()
        complete(cluster.sim, qp.read(region, 0, 8192))
        # Registration used CPU, but the read itself must not.
        assert mem.cpu.cores.in_use == 0
        assert mem.cpu.cores.utilization() <= busy_before + 1e-9

    def test_disconnected_qp_rejects_ops(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        qp.disconnect()
        with pytest.raises(RdmaError):
            complete(cluster.sim, qp.read(region, 0, 8192))

    def test_unregistered_region_rejected(self):
        cluster, db, mem = make_pair()
        region = MemoryRegion(mem, 1 * MB)  # never registered
        qp = QueuePair(db, mem)
        with pytest.raises(RdmaError):
            complete(cluster.sim, qp.read(region, 0, 8192))

    def test_region_must_belong_to_target(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(db)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        with pytest.raises(RdmaError):
            complete(cluster.sim, qp.read(region, 0, 8192))

    def test_opaque_object_transfer(self):
        cluster, db, mem = make_pair()
        registrar = RdmaRegistrar(mem)
        region = complete(cluster.sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        page = ["row1", "row2"]
        complete(cluster.sim, qp.write(region, 0, size=8192, obj=page))
        got = complete(cluster.sim, qp.read(region, 0, 8192, opaque=True))
        assert got is page


class TestInFlightRaces:
    """disconnect()/deregister() racing one-sided verbs mid-transfer."""

    def _start_read(self, cluster, qp, region, size=1 * MB):
        sim = cluster.sim
        outcome = {}

        def reader():
            try:
                outcome["value"] = yield from qp.read(region, 0, size)
            except RdmaError as exc:
                outcome["error"] = exc

        return sim.spawn(reader()), outcome

    def test_disconnect_mid_flight_fails_read_on_resume(self):
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(4 * MB))
        region.write_bytes(0, b"x" * 1024)
        qp = QueuePair(db, mem)
        process, outcome = self._start_read(cluster, qp, region)

        def breaker():
            yield sim.timeout(5.0)  # mid-transfer (a 1 MB read takes ~260 us)
            assert region.inflight == 1
            qp.disconnect()

        sim.spawn(breaker())
        sim.run()
        assert "value" not in outcome
        assert "disconnected while transfer in flight" in str(outcome["error"])
        assert region.inflight == 0

    def test_disconnect_mid_flight_fails_write_on_resume(self):
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(4 * MB))
        qp = QueuePair(db, mem)
        outcome = {}

        def writer():
            try:
                yield from qp.write(region, 0, payload=b"y" * (1 * MB))
            except RdmaError as exc:
                outcome["error"] = exc

        sim.spawn(writer())

        def breaker():
            yield sim.timeout(5.0)
            qp.disconnect()

        sim.spawn(breaker())
        sim.run()
        assert "error" in outcome
        # The payload never landed: the write failed before touching data.
        assert bytes(region.data[:4]) == b"\x00\x00\x00\x00"

    def test_reconnect_epoch_still_fails_original_op(self):
        """Even if a new connection comes up, the old op must fail."""
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(4 * MB))
        qp = QueuePair(db, mem)
        process, outcome = self._start_read(cluster, qp, region)

        def bounce():
            yield sim.timeout(5.0)
            qp.disconnect()
            qp.connected = True  # "reconnect" — epoch already advanced

        sim.spawn(bounce())
        sim.run()
        assert "error" in outcome

    def test_deregister_with_inflight_reads_asserts(self):
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(4 * MB))
        qp = QueuePair(db, mem)
        self._start_read(cluster, qp, region)
        failures = {}

        def revoker():
            yield sim.timeout(5.0)
            try:
                yield from registrar.deregister(region)
            except RdmaError as exc:
                failures["error"] = exc

        sim.spawn(revoker())
        sim.run()
        assert "in flight" in str(failures["error"])
        assert region.registered  # assert semantics: nothing was freed

    def test_deregister_force_dooms_inflight_read(self):
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        before = mem.memory_available
        region = complete(sim, registrar.register(4 * MB))
        qp = QueuePair(db, mem)
        process, outcome = self._start_read(cluster, qp, region)

        def revoker():
            yield sim.timeout(5.0)
            yield from registrar.deregister(region, force=True)

        sim.spawn(revoker())
        sim.run()
        assert "deregistered while transfer in flight" in str(outcome["error"])
        assert region.doomed and not region.registered
        assert mem.memory_available == before  # memory really freed

    def test_deregister_force_is_noop_without_inflight(self):
        cluster, _db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(1 * MB))
        complete(sim, registrar.deregister(region, force=True))
        assert not region.doomed  # force only dooms when ops are in flight

    def test_clean_ops_unaffected_by_recheck(self):
        cluster, db, mem = make_pair()
        sim = cluster.sim
        registrar = RdmaRegistrar(mem)
        region = complete(sim, registrar.register(1 * MB))
        qp = QueuePair(db, mem)
        complete(sim, qp.write(region, 0, payload=b"ok"))
        assert complete(sim, qp.read(region, 0, 2)) == b"ok"
        assert region.inflight == 0
