"""Logical plan IR: bottom-up schemas, validation, explain rendering."""

import pytest

from repro.plan import (
    Agg,
    Aggregate,
    Exchange,
    Filter,
    Join,
    PlanError,
    Project,
    Scan,
    TopN,
    count_nodes,
    explain,
    output_schema,
    walk,
)
from repro.workloads import TPCH_SCHEMAS


def cust_orders_join():
    return Join(
        Scan("customer"), Scan("orders"),
        "customer.custkey", "orders.custkey",
    )


class TestSchemaDerivation:
    def test_scan_qualifies_every_column(self):
        schema = output_schema(Scan("customer"), TPCH_SCHEMAS)
        names = [f.name for f in schema]
        assert names[0] == "customer.custkey"
        assert all(name.startswith("customer.") for name in names)
        assert len(schema) == len(TPCH_SCHEMAS["customer"].columns)

    def test_join_concatenates_left_then_right(self):
        schema = output_schema(cust_orders_join(), TPCH_SCHEMAS)
        names = [f.name for f in schema]
        n_cust = len(TPCH_SCHEMAS["customer"].columns)
        assert names[:n_cust] == [
            f"customer.{c.name}" for c in TPCH_SCHEMAS["customer"].columns
        ]
        assert names[n_cust] == "orders.orderkey"
        # Same-named columns stay distinct through qualification.
        assert schema.index_of("customer.custkey") != schema.index_of("orders.custkey")

    def test_bare_reference_resolves_left_first(self):
        schema = output_schema(cust_orders_join(), TPCH_SCHEMAS)
        assert schema.index_of("custkey") == schema.index_of("customer.custkey")

    def test_project_narrows_schema_and_row_bytes(self):
        plan = Project(Scan("customer"), ("custkey", "acctbal"))
        schema = output_schema(plan, TPCH_SCHEMAS)
        assert [f.name for f in schema] == ["customer.custkey", "customer.acctbal"]
        assert schema.row_bytes == 8 + 8 + 8  # two int/float cols + header
        wide = output_schema(Scan("customer"), TPCH_SCHEMAS)
        assert schema.row_bytes < wide.row_bytes

    def test_aggregate_schema_group_cols_then_aggs(self):
        plan = Aggregate(
            Scan("lineitem"), group_by=("returnflag",),
            aggs=(Agg("count"), Agg("sum", "quantity"), Agg("avg", "quantity")),
        )
        schema = output_schema(plan, TPCH_SCHEMAS)
        assert [f.name for f in schema] == [
            "lineitem.returnflag", "count", "sum_quantity", "avg_quantity",
        ]
        assert schema.field_of("avg_quantity").kind == "float"

    def test_partial_aggregate_splits_avg_into_sum_and_count(self):
        plan = Aggregate(
            Scan("lineitem"), group_by=("returnflag",),
            aggs=(Agg("avg", "quantity"), Agg("count")),
            phase="partial",
        )
        schema = output_schema(plan, TPCH_SCHEMAS)
        assert [f.name for f in schema] == [
            "lineitem.returnflag", "avg_quantity.sum", "avg_quantity.count",
            "count.partial",
        ]

    def test_final_aggregate_over_partial_restores_output_schema(self):
        base = Aggregate(
            Scan("lineitem"), group_by=("returnflag",),
            aggs=(Agg("count"), Agg("avg", "quantity")),
        )
        partial = Aggregate(base.child, base.group_by, base.aggs, phase="partial")
        final = Aggregate(partial, base.group_by, base.aggs, phase="final")
        single = output_schema(base, TPCH_SCHEMAS)
        assert [f.name for f in output_schema(final, TPCH_SCHEMAS)] == [
            f.name for f in single
        ]

    def test_topn_and_exchange_pass_schema_through(self):
        join = cust_orders_join()
        for wrapper in (TopN(join, 10), Exchange(join, "gather")):
            assert [f.name for f in output_schema(wrapper, TPCH_SCHEMAS)] == [
                f.name for f in output_schema(join, TPCH_SCHEMAS)
            ]


class TestValidation:
    def test_unknown_table_rejected(self):
        with pytest.raises(PlanError, match="unknown table"):
            output_schema(Scan("nation"), TPCH_SCHEMAS)

    def test_unknown_column_rejected(self):
        with pytest.raises(PlanError, match="no column"):
            output_schema(Project(Scan("customer"), ("balance",)), TPCH_SCHEMAS)

    def test_scan_condition_column_validated(self):
        plan = Scan("customer", conditions=(("acctbal2", "<", 1.0),))
        with pytest.raises(PlanError, match="no column"):
            output_schema(plan, TPCH_SCHEMAS)

    def test_join_keys_validated(self):
        plan = Join(Scan("customer"), Scan("orders"), "customer.custkey", "orders.xkey")
        with pytest.raises(PlanError, match="no column"):
            output_schema(plan, TPCH_SCHEMAS)

    def test_unknown_agg_fn_rejected(self):
        with pytest.raises(PlanError, match="unknown aggregate fn"):
            Agg("median", "quantity")

    def test_agg_needs_column(self):
        with pytest.raises(PlanError, match="needs a column"):
            Agg("sum")

    def test_aggregate_needs_group_by(self):
        with pytest.raises(PlanError, match="group-by"):
            Aggregate(Scan("lineitem"), group_by=())

    def test_shuffle_exchange_needs_key(self):
        with pytest.raises(PlanError, match="routing key"):
            Exchange(Scan("orders"), "shuffle")

    def test_unknown_exchange_kind_rejected(self):
        with pytest.raises(PlanError, match="exchange kind"):
            Exchange(Scan("orders"), "broadcast")


class TestTreeUtilities:
    def test_walk_is_preorder(self):
        plan = TopN(Project(cust_orders_join(), ("custkey",)), 5)
        kinds = [type(n).__name__ for n in walk(plan)]
        assert kinds == ["TopN", "Project", "Join", "Scan", "Scan"]

    def test_count_nodes(self):
        plan = TopN(Project(cust_orders_join(), ("custkey",)), 5)
        assert count_nodes(plan, Scan) == 2
        assert count_nodes(plan, Join, TopN) == 2


class TestExplain:
    def test_explain_renders_every_node_with_schema(self):
        plan = TopN(
            Project(
                Join(
                    Filter(Scan("customer"), ("acctbal", "<", 100.0)),
                    Scan("orders"),
                    "customer.custkey", "orders.custkey",
                ),
                ("customer.custkey", "orders.orderkey"),
            ),
            25,
        )
        text = explain(plan, TPCH_SCHEMAS)
        assert "TopN[25]" in text
        assert "Filter[acctbal < 100.0]" in text
        assert "Join[customer.custkey = orders.custkey]" in text
        assert ":: (customer.custkey int, orders.orderkey int)" in text

    def test_explain_shows_exchange_routing(self):
        from repro.dist import TPCH_PARTITIONING, place_exchanges
        from repro.workloads import tpch_star_join_plan

        placed = place_exchanges(tpch_star_join_plan(), TPCH_PARTITIONING)
        text = explain(placed, TPCH_SCHEMAS, show_schema=False)
        assert "Exchange[gather -> root]" in text
        assert "Exchange[shuffle by" in text
