"""Shared fixtures for plan-IR tests: a minimal single-node database."""

import pytest

from repro.cluster import Cluster
from repro.engine import Database
from repro.engine.files import DevicePageFile
from repro.engine.tempdb import EXTENT_PAGES
from repro.net import Network
from repro.storage import GB, MB, Raid0Array, SsdDevice


class PlanRig:
    """One DB server with HDD + SSD; no remote memory needed here."""

    def __init__(self):
        self.cluster = Cluster(seed=11)
        self.sim = self.cluster.sim
        network = Network(self.sim)
        self.db_server = self.cluster.add_server("db", memory_bytes=64 * GB)
        network.attach(self.db_server)
        self.hdd = self.db_server.attach_device(
            "hdd",
            Raid0Array(self.sim, spindles=8, rng=self.cluster.rng.stream("hdd")),
        )
        self.ssd = self.db_server.attach_device("ssd", SsdDevice(self.sim))
        tempdb = DevicePageFile(
            500, self.db_server, self.ssd, capacity_pages=EXTENT_PAGES * 512
        )
        self.database = Database(
            self.db_server, bp_pages=4096, data_device=self.ssd,
            log_device=self.hdd, tempdb_store=tempdb,
            workspace_bytes=64 * MB,
        )

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))

    def execute(self, op):
        return self.run(self.database.execute(
            op, requested_memory_bytes=16 * MB, memory_consumers=2
        ))


@pytest.fixture
def rig():
    return PlanRig()
