"""Single-node lowering: fusion rules, legacy equivalence, aggregation."""

import pytest

from repro.dist import DistQuery
from repro.dist.planner import compile_single
from repro.engine import (
    Column,
    CostModel,
    ExternalSort,
    FilterRows,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    Medium,
    ProjectRows,
    Schema,
    TableScan,
)
from repro.plan import (
    Agg,
    Aggregate,
    Filter,
    Join,
    PlanError,
    Project,
    Scan,
    TopN,
    compile_aggregate,
    compile_predicate,
    explain_physical,
    lower_single,
    output_schema,
)
from repro.workloads import TPCH_SCHEMAS, TpchScale, build_tpch_database

SMALL = TpchScale(orders=200, lines_per_order=2, customers=60, parts=40, suppliers=10)

CUST_ORDERS = DistQuery(
    name="cust_orders",
    build_table="customer", build_key="custkey",
    probe_table="orders", probe_key="custkey",
    build_filter=("acctbal", "<", 5000.0),
    projection=(("build", "custkey"), ("build", "acctbal"),
                ("probe", "orderkey"), ("probe", "totalprice")),
    top_n=150,
)


class TestLegacyEquivalence:
    def test_ir_lowering_matches_legacy_compile_single(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        legacy = compile_single(CUST_ORDERS, tables)
        via_ir = lower_single(CUST_ORDERS.to_plan(), tables, TPCH_SCHEMAS)
        # Identical physical shape...
        assert explain_physical(via_ir) == explain_physical(legacy)
        assert isinstance(via_ir, ExternalSort) and via_ir.top_n == 150
        join = via_ir.child
        assert isinstance(join, HashJoin)
        assert isinstance(join.build, TableScan) and join.build.predicate is not None
        assert isinstance(join.probe, TableScan) and join.probe.predicate is None
        # ...and identical rows.  (Bit-identical virtual-time cost is
        # asserted end-to-end by the BENCH_dist goldens.)
        first = rig.execute(via_ir)
        second = rig.execute(compile_single(CUST_ORDERS, tables))
        assert first.rows == second.rows
        assert len(first.rows) == 150


class TestFusion:
    def test_filter_chain_fuses_into_scan_predicate(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        plan = Filter(
            Filter(Scan("orders", conditions=(("orderpriority", "<", 4),)),
                   ("totalprice", "<", 3000.0)),
            ("orderdate", ">=", 100),
        )
        op = lower_single(plan, tables, TPCH_SCHEMAS)
        assert isinstance(op, TableScan) and op.predicate is not None
        rows = rig.execute(op).rows
        assert all(r[4] < 4 and r[3] < 3000.0 and r[2] >= 100 for r in rows)

    def test_project_over_scan_fuses_into_scan(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        op = lower_single(
            Project(Scan("customer"), ("custkey", "acctbal")), tables, TPCH_SCHEMAS
        )
        assert isinstance(op, TableScan) and op.project is not None
        rows = rig.execute(op).rows
        assert rows and all(len(r) == 2 for r in rows)

    def test_project_over_join_fuses_into_combine(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        op = lower_single(CUST_ORDERS.to_plan(), tables, TPCH_SCHEMAS)
        # No ProjectRows anywhere: the join's combine emits projected tuples.
        assert "ProjectRows" not in explain_physical(op)

    def test_unfusable_filter_and_project_lower_to_row_operators(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        join = Join(Scan("customer"), Scan("orders"),
                    "customer.custkey", "orders.custkey")
        plan = Project(Filter(join, ("totalprice", "<", 2500.0)),
                       ("orders.orderkey", "orders.totalprice"))
        op = lower_single(plan, tables, TPCH_SCHEMAS)
        assert isinstance(op, ProjectRows)
        assert isinstance(op.child, FilterRows)
        rows = rig.execute(op).rows
        assert rows and all(price < 2500.0 for _key, price in rows)

    def test_row_operator_path_matches_fused_rows(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        join = Join(Scan("customer"), Scan("orders"),
                    "customer.custkey", "orders.custkey")
        fused = TopN(Project(
            Join(Scan("customer"), Scan("orders", conditions=(("totalprice", "<", 2500.0),)),
                 "customer.custkey", "orders.custkey"),
            ("orders.orderkey", "orders.totalprice")), 100)
        unfused = TopN(Project(Filter(join, ("totalprice", "<", 2500.0)),
                               ("orders.orderkey", "orders.totalprice")), 100)
        a = rig.execute(lower_single(fused, tables, TPCH_SCHEMAS)).rows
        b = rig.execute(lower_single(unfused, tables, TPCH_SCHEMAS)).rows
        assert a == b and len(a) > 0


class TestCostModelJoinChoice:
    def test_small_outer_with_remote_index_lowers_to_inlj(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        plan = Join(
            Scan("customer", conditions=(("custkey", "<", 4),)),
            Scan("orders"),
            "customer.custkey", "orders.orderkey",
        )
        fast = CostModel(index_medium=Medium.REMOTE_MEMORY,
                         table_medium=Medium.HDD)
        op = lower_single(plan, tables, TPCH_SCHEMAS, cost_model=fast)
        assert isinstance(op, IndexNestedLoopJoin)
        # Same plan without a model stays a hash join, with equal rows.
        hashed = lower_single(plan, tables, TPCH_SCHEMAS)
        assert isinstance(hashed, HashJoin)
        assert sorted(rig.execute(op).rows) == sorted(rig.execute(hashed).rows)

    def test_filtered_inner_scan_disables_inlj(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        plan = Join(
            Scan("customer", conditions=(("custkey", "<", 4),)),
            Scan("orders", conditions=(("totalprice", "<", 1e9),)),
            "customer.custkey", "orders.orderkey",
        )
        fast = CostModel(index_medium=Medium.REMOTE_MEMORY)
        op = lower_single(plan, tables, TPCH_SCHEMAS, cost_model=fast)
        assert isinstance(op, HashJoin)


SIMPLE = {"t": Schema(columns=(Column("g", "int", 8), Column("v", "int", 8)), key="g")}


def run_closures(compiled, rows):
    groups: dict = {}
    for row in rows:
        key = compiled["group_key"](row)
        if key not in groups:
            groups[key] = compiled["init"]()
        groups[key] = compiled["update"](groups[key], row)
    return sorted(compiled["finalize"](key, acc) for key, acc in groups.items())


class TestAggregateCompilation:
    ROWS = [(i % 3, (i * 7) % 23) for i in range(200)]
    AGGS = (Agg("count"), Agg("sum", "v"), Agg("min", "v"),
            Agg("max", "v"), Agg("avg", "v"))

    def test_two_phase_equals_single_phase(self):
        scan = Scan("t")
        child = output_schema(scan, SIMPLE)
        single = Aggregate(scan, ("g",), self.AGGS)
        partial_node = Aggregate(scan, ("g",), self.AGGS, phase="partial")
        final_node = Aggregate(partial_node, ("g",), self.AGGS, phase="final")

        expected = run_closures(compile_aggregate(single, child), self.ROWS)
        partial = compile_aggregate(partial_node, child)
        # Split rows across three "fragments", merge the partial rows.
        partial_rows = []
        for shard in (self.ROWS[0::3], self.ROWS[1::3], self.ROWS[2::3]):
            partial_rows.extend(run_closures(partial, shard))
        final = compile_aggregate(final_node, output_schema(partial_node, SIMPLE))
        assert run_closures(final, partial_rows) == expected

    def test_single_phase_values(self):
        scan = Scan("t")
        node = Aggregate(scan, ("g",), (Agg("count"), Agg("sum", "v")))
        result = run_closures(
            compile_aggregate(node, output_schema(scan, SIMPLE)), [(0, 5), (1, 7), (0, 3)]
        )
        assert result == [(0, 2, 8), (1, 1, 7)]

    def test_lowered_aggregate_runs_on_engine(self, rig):
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        plan = TopN(Aggregate(
            Scan("lineitem"), group_by=("returnflag",),
            aggs=(Agg("count"), Agg("sum", "quantity"), Agg("avg", "quantity")),
        ), 10)
        op = lower_single(plan, tables, TPCH_SCHEMAS)
        assert isinstance(op, ExternalSort)
        assert isinstance(op.child, HashAggregate)
        rows = rig.execute(op).rows
        assert len(rows) == 3  # returnflag in {0, 1, 2}
        total = sum(count for _flag, count, _sum, _avg in rows)
        assert total == SMALL.lineitems


class TestPredicateErrors:
    def test_unknown_comparison_op_rejected(self):
        schema = output_schema(Scan("orders"), TPCH_SCHEMAS)
        with pytest.raises(PlanError, match="unknown comparison"):
            compile_predicate(schema, (("orderkey", "!=", 3),))

    def test_exchange_in_single_node_plan_rejected(self, rig):
        from repro.plan import Exchange
        tables = build_tpch_database(rig.database, SMALL, seed=5)
        with pytest.raises(PlanError, match="Exchange"):
            lower_single(Exchange(Scan("orders"), "gather"), tables, TPCH_SCHEMAS)
