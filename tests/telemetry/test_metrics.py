"""Registry semantics: get-or-create, collisions, flat export."""

import pytest

from repro.sim import Counter, LatencyRecorder, TimeSeries
from repro.telemetry import MetricsError, MetricsRegistry


class TestGetOrCreate:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("db.reads")
        second = registry.counter("db.reads")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("db.reads")
        with pytest.raises(MetricsError):
            registry.histogram("db.reads")

    def test_timeline_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.timeline("db.bytes", bucket_us=1e6)
        assert registry.timeline("db.bytes", bucket_us=1e6) is registry.get("db.bytes")
        with pytest.raises(MetricsError):
            registry.timeline("db.bytes", bucket_us=2e6)

    def test_gauge_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.gauge("db.depth", lambda: 1.0)
        with pytest.raises(MetricsError):
            registry.gauge("db.depth", lambda: 2.0)


class TestRegister:
    def test_adopting_is_idempotent_for_the_same_object(self):
        registry = MetricsRegistry()
        recorder = LatencyRecorder("dev")
        assert registry.register("dev.read_latency", recorder) is recorder
        assert registry.register("dev.read_latency", recorder) is recorder

    def test_different_object_under_taken_name_raises(self):
        registry = MetricsRegistry()
        registry.register("dev.read_latency", LatencyRecorder("a"))
        with pytest.raises(MetricsError):
            registry.register("dev.read_latency", LatencyRecorder("b"))

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        counter = Counter()
        registry.register("x.y", counter)
        assert "x.y" in registry
        assert "x.z" not in registry
        assert registry.get("x.y") is counter


class TestLookup:
    def test_names_filters_by_dotted_prefix(self):
        registry = MetricsRegistry()
        registry.counter("dev.ssd.reads")
        registry.counter("dev.ssd.writes")
        registry.counter("dev.ssdx.reads")  # not under "dev.ssd"
        assert registry.names("dev.ssd") == ["dev.ssd.reads", "dev.ssd.writes"]

    def test_subtree_strips_the_prefix(self):
        registry = MetricsRegistry()
        registry.counter("bp.hits")
        registry.counter("bp.misses")
        assert set(registry.subtree("bp")) == {"hits", "misses"}


class TestFlat:
    def test_each_kind_flattens(self):
        registry = MetricsRegistry()
        registry.counter("c").add(3)
        registry.gauge("g", lambda: 7.5)
        histogram = registry.histogram("h")
        histogram.record(10)
        histogram.record(20)
        series = registry.timeline("t", bucket_us=1e6)
        series.add(0.5e6, 4)
        series.add(2.5e6, 6)
        registry.register("raw", 42)  # foreign plain number

        flat = registry.flat()
        assert flat["c"] == 3
        assert flat["g"] == 7.5
        assert flat["h.count"] == 2
        assert flat["h.mean_us"] == pytest.approx(15.0)
        assert flat["h.p50_us"] == 10
        assert flat["t.buckets"] == 2
        assert flat["t.total"] == 10
        assert flat["raw"] == 42.0

    def test_flat_respects_prefix(self):
        registry = MetricsRegistry()
        registry.counter("a.x").add(1)
        registry.counter("b.x").add(2)
        assert registry.flat("a") == {"a.x": 1}

    def test_adopted_timeseries_flattens_like_created_one(self):
        registry = MetricsRegistry()
        series = TimeSeries(bucket_us=10, name="ext")
        series.add(5, 100)
        registry.register("ext.bytes", series)
        flat = registry.flat()
        assert flat["ext.bytes.total"] == 100
