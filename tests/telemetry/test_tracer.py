"""Span nesting, causality across spawns, and the zero-cost default."""

from repro.sim import Simulator
from repro.telemetry import NOOP_SPAN, NOOP_TRACER, install


class TestNoopDefault:
    def test_every_simulator_starts_disabled(self):
        sim = Simulator()
        assert sim.tracer is NOOP_TRACER
        assert not sim.tracer.enabled

    def test_noop_span_is_shared_and_inert(self):
        sim = Simulator()
        with sim.tracer.span("anything", cat="cpu", detail=1) as span:
            assert span is NOOP_SPAN
            assert span.set(more=2) is span
        # Closing twice, current(), spawn hooks: all harmless no-ops.
        span.close()
        assert sim.tracer.current() is None

    def test_install_switches_the_simulator(self):
        sim = Simulator()
        tracer = install(sim)
        assert sim.tracer is tracer
        assert tracer.enabled


class TestNesting:
    def test_spans_nest_within_one_process(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            with tracer.span("outer", cat="cpu"):
                yield sim.timeout(5)
                with tracer.span("inner", cat="disk"):
                    yield sim.timeout(3)

        sim.run_until_complete(sim.spawn(worker()))
        outer, inner = tracer.find("outer")[0], tracer.find("inner")[0]
        assert outer.parent_id == 0
        assert inner.parent_id == outer.sid
        assert inner.depth == outer.depth + 1
        assert (outer.start_us, outer.end_us) == (0.0, 8.0)
        assert (inner.start_us, inner.end_us) == (5.0, 8.0)
        assert tracer.max_depth() == 1

    def test_sibling_spans_share_a_parent(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            with tracer.span("parent"):
                with tracer.span("first"):
                    yield sim.timeout(1)
                with tracer.span("second"):
                    yield sim.timeout(1)

        sim.run_until_complete(sim.spawn(worker()))
        parent = tracer.find("parent")[0]
        assert [s.name for s in tracer.children(parent)] == ["first", "second"]

    def test_exception_annotates_and_closes(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            try:
                with tracer.span("failing"):
                    yield sim.timeout(1)
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            return "survived"

        assert sim.run_until_complete(sim.spawn(worker())) == "survived"
        span = tracer.find("failing")[0]
        assert span.end_us == 1.0
        assert span.args["error"] == "RuntimeError"

    def test_out_of_order_close_unwinds_the_stack(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            outer = tracer.span("outer")
            inner = tracer.span("inner")
            yield sim.timeout(2)
            outer.close()  # closed under an open child
            assert tracer.current() is inner
            inner.close()
            assert tracer.current() is None

        sim.run_until_complete(sim.spawn(worker()))


class TestCausality:
    def test_spawned_process_inherits_the_open_span(self):
        sim = Simulator()
        tracer = install(sim)

        def child():
            with tracer.span("child.work", cat="net"):
                yield sim.timeout(4)

        def parent():
            with tracer.span("parent.fault", cat="fault"):
                process = sim.spawn(child())
                yield process

        sim.run_until_complete(sim.spawn(parent()))
        fault = tracer.find("parent.fault")[0]
        work = tracer.find("child.work")[0]
        assert work.parent_id == fault.sid
        assert tracer.depth_of(work) == 1
        # Separate processes render as separate tracks.
        assert work.tid != fault.tid

    def test_interleaved_processes_keep_separate_stacks(self):
        sim = Simulator()
        tracer = install(sim)

        def worker(tag, delay):
            with tracer.span(f"{tag}.outer"):
                yield sim.timeout(delay)
                with tracer.span(f"{tag}.inner"):
                    yield sim.timeout(delay)

        sim.spawn(worker("a", 3))
        sim.spawn(worker("b", 5))
        sim.run()
        for tag in ("a", "b"):
            outer = tracer.find(f"{tag}.outer")[0]
            inner = tracer.find(f"{tag}.inner")[0]
            # Despite interleaving, each inner belongs to its own outer.
            assert inner.parent_id == outer.sid

    def test_process_state_is_released_on_finish(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            with tracer.span("work"):
                yield sim.timeout(1)

        sim.run_until_complete(sim.spawn(worker()))
        assert not tracer._stacks
        assert not tracer._inherited
        assert not tracer._tids

    def test_global_stack_outside_any_process(self):
        sim = Simulator()
        tracer = install(sim)
        with tracer.span("driver") as outer:
            assert tracer.current() is outer
            with tracer.span("setup") as inner:
                assert inner.parent_id == outer.sid
                assert inner.tid == 0
        assert tracer.current() is None
