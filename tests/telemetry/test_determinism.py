"""Tracing must not perturb virtual time or seeded determinism.

The tracer only reads ``sim.now`` — it never creates events, yields, or
draws randomness — so the same seed with telemetry on or off must give
bit-identical results and final virtual clocks.  These tests run real
workloads twice and compare exact floats, not approximations.
"""

from repro.harness import Design, build_database, build_io_target
from repro.telemetry import install
from repro.workloads import RANDOM_8K, run_sqlio
from repro.workloads.analytics import run_query_streams
from repro.workloads.tpch import TPCH_QUERIES, build_tpch_database


def _sqlio_fingerprint(trace: bool):
    target = build_io_target("Custom", seed=11)
    sim = target.cluster.sim
    tracer = install(sim) if trace else None
    result = run_sqlio(
        sim, target, RANDOM_8K,
        span_bytes=target.span_bytes,
        rng=target.cluster.rng.stream("sqlio"),
    )
    fingerprint = (
        sim.now,
        result.elapsed_us,
        result.total_bytes,
        tuple(result.latency.samples),
    )
    return fingerprint, tracer


def _query_fingerprint(trace: bool):
    setup = build_database(
        Design.CUSTOM, bp_pages=256, bpext_pages=2600,
        tempdb_pages=49152, analytic=True, seed=4,
    )
    tracer = install(setup.sim) if trace else None
    tables = build_tpch_database(setup.database)
    report = run_query_streams(
        setup.database, tables, TPCH_QUERIES[:3], streams=1, seed=4
    )
    fingerprint = (
        setup.sim.now,
        report.elapsed_us,
        report.queries,
        tuple(
            (name, tuple(recorder.samples))
            for name, recorder in sorted(report.per_query.items())
        ),
    )
    return fingerprint, tracer


def test_sqlio_identical_with_tracing_on_and_off():
    off, _ = _sqlio_fingerprint(trace=False)
    on, tracer = _sqlio_fingerprint(trace=True)
    assert on == off  # bit-identical timings and final virtual clock
    assert tracer.spans  # and the traced run actually recorded spans


def test_tpch_identical_with_tracing_on_and_off():
    off, _ = _query_fingerprint(trace=False)
    on, tracer = _query_fingerprint(trace=True)
    assert on == off
    # The instrumented stack produced deep causal chains while at it:
    # query -> operator -> fault -> transfer -> NIC.
    assert tracer.max_depth() >= 4


def test_two_traced_runs_are_identical():
    first, _ = _sqlio_fingerprint(trace=True)
    second, _ = _sqlio_fingerprint(trace=True)
    assert first == second
