"""Chrome trace-event export and critical-path decomposition."""

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import (
    decompose,
    format_breakdown,
    install,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _traced_run():
    """A tiny two-process trace with known timings."""
    sim = Simulator()
    tracer = install(sim)

    def transfer():
        with tracer.span("nic.xmit", cat="net", size=8192):
            yield sim.timeout(10)

    def query():
        with tracer.span("query", cat="query", plan=object()):
            with tracer.span("cpu.compute", cat="cpu"):
                yield sim.timeout(5)
            yield sim.spawn(transfer())
            yield sim.timeout(3)  # uncategorized tail -> blocked

    sim.run_until_complete(sim.spawn(query()))
    return sim, tracer


class TestChromeTrace:
    def test_export_validates_and_round_trips(self):
        _sim, tracer = _traced_run()
        trace = to_chrome_trace(tracer, label="unit")
        events = validate_chrome_trace(trace)
        assert trace["displayTimeUnit"] == "ms"
        # Re-parse from the serialized form, as Perfetto would.
        reparsed = json.loads(json.dumps(trace))
        assert validate_chrome_trace(reparsed)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metadata}

    def test_span_events_carry_causal_links(self):
        _sim, tracer = _traced_run()
        events = validate_chrome_trace(to_chrome_trace(tracer))
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        query, compute = by_name["query"], by_name["cpu.compute"]
        assert compute["args"]["parent_id"] == query["args"]["span_id"]
        assert compute["ts"] == 0.0 and compute["dur"] == 5.0
        # Non-primitive args were stringified, so the event is pure JSON.
        assert isinstance(query["args"]["plan"], str)

    def test_open_span_is_clipped_to_now(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            tracer.span("never.closed", cat="cpu")
            yield sim.timeout(7)

        sim.run_until_complete(sim.spawn(worker()))
        events = validate_chrome_trace(to_chrome_trace(tracer))
        event = next(e for e in events if e["name"] == "never.closed")
        assert event["dur"] == 7.0

    def test_write_produces_loadable_json(self, tmp_path):
        _sim, tracer = _traced_run()
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path) as fh:
            assert validate_chrome_trace(json.load(fh))

    @pytest.mark.parametrize(
        "bad",
        [
            [],  # not an object
            {"events": []},  # wrong key
            {"traceEvents": []},  # empty
            {"traceEvents": [{"ph": "X", "name": "x"}]},  # missing pid/tid
            {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 0}]},
            {
                "traceEvents": [
                    {
                        "ph": "X", "name": "x", "pid": 1, "tid": 0,
                        "ts": -1, "dur": 1, "cat": "c", "args": {},
                    }
                ]
            },  # negative ts
        ],
    )
    def test_malformed_traces_raise(self, bad):
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


class TestCriticalPath:
    def test_breakdown_sums_to_total(self):
        _sim, tracer = _traced_run()
        root = tracer.find("query")[0]
        breakdown = decompose(tracer, root)
        assert breakdown["total"] == pytest.approx(18.0)
        assert breakdown["cpu"] == pytest.approx(5.0)
        assert breakdown["net"] == pytest.approx(10.0)
        assert breakdown["blocked"] == pytest.approx(3.0)
        parts = sum(v for k, v in breakdown.items() if k != "total")
        assert parts == pytest.approx(breakdown["total"])

    def test_deepest_span_wins(self):
        sim = Simulator()
        tracer = install(sim)

        def worker():
            with tracer.span("io", cat="disk"):
                yield sim.timeout(4)
                with tracer.span("copy", cat="cpu"):
                    yield sim.timeout(6)

        def root():
            with tracer.span("root", cat="query"):
                yield sim.spawn(worker())

        sim.run_until_complete(sim.spawn(root()))
        breakdown = decompose(tracer, tracer.find("root")[0])
        # The nested cpu span claims its interval from the disk span.
        assert breakdown["disk"] == pytest.approx(4.0)
        assert breakdown["cpu"] == pytest.approx(6.0)

    def test_zero_width_root(self):
        sim = Simulator()
        tracer = install(sim)
        with tracer.span("instant", cat="query") as span:
            pass
        breakdown = decompose(tracer, span)
        assert breakdown["total"] == 0.0
        assert breakdown["blocked"] == 0.0

    def test_format_breakdown_mentions_every_category(self):
        _sim, tracer = _traced_run()
        text = format_breakdown(decompose(tracer, tracer.find("query")[0]))
        assert "cpu" in text and "net" in text and "blocked" in text
        assert "100.0%" in text
