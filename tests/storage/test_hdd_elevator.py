"""Tests for the spindle's elevator scheduling and track cache."""

from repro.sim import Simulator
from repro.storage import GB, KB, MB, HddSpindle, IoOp


def run_io(device, op, offset, size):
    sim = device.sim
    return sim.run_until_complete(sim.spawn(device.io(op, offset, size)))


class TestSeekModel:
    def test_exact_continuation_is_cheap(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        run_io(disk, IoOp.READ, 10 * GB, 64 * KB)
        latency = run_io(disk, IoOp.READ, 10 * GB + 64 * KB, 64 * KB)
        # Settle + transfer only; no rotation, no seek.
        assert latency < 1000

    def test_far_seek_costs_milliseconds(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        run_io(disk, IoOp.READ, 0, 8 * KB)
        latency = run_io(disk, IoOp.READ, 900 * GB, 8 * KB)
        assert latency > 2500

    def test_seek_cost_grows_with_distance(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        disk.profile.random_jitter = 0.0  # deterministic for the check
        run_io(disk, IoOp.READ, 0, 8 * KB)
        near = run_io(disk, IoOp.READ, 4 * GB, 8 * KB)
        run_io(disk, IoOp.READ, 0, 8 * KB)
        far = run_io(disk, IoOp.READ, 1800 * GB, 8 * KB)
        assert far > near

    def test_track_cache_serves_rereads_without_seeking(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        run_io(disk, IoOp.READ, 50 * GB, 64 * KB)  # fills a segment
        # Move far away, then come back inside the cached segment.
        run_io(disk, IoOp.READ, 500 * GB, 8 * KB)
        latency = run_io(disk, IoOp.READ, 50 * GB + 128 * KB, 8 * KB)
        assert latency < 500  # cache hit, not a multi-ms seek


class TestElevator:
    def test_queue_served_in_ascending_offset_order(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        order = []

        def reader(tag, offset):
            yield from disk.io(IoOp.READ, offset, 8 * KB)
            order.append(tag)

        # Enqueue out of order in one instant; head starts at 0.
        sim.spawn(reader("far", 800 * GB))
        sim.spawn(reader("mid", 400 * GB))
        sim.spawn(reader("near", 100 * GB))
        sim.run()
        assert order == ["near", "mid", "far"]

    def test_mixed_random_probes_do_not_starve_a_stream(self):
        """A sequential stream stays fast while random probes interleave."""
        sim = Simulator()
        disk = HddSpindle(sim)
        stream_latencies = []

        def stream():
            for index in range(32):
                start = sim.now
                yield from disk.io(IoOp.READ, 10 * GB + index * 64 * KB, 64 * KB)
                stream_latencies.append(sim.now - start)

        def prober():
            rng = __import__("numpy").random.default_rng(1)
            for _ in range(16):
                offset = int(rng.integers(0, 900 * GB // MB)) * MB
                yield from disk.io(IoOp.READ, offset, 8 * KB)

        sim.spawn(stream())
        sim.spawn(prober())
        sim.run()
        # A large share of stream reads stay in the cached/continuation
        # regime even though random probes move the head between them
        # (slow ones are mostly queue-wait behind a probe, not seeks).
        fast = sum(1 for latency in stream_latencies if latency < 1500)
        assert fast >= len(stream_latencies) * 0.4
        # And in aggregate the stream is far cheaper than all-seeks.
        assert sum(stream_latencies) < len(stream_latencies) * 4000
