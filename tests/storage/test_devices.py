"""Unit tests for the block-device models."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    KB,
    MB,
    DramDevice,
    HddSpindle,
    IoOp,
    Raid0Array,
    RamDrive,
    SsdDevice,
)


def run_io(device, op, offset, size):
    sim = device.sim
    process = sim.spawn(device.io(op, offset, size))
    return sim.run_until_complete(process)


class TestHdd:
    def test_random_read_dominated_by_seek(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        latency = run_io(disk, IoOp.READ, 10 * MB, 8 * KB)
        # ~4.5 ms positioning +/- jitter, plus ~89 us transfer.
        assert 2500 < latency < 7000

    def test_sequential_read_much_faster(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        run_io(disk, IoOp.READ, 0, 512 * KB)
        latency = run_io(disk, IoOp.READ, 512 * KB, 512 * KB)
        # Track-to-track positioning + 512K at ~90 MB/s (~5.7 ms total is
        # wrong; should be ~0.3 + 5.7 = 6 ms? transfer = 512K/94.4 B/us).
        assert latency < 6500
        assert latency > 5000  # transfer time alone is ~5.5 ms

    def test_head_serializes_requests(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        events = [disk.submit(IoOp.READ, i * 100 * MB, 8 * KB) for i in range(4)]
        sim.run()
        latencies = sorted(e.value for e in events)
        # Each later request queues behind the earlier ones.
        assert latencies[-1] > 3 * latencies[0] * 0.8

    def test_accounting(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        run_io(disk, IoOp.READ, 0, 8 * KB)
        run_io(disk, IoOp.WRITE, 0, 16 * KB)
        assert disk.reads == 1 and disk.writes == 1
        assert disk.bytes_read == 8 * KB
        assert disk.bytes_written == 16 * KB
        assert len(disk.read_latency) == 1

    def test_invalid_requests_rejected(self):
        sim = Simulator()
        disk = HddSpindle(sim)
        with pytest.raises(ValueError):
            sim.run_until_complete(sim.spawn(disk.io(IoOp.READ, 0, 0)))
        with pytest.raises(ValueError):
            sim.run_until_complete(sim.spawn(disk.io(IoOp.READ, -5, 8 * KB)))


class TestRaid0:
    def test_chunking_round_robin(self):
        sim = Simulator()
        array = Raid0Array(sim, spindles=4, stripe_bytes=64 * KB)
        chunks = list(array._chunks(0, 256 * KB))
        assert [c[0] for c in chunks] == [0, 1, 2, 3]
        assert all(c[2] == 64 * KB for c in chunks)

    def test_chunking_unaligned(self):
        sim = Simulator()
        array = Raid0Array(sim, spindles=2, stripe_bytes=64 * KB)
        chunks = list(array._chunks(32 * KB, 64 * KB))
        # Crosses one stripe boundary: two half-stripe chunks.
        assert len(chunks) == 2
        assert chunks[0][2] == 32 * KB and chunks[1][2] == 32 * KB
        assert chunks[0][0] == 0 and chunks[1][0] == 1

    def test_chunk_disk_offsets_fold_by_spindle_count(self):
        sim = Simulator()
        array = Raid0Array(sim, spindles=2, stripe_bytes=64 * KB)
        # Stripe index 2 lands on spindle 0 at its stripe slot 1.
        (spindle, disk_offset, _length), = list(array._chunks(128 * KB, 64 * KB))
        assert spindle == 0
        assert disk_offset == 64 * KB

    def test_sequential_bandwidth_scales_with_spindles(self):
        def measure(spindles):
            sim = Simulator()
            array = Raid0Array(sim, spindles=spindles)
            total = 40 * MB

            def streamer(tag):
                # 5 concurrent 512K streams, as in the SQLIO benchmark.
                for index in range(16):
                    offset = (tag * 16 + index) * 512 * KB
                    yield from array.read(offset, 512 * KB)

            for tag in range(5):
                sim.spawn(streamer(tag))
            sim.run()
            return total / sim.now  # bytes per us

        slow = measure(4)
        fast = measure(20)
        assert fast > 2.5 * slow

    def test_single_spindle_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Raid0Array(sim, spindles=0)


class TestSsd:
    def test_random_faster_than_hdd(self):
        sim = Simulator()
        ssd = SsdDevice(sim)
        latency = run_io(ssd, IoOp.READ, 123 * MB, 8 * KB)
        assert latency < 200  # ~100 access + ~33 pipe

    def test_write_penalty(self):
        sim = Simulator()
        ssd = SsdDevice(sim)
        read = run_io(ssd, IoOp.READ, 0, 512 * KB)
        write = run_io(ssd, IoOp.WRITE, 0, 512 * KB)
        assert write > read * 1.2

    def test_pipe_serializes_large_io(self):
        sim = Simulator()
        ssd = SsdDevice(sim)
        events = [ssd.submit(IoOp.READ, i * MB, 512 * KB) for i in range(5)]
        sim.run()
        latencies = sorted(e.value for e in events)
        # 5 concurrent 512K reads: last one waits for four pipe slots.
        assert latencies[-1] > 4 * latencies[0] * 0.7


class TestRamDevices:
    def test_dram_is_sub_microsecond_class(self):
        sim = Simulator()
        dram = DramDevice(sim)
        latency = run_io(dram, IoOp.READ, 0, 8 * KB)
        assert latency < 1.0

    def test_ramdrive_fast_but_slower_than_dram(self):
        sim = Simulator()
        dram = DramDevice(sim)
        drive = RamDrive(sim)
        dram_latency = run_io(dram, IoOp.READ, 0, 8 * KB)
        drive_latency = run_io(drive, IoOp.READ, 0, 8 * KB)
        assert drive_latency > dram_latency
        assert drive_latency < 10

    def test_throughput_series_tracking(self):
        sim = Simulator()
        drive = RamDrive(sim)
        series = drive.track_throughput(bucket_us=10)
        run_io(drive, IoOp.READ, 0, 8 * KB)
        assert sum(v for _t, v in series.series()) == 8 * KB
