"""Tests for the PR-6 kernel fixes and the fast-loop scheduling discipline.

Covers the behaviors DESIGN.md §10 documents:

* windowed ``Resource.utilization`` anchored on ``mark_utilization``
  snapshots (the old implementation silently overestimated),
* interrupt-safe ``Store`` (dead getters never eat items; ``cancel``
  re-queues a delivered-but-unconsumed item),
* ``AnyOf`` detaching from losers so a late losing failure escalates
  instead of dying unobserved, and auto-tombstoning losing timers,
* lazy ``Timeout.cancel`` tombstones (skipped heap pops, no callbacks),
* now-queue determinism: same-instant events fire in trigger order and
  interleave with heap entries by global ``seq``,
* ``call_soon`` ordering and the unobserved-failure escalation rule.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator
from repro.sim.kernel import Timeout


# -- windowed utilization ---------------------------------------------------


def test_utilization_full_horizon_unchanged():
    sim = Simulator()
    res = sim.resource(capacity=1)
    sim.spawn(res.use(40))
    sim.run(until=100)
    assert res.utilization() == pytest.approx(0.4)


def test_windowed_utilization_is_exact_at_marks():
    sim = Simulator()
    res = sim.resource(capacity=2)

    def load():
        # [0, 50): one of two cores busy; [50, 100): both idle.
        yield from res.use(50)

    sim.spawn(load())
    marks = {}

    def prober():
        yield sim.timeout(25)
        marks[25] = res.mark_utilization()
        yield sim.timeout(25)
        marks[50] = res.mark_utilization()

    sim.spawn(prober())
    sim.run(until=100)
    # Window [25, 100): busy area = 1 core * 25us of 150 core-us.
    assert res.utilization(since=marks[25]) == pytest.approx(25 / 150)
    # Window [50, 100): fully idle.
    assert res.utilization(since=marks[50]) == pytest.approx(0.0)


def test_windowed_utilization_would_have_overestimated():
    # The pre-fix implementation divided the *whole-life* busy area by
    # the window width: with a long busy prefix it could exceed 1.0.
    sim = Simulator()
    res = sim.resource(capacity=1)
    sim.spawn(res.use(90))
    mark = []

    def prober():
        yield sim.timeout(90)
        mark.append(res.mark_utilization())

    sim.spawn(prober())
    sim.run(until=100)
    windowed = res.utilization(since=mark[0])
    assert windowed == pytest.approx(0.0)  # old math: 90 / 10 = 9.0
    assert windowed <= 1.0


def test_windowed_utilization_requires_a_mark():
    sim = Simulator()
    res = sim.resource(capacity=1)
    sim.spawn(res.use(10))
    sim.run(until=20)
    with pytest.raises(SimulationError, match="mark_utilization"):
        res.utilization(since=5.0)


def test_windowed_utilization_before_creation_is_exact():
    sim = Simulator()
    sim.run(until=10)  # resource born at t=10
    res = sim.resource(capacity=1)
    sim.spawn(res.use(10))
    sim.run(until=30)
    # since=0 predates the resource: nothing accumulated before it.
    assert res.utilization(since=0.0) == pytest.approx(10 / 30)


def test_cpu_windowed_utilization_gauge_path():
    from repro.sim.cpu import Cpu

    sim = Simulator()
    cpu = Cpu(sim, cores=1, name="srv")

    def work():
        yield from cpu.compute(30)

    sim.spawn(work())
    since = []

    def prober():
        yield sim.timeout(30)
        since.append(cpu.mark_utilization())

    sim.spawn(prober())
    sim.run(until=60)
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.utilization(since=since[0]) == pytest.approx(0.0)


# -- interrupt-safe Store ---------------------------------------------------


def test_store_put_skips_interrupted_getter():
    sim = Simulator()
    store = sim.store()
    received = []

    def victim():
        try:
            item = yield store.get()
            received.append(("victim", item))
        except Interrupt:
            pass

    def survivor():
        yield sim.timeout(2)
        item = yield store.get()
        received.append(("survivor", item))

    v = sim.spawn(victim())
    sim.spawn(survivor())

    def driver():
        yield sim.timeout(1)
        v.interrupt(cause="test")
        yield sim.timeout(2)
        store.put("payload")

    sim.spawn(driver())
    sim.run()
    # Pre-fix: put() succeeded the victim's detached getter and the
    # item vanished — the survivor deadlocked.
    assert received == [("survivor", "payload")]


def test_store_cancel_requeues_delivered_item():
    sim = Simulator()
    store = sim.store()
    store.put("oldest")
    store.put("newer")
    event = store.get()  # delivered immediately: event carries "oldest"
    assert event.triggered
    store.cancel(event)  # never consumed: back to the head
    got = []

    def consumer():
        first = yield store.get()
        second = yield store.get()
        got.extend([first, second])

    sim.spawn(consumer())
    sim.run()
    assert got == ["oldest", "newer"]


def test_store_cancel_pending_getter_purges_it():
    sim = Simulator()
    store = sim.store()
    event = store.get()
    store.cancel(event)
    assert event.cancelled
    store.put("item")
    assert len(store) == 1  # parked, not fed to the cancelled getter
    store.cancel(event)  # idempotent
    with pytest.raises(SimulationError):
        store.cancel(sim.event())  # foreign event rejected


# -- AnyOf loser handling ---------------------------------------------------


def test_any_of_losing_failure_escalates():
    sim = Simulator()
    loser = sim.event()

    def racer():
        yield sim.any_of([sim.timeout(1), loser])

    sim.spawn(racer())

    def late_failure():
        yield sim.timeout(5)
        loser.fail(RuntimeError("lost data"))

    sim.spawn(late_failure())
    # Pre-fix the composite's _triggered guard swallowed this silently.
    with pytest.raises(SimulationError, match="died unobserved"):
        sim.run()


def test_any_of_losing_failure_observable_by_design():
    sim = Simulator()
    loser = sim.event()
    observed = []

    def racer():
        yield sim.any_of([sim.timeout(1), loser])
        loser.add_callback(lambda e: observed.append(e._exception))

    sim.spawn(racer())

    def late_failure():
        yield sim.timeout(5)
        loser.fail(RuntimeError("lost data"))

    sim.spawn(late_failure())
    sim.run()
    assert len(observed) == 1 and str(observed[0]) == "lost data"


def test_any_of_tombstones_losing_timer():
    sim = Simulator()
    winner = sim.event()
    timer = sim.timeout(1000)
    done = []

    def racer():
        index, value = yield sim.any_of([winner, timer])
        done.append((index, value))

    sim.spawn(racer())

    def fire():
        yield sim.timeout(1)
        winner.succeed("fast")

    sim.spawn(fire())
    sim.run()
    assert done == [(0, "fast")]
    assert timer.cancelled  # no other waiters: auto-tombstoned
    assert not timer.processed
    assert sim.now == 1000.0  # its heap entry still drained (skipped)


def test_any_of_does_not_cancel_shared_losing_timer():
    sim = Simulator()
    winner = sim.event()
    timer = sim.timeout(10)
    fired = []
    timer.add_callback(lambda e: fired.append(sim.now))

    def racer():
        yield sim.any_of([winner, timer])

    sim.spawn(racer())

    def fire():
        yield sim.timeout(1)
        winner.succeed()

    sim.spawn(fire())
    sim.run()
    assert not timer.cancelled  # an outside waiter still needs it
    assert fired == [10.0]


# -- lazy Timeout cancellation ----------------------------------------------


def test_cancelled_timeout_never_fires():
    sim = Simulator()
    timer = sim.timeout(10)
    fired = []
    timer.add_callback(lambda e: fired.append(sim.now))
    timer.cancel()
    timer.cancel()  # idempotent
    sim.run()
    assert fired == []
    assert timer.cancelled and not timer.processed


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    timer = sim.timeout(5)
    sim.run()
    assert timer.processed
    timer.cancel()
    assert not timer.cancelled


def test_waiting_on_cancelled_timer_is_an_error():
    sim = Simulator()
    timer = sim.timeout(10)
    timer.cancel()
    with pytest.raises(SimulationError, match="cancelled"):
        timer.add_callback(lambda e: None)

    def proc():
        yield timer

    sim.spawn(proc())
    with pytest.raises(SimulationError, match="cancelled"):
        sim.run()


# -- now-queue discipline ---------------------------------------------------


def test_same_instant_events_fire_in_trigger_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        event = sim.event()
        event.add_callback(lambda e, t=tag: order.append(t))
        event.succeed()
    sim.run()
    assert order == ["a", "b", "c"]


def test_nowq_merges_with_due_heap_entries_by_seq():
    # A timer scheduled *before* a same-instant trigger must fire first
    # when both are due at the same now (global seq order).
    sim = Simulator()
    order = []

    def proc():
        early_timer = sim.timeout(5)  # seq N
        early_timer.add_callback(lambda e: order.append("timer"))
        yield sim.timeout(5)  # seq N+1: resumes us at t=5
        triggered = sim.event()
        triggered.add_callback(lambda e: order.append("triggered"))
        triggered.succeed()  # seq N+2, same instant
        late_timer = sim.timeout(0)  # seq N+3, heap entry due now
        late_timer.add_callback(lambda e: order.append("zero-delay"))
        yield triggered

    sim.spawn(proc())
    sim.run()
    assert order == ["timer", "triggered", "zero-delay"]


def test_call_soon_runs_after_queued_events():
    sim = Simulator()
    order = []
    first = sim.event()
    first.add_callback(lambda e: order.append("event"))
    first.succeed()
    sim.call_soon(lambda: order.append("soon"))
    sim.run()
    assert order == ["event", "soon"]


def test_events_processed_counter_advances():
    sim = Simulator()

    def proc():
        for _ in range(10):
            yield sim.timeout(1)

    sim.spawn(proc())
    sim.run()
    assert sim.events_processed >= 10


def test_step_matches_run_semantics():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(3)
        seen.append(sim.now)

    sim.spawn(proc())
    while sim._nowq or sim._heap:
        sim.step()
    assert seen == [3.0]
    assert sim.now == 3.0


# -- unobserved failures ----------------------------------------------------


def test_unobserved_failed_event_raises():
    sim = Simulator()
    sim.event().fail(RuntimeError("nobody is listening"))
    with pytest.raises(SimulationError, match="died unobserved"):
        sim.run()


def test_observed_failed_event_is_fine():
    sim = Simulator()
    event = sim.event()
    caught = []
    event.add_callback(lambda e: caught.append(e._exception))
    event.fail(RuntimeError("handled"))
    sim.run()
    assert len(caught) == 1


def test_resource_grant_batch_preserves_fifo():
    sim = Simulator()
    res = sim.resource(capacity=2)
    order = []

    def worker(tag, hold):
        yield res.request()
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    for index, tag in enumerate("abcd"):
        sim.spawn(worker(tag, 10))
    sim.run()
    assert order == [("a", 0.0), ("b", 0.0), ("c", 10.0), ("d", 10.0)]
    assert res.in_use == 0


def test_timeout_repr_fields():
    sim = Simulator()
    timer = sim.timeout(7, value="v")
    assert isinstance(timer, Timeout)
    assert timer.delay == 7
    sim.run()
    assert timer.value == "v"
