"""Interrupt propagation through composite events and resource teardown.

The fault injectors interrupt processes that are blocked deep inside
``AllOf``/``AnyOf`` composites or waiting on ``Resource`` grants; these
tests pin down the kernel semantics the injectors rely on.
"""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


class TestInterruptThroughComposites:
    def test_interrupt_while_waiting_on_all_of(self):
        sim = Simulator()
        log = []

        def waiter():
            try:
                yield sim.all_of([sim.timeout(100), sim.timeout(200)])
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        process = sim.spawn(waiter())

        def interrupter():
            yield sim.timeout(30)
            process.interrupt(cause="crash")

        sim.spawn(interrupter())
        sim.run()
        assert log == [(30.0, "crash")]

    def test_interrupt_while_waiting_on_any_of(self):
        sim = Simulator()
        log = []

        def waiter():
            try:
                yield sim.any_of([sim.timeout(100), sim.timeout(200)])
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        process = sim.spawn(waiter())

        def interrupter():
            yield sim.timeout(5)
            process.interrupt(cause="nic down")

        sim.spawn(interrupter())
        sim.run()
        assert log == [(5.0, "nic down")]

    def test_composite_children_unaffected_by_interrupt(self):
        """Interrupting the waiter must not cancel the child events:
        other processes waiting on them still complete."""
        sim = Simulator()
        shared = sim.timeout(50, value="done")
        results = []

        def victim():
            try:
                yield sim.all_of([shared, sim.timeout(500)])
            except Interrupt:
                results.append(("victim", sim.now))

        def bystander():
            value = yield shared
            results.append(("bystander", sim.now, value))

        process = sim.spawn(victim())
        sim.spawn(bystander())

        def interrupter():
            yield sim.timeout(10)
            process.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert ("victim", 10.0) in results
        assert ("bystander", 50.0, "done") in results

    def test_all_of_completion_after_interrupt_does_not_resume_victim(self):
        sim = Simulator()
        resumed = []

        def victim():
            try:
                yield sim.all_of([sim.timeout(20)])
            except Interrupt:
                yield sim.timeout(1000)  # lives on, doing something else
            resumed.append(sim.now)

        process = sim.spawn(victim())

        def interrupter():
            yield sim.timeout(5)
            process.interrupt()

        sim.spawn(interrupter())
        sim.run()
        # Exactly one resumption path: the interrupt handler, not the AllOf.
        assert resumed == [1005.0]

    def test_uncaught_interrupt_kills_process_silently(self):
        sim = Simulator()

        def naive():
            yield sim.all_of([sim.timeout(100)])
            return "unreachable"

        process = sim.spawn(naive())

        def interrupter():
            yield sim.timeout(3)
            process.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert not process.is_alive
        assert process.value is None

    def test_interrupt_process_blocked_on_another_process(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(1000)
            return "child done"

        def parent():
            try:
                yield sim.spawn(child())
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        process = sim.spawn(parent())

        def interrupter():
            yield sim.timeout(40)
            process.interrupt(cause="abort")

        sim.spawn(interrupter())
        sim.run()
        assert log == [(40.0, "abort")]


class TestResourceCancel:
    def test_cancel_queued_request_dequeues_it(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        order = []

        def holder():
            yield resource.request()
            yield sim.timeout(100)
            resource.release()

        def canceller():
            request = resource.request()
            abort = sim.timeout(10)
            index, _value = yield sim.any_of([request, abort])
            resource.cancel(request)
            order.append(("cancelled", sim.now, index))

        def third():
            yield sim.timeout(1)
            yield resource.request()
            order.append(("third granted", sim.now))
            resource.release()

        sim.spawn(holder())
        sim.spawn(canceller())
        sim.spawn(third())
        sim.run()
        # The cancelled request must not absorb the grant: "third" gets
        # the resource as soon as the holder releases.
        assert ("cancelled", 10.0, 1) in order
        assert ("third granted", 100.0) in order

    def test_cancel_granted_request_releases_capacity(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        granted = []

        def first():
            request = resource.request()
            yield request
            yield sim.timeout(5)
            resource.cancel(request)  # triggered -> behaves like release

        def second():
            yield resource.request()
            granted.append(sim.now)
            resource.release()

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        assert granted == [5.0]
        assert resource.in_use == 0

    def test_cancel_foreign_event_rejected(self):
        sim = Simulator()
        resource = sim.resource(capacity=1)
        with pytest.raises(SimulationError):
            resource.cancel(sim.event())

    def test_cancel_request_of_other_resource_rejected(self):
        sim = Simulator()
        first = sim.resource(capacity=1)
        second = sim.resource(capacity=1)
        request = first.request()
        with pytest.raises(SimulationError):
            second.cancel(request)

    def test_interrupted_waiter_with_cancel_leaks_nothing(self):
        """The NicPort._engine pattern: request in try, cancel in finally."""
        sim = Simulator()
        resource = sim.resource(capacity=1)
        completions = []

        def engine_user(name, hold):
            request = resource.request()
            try:
                yield request
                yield sim.timeout(hold)
                completions.append((name, sim.now))
            finally:
                resource.cancel(request)

        def run_wrapped(name, hold):
            # Uncaught Interrupt unwinds through the finally block.
            yield from engine_user(name, hold)

        victim = sim.spawn(run_wrapped("victim", 1000))
        sim.spawn(run_wrapped("patient", 50))

        def interrupter():
            yield sim.timeout(10)
            victim.interrupt(cause="link down")

        sim.spawn(interrupter())
        sim.run()
        # Victim died at t=10; the patient then acquires and finishes.
        assert completions == [("patient", 60.0)]
        assert resource.in_use == 0
