"""Unit tests for the DES kernel: events, processes, resources."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(5)
        seen.append(sim.now)
        yield sim.timeout(2.5)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [5.0, 7.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(1, value="hello")
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_process_return_value_via_run_until_complete():
    sim = Simulator()

    def proc():
        yield sim.timeout(3)
        return 42

    process = sim.spawn(proc())
    assert sim.run_until_complete(process) == 42
    assert sim.now == 3


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(10)
        gate.succeed("open")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert log == [(10.0, "open")]


def test_event_double_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_all_of_collects_values_in_order():
    sim = Simulator()
    results = []

    def proc():
        values = yield sim.all_of([sim.timeout(5, "a"), sim.timeout(2, "b")])
        results.append((sim.now, values))

    sim.spawn(proc())
    sim.run()
    assert results == [(5.0, ["a", "b"])]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def proc():
        index, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(2, "fast")])
        results.append((sim.now, index, value))

    sim.spawn(proc())
    sim.run()
    assert results == [(2.0, 1, "fast")]


def test_resource_fifo_ordering():
    sim = Simulator()
    resource = sim.resource(capacity=1)
    order = []

    def worker(name, hold):
        yield resource.request()
        order.append((name, sim.now))
        yield sim.timeout(hold)
        resource.release()

    sim.spawn(worker("a", 10))
    sim.spawn(worker("b", 10))
    sim.spawn(worker("c", 10))
    sim.run()
    assert order == [("a", 0.0), ("b", 10.0), ("c", 20.0)]


def test_resource_capacity_allows_parallelism():
    sim = Simulator()
    resource = sim.resource(capacity=2)
    done = []

    def worker(name):
        yield from resource.use(10)
        done.append((name, sim.now))

    for name in "abcd":
        sim.spawn(worker(name))
    sim.run()
    # Two run 0-10, two run 10-20.
    assert [t for _n, t in done] == [10.0, 10.0, 20.0, 20.0]


def test_resource_over_release_detected():
    sim = Simulator()
    resource = sim.resource(capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_utilization():
    sim = Simulator()
    resource = sim.resource(capacity=2)

    def worker():
        yield from resource.use(50)

    sim.spawn(worker())
    sim.run(until=100)
    # One of two cores busy for 50 of 100 us -> 25%.
    assert resource.utilization() == pytest.approx(0.25)


def test_store_fifo_between_processes():
    sim = Simulator()
    store = sim.store()
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((sim.now, item))

    def producer():
        for index in range(3):
            yield sim.timeout(5)
            store.put(index)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert received == [(5.0, 0), (10.0, 1), (15.0, 2)]


def test_interrupt_wakes_blocked_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    process = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(7)
        process.interrupt(cause="wakeup")

    sim.spawn(interrupter())
    sim.run()
    assert log == [(7.0, "wakeup")]


def test_run_until_bound():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10)

    sim.spawn(ticker())
    sim.run(until=35)
    assert sim.now == 35


def test_deadlock_detected():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    process = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(process)


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError, match="expected Event"):
        sim.run()


def test_same_instant_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in range(5):
        sim.spawn(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_all_of_propagates_failure():
    sim = Simulator()
    bad = sim.event()
    caught = []

    def waiter():
        try:
            yield sim.all_of([sim.timeout(10), bad])
        except RuntimeError as exc:
            caught.append((sim.now, str(exc)))

    sim.spawn(waiter())
    bad.fail(RuntimeError("child failed"))
    sim.run()
    assert caught == [(0.0, "child failed")]


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    seen = []

    def waiter():
        values = yield sim.all_of([])
        seen.append((sim.now, values))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(0.0, [])]


def test_event_value_before_trigger_is_error():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_late_callback_fires_at_current_instant():
    sim = Simulator()
    event = sim.timeout(5)
    seen = []

    def late_subscriber():
        yield sim.timeout(10)  # event already processed by now
        event.add_callback(lambda e: seen.append(sim.now))

    sim.spawn(late_subscriber())
    sim.run()
    assert seen == [10.0]


def test_store_multiple_waiters_fifo():
    sim = Simulator()
    store = sim.store()
    got = []

    def consumer(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.spawn(consumer("a"))
    sim.spawn(consumer("b"))
    store.put(1)
    store.put(2)
    sim.run()
    assert got == [("a", 1), ("b", 2)]
