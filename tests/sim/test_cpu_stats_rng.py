"""Unit tests for the CPU model, stats collectors and RNG registry."""

import pytest

from repro.sim import Counter, Cpu, LatencyRecorder, RngRegistry, Simulator, TimeSeries
from repro.sim.stats import summarize


class TestCpu:
    def test_compute_occupies_core(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        finish = []

        def worker(tag):
            yield from cpu.compute(10)
            finish.append((tag, sim.now))

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert finish == [("a", 10.0), ("b", 20.0)]

    def test_sync_wait_holds_core(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        finish = []

        def spinner():
            yield from cpu.sync_wait(sim.timeout(50))
            finish.append(("spinner", sim.now))

        def compute_job():
            yield sim.timeout(1)  # arrive second
            yield from cpu.compute(5)
            finish.append(("compute", sim.now))

        sim.spawn(spinner())
        sim.spawn(compute_job())
        sim.run()
        # The spinner monopolizes the core until 50, so the compute job
        # only finishes afterwards: the cost of synchronous spinning.
        assert finish == [("spinner", 50.0), ("compute", 55.0)]

    def test_async_wait_releases_core_but_pays_switch(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1, context_switch_us=2, reschedule_delay_us=8)
        finish = []

        def io_job():
            yield from cpu.async_wait(sim.timeout(50))
            finish.append(("io", sim.now))

        def compute_job():
            yield sim.timeout(1)
            yield from cpu.compute(5)
            finish.append(("compute", sim.now))

        sim.spawn(io_job())
        sim.spawn(compute_job())
        sim.run()
        # Compute proceeds during the I/O wait; the I/O job pays 50
        # (wait) + 8 (resched) + 2 (switch-in) = 60.
        assert ("compute", 6.0) in finish
        assert ("io", 60.0) in finish
        assert cpu.context_switches == 1

    def test_async_wait_returns_event_value(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)

        def job():
            value = yield from cpu.async_wait(sim.timeout(3, value="data"))
            return value

        process = sim.spawn(job())
        assert sim.run_until_complete(process) == "data"

    def test_utilization_tracking(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        series = cpu.track_utilization(bucket_us=10)

        def worker():
            yield from cpu.compute(25)

        sim.spawn(worker())
        sim.run(until=30)
        buckets = dict((t, v) for t, v in series.series(until_us=30))
        # One core busy 0-25us: buckets at 0s-ish each hold 10,10,5 busy-us.
        assert buckets[0.0] == pytest.approx(10)
        assert buckets[1e-05] == pytest.approx(10)
        assert buckets[2e-05] == pytest.approx(5)
        assert cpu.utilization() == pytest.approx(25 / 60)


class TestStats:
    def test_latency_percentiles(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.record(float(value))
        assert rec.p50 == 50
        assert rec.p95 == 95
        assert rec.p99 == 99
        assert rec.mean == pytest.approx(50.5)
        assert rec.maximum == 100

    def test_empty_recorder_is_zero(self):
        rec = LatencyRecorder()
        assert rec.mean == 0
        assert rec.p99 == 0
        assert rec.maximum == 0

    def test_summarize_keys(self):
        rec = LatencyRecorder()
        rec.record(10)
        summary = summarize(rec)
        assert set(summary) == {"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"}
        assert summary["count"] == 1

    def test_summarize_values(self):
        rec = LatencyRecorder()
        for value in range(1, 101):
            rec.record(float(value))
        summary = summarize(rec)
        assert summary["count"] == 100
        assert summary["mean_us"] == pytest.approx(50.5)
        assert summary["p50_us"] == 50
        assert summary["p95_us"] == 95
        assert summary["p99_us"] == 99
        assert summary["max_us"] == 100

    def test_summarize_empty_recorder_is_all_zero(self):
        summary = summarize(LatencyRecorder())
        assert summary == {
            "count": 0.0, "mean_us": 0.0, "p50_us": 0.0,
            "p95_us": 0.0, "p99_us": 0.0, "max_us": 0.0,
        }

    def test_percentile_cache_invalidates_on_record(self):
        rec = LatencyRecorder()
        rec.record(10)
        assert rec.p99 == 10  # populates the sorted cache
        rec.record(5)  # must invalidate it
        assert rec.p50 == 5
        assert rec.p99 == 10
        assert rec.percentile(0) == 5

    def test_percentile_cache_repeated_reads_are_stable(self):
        rec = LatencyRecorder()
        for value in (30, 10, 20):
            rec.record(value)
        # Same answers on the cached path as on the first (sorting) read.
        assert [rec.p50, rec.p50, rec.p95, rec.p99] == [20, 20, 30, 30]
        assert rec.samples == [30, 10, 20]  # insertion order untouched

    def test_percentile_guards_direct_sample_appends(self):
        rec = LatencyRecorder()
        rec.record(10)
        assert rec.p50 == 10
        rec.samples.append(1)  # bypasses record(); length check catches it
        assert rec.p50 == 1

    def test_reset_clears_cache(self):
        rec = LatencyRecorder()
        rec.record(10)
        assert rec.p50 == 10
        rec.reset()
        assert rec.p50 == 0
        rec.record(7)
        assert rec.p50 == 7

    def test_counter_rate(self):
        counter = Counter()
        counter.add(500)
        assert counter.rate_per_second(1e6) == pytest.approx(500)
        assert counter.rate_per_second(0) == 0

    def test_time_series_buckets_and_zero_fill(self):
        series = TimeSeries(bucket_us=1e6)
        series.add(0.5e6, 10)
        series.add(2.5e6, 5)
        points = series.series()
        assert points == [(0.0, 10), (1.0, 0.0), (2.0, 5)]


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(seed=7).stream("disk").random(5).tolist()
        b = RngRegistry(seed=7).stream("disk").random(5).tolist()
        assert a == b

    def test_streams_are_independent_by_name(self):
        registry = RngRegistry(seed=7)
        a = registry.stream("disk").random(5).tolist()
        b = registry.stream("net").random(5).tolist()
        assert a != b

    def test_new_stream_does_not_perturb_existing(self):
        r1 = RngRegistry(seed=7)
        first = r1.stream("disk").random(3).tolist()
        r2 = RngRegistry(seed=7)
        r2.stream("other")  # extra consumer created first
        second = r2.stream("disk").random(3).tolist()
        assert first == second

    def test_reset_restores_sequences(self):
        registry = RngRegistry(seed=3)
        first = registry.stream("x").random(4).tolist()
        registry.reset()
        again = registry.stream("x").random(4).tolist()
        assert first == again


class TestTimeSeriesSplitting:
    def test_busy_interval_splits_across_buckets(self):
        """Long computations spread over buckets, not lumped at the end."""
        sim = Simulator()
        cpu = Cpu(sim, cores=1)
        series = cpu.track_utilization(bucket_us=10)

        def worker():
            yield from cpu.compute(35)

        sim.spawn(worker())
        sim.run()
        values = dict(series.series(until_us=40))
        assert values[0.0] == pytest.approx(10)
        assert values[1e-05] == pytest.approx(10)
        assert values[2e-05] == pytest.approx(10)
        assert values[3e-05] == pytest.approx(5)

    def test_background_load_steals_cpu(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        sim.spawn(cpu.background_load(per_event_us=40, event_stream_period_us=50))
        sim.run(until=1000)
        # Each cycle: 50 us idle + 40 us busy on one of two cores.
        assert 0.15 < cpu.utilization() < 0.3
