"""Lock manager: modes, FIFO grants, upgrades, deadlock detection."""

import pytest

from repro.sim.kernel import Simulator
from repro.txn import DeadlockAbort, LockManager, LockMode

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def drive(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


class TestModes:
    def test_shared_locks_coexist(self):
        sim = Simulator()
        locks = LockManager(sim)

        def both():
            yield from locks.acquire(1, "r", S)
            yield from locks.acquire(2, "r", S)
            return locks.holders_of("r")

        holders = drive(sim, both())
        assert holders == {1: S, 2: S}
        assert locks.waits == 0

    def test_exclusive_excludes(self):
        sim = Simulator()
        locks = LockManager(sim)
        order = []

        def holder():
            yield from locks.acquire(1, "r", X)
            order.append("held")
            yield sim.timeout(10)
            locks.release_all(1)

        def waiter():
            yield sim.timeout(1)
            yield from locks.acquire(2, "r", S)
            order.append("granted")

        sim.spawn(holder())
        drive(sim, waiter())
        assert order == ["held", "granted"]
        assert locks.waits == 1
        assert locks.lock_wait_us == pytest.approx(9.0)

    def test_reentrant_acquire_is_noop(self):
        sim = Simulator()
        locks = LockManager(sim)

        def body():
            yield from locks.acquire(1, "r", X)
            yield from locks.acquire(1, "r", X)
            yield from locks.acquire(1, "r", S)  # weaker: still a no-op

        drive(sim, body())
        assert locks.holders_of("r") == {1: X}
        assert locks.waits == 0

    def test_release_all_leaves_table_idle(self):
        sim = Simulator()
        locks = LockManager(sim)

        def body():
            yield from locks.acquire(1, "a", S)
            yield from locks.acquire(1, "b", X)
            locks.release_all(1)

        drive(sim, body())
        assert locks.idle

    def test_s_batch_granted_together(self):
        """Consecutive S waiters behind an X are granted as one batch."""
        sim = Simulator()
        locks = LockManager(sim)
        granted_at = {}

        def holder():
            yield from locks.acquire(1, "r", X)
            yield sim.timeout(50)
            locks.release_all(1)

        def reader(txn_id):
            yield sim.timeout(txn_id)  # arrive at distinct times, in order
            yield from locks.acquire(txn_id, "r", S)
            granted_at[txn_id] = sim.now

        sim.spawn(holder())
        readers = [sim.spawn(reader(txn_id)) for txn_id in (2, 3, 4)]
        for process in readers:
            sim.run_until_complete(process)
        assert granted_at == {2: 50.0, 3: 50.0, 4: 50.0}


class TestUpgrades:
    def test_sole_holder_upgrades_inline(self):
        sim = Simulator()
        locks = LockManager(sim)

        def body():
            yield from locks.acquire(1, "r", S)
            yield from locks.acquire(1, "r", X)

        drive(sim, body())
        assert locks.holders_of("r") == {1: X}
        assert locks.upgrades == 1
        assert locks.waits == 0

    def test_upgrade_waits_for_other_readers_and_jumps_queue(self):
        sim = Simulator()
        locks = LockManager(sim)
        order = []

        def other_reader():
            yield from locks.acquire(2, "r", S)
            yield sim.timeout(30)
            locks.release_all(2)

        def upgrader():
            yield from locks.acquire(1, "r", S)
            yield sim.timeout(1)
            yield from locks.acquire(1, "r", X)  # waits for txn 2 only
            order.append(("upgrade", sim.now))
            yield sim.timeout(5)
            locks.release_all(1)

        def late_writer():
            yield sim.timeout(2)
            yield from locks.acquire(3, "r", X)  # queued behind the upgrade
            order.append(("late", sim.now))
            locks.release_all(3)

        sim.spawn(other_reader())
        sim.spawn(upgrader())
        drive(sim, late_writer())
        assert order == [("upgrade", 30.0), ("late", 35.0)]


class TestDeadlock:
    def test_two_txn_cycle_aborts_youngest(self):
        sim = Simulator()
        locks = LockManager(sim)
        outcome = {}

        def t1():
            yield from locks.acquire(1, "a", X)
            yield sim.timeout(5)
            yield from locks.acquire(1, "b", X)
            outcome[1] = "done"
            locks.release_all(1)

        def t2():
            yield from locks.acquire(2, "b", X)
            yield sim.timeout(5)
            try:
                yield from locks.acquire(2, "a", X)
            except DeadlockAbort as abort:
                outcome[2] = abort
                locks.release_all(2)

        survivor = sim.spawn(t1())
        drive(sim, t2())
        sim.run_until_complete(survivor)
        # Txn 2 (highest id in the cycle) is the victim — and because it
        # closed the cycle, the abort raised synchronously at its own call.
        assert isinstance(outcome[2], DeadlockAbort)
        assert outcome[2].txn_id == 2
        assert sorted(outcome[2].cycle) == [1, 2]
        assert outcome[1] == "done"
        assert locks.deadlocks == 1
        assert locks.idle

    def test_victim_can_be_a_parked_waiter(self):
        """When the cycle-closing requester is older, the parked younger
        transaction gets the abort thrown at its wait site."""
        sim = Simulator()
        locks = LockManager(sim)
        outcome = {}

        def young():
            yield from locks.acquire(9, "b", X)
            yield sim.timeout(1)
            try:
                yield from locks.acquire(9, "a", X)  # parks behind txn 1
            except DeadlockAbort as abort:
                outcome[9] = abort
                locks.release_all(9)

        def old():
            yield from locks.acquire(1, "a", X)
            yield sim.timeout(5)
            yield from locks.acquire(1, "b", X)  # closes the cycle; 9 dies
            outcome[1] = "done"
            locks.release_all(1)

        sim.spawn(young())
        drive(sim, old())
        assert outcome[9].txn_id == 9
        assert outcome[1] == "done"
        assert locks.idle

    def test_three_txn_cycle(self):
        sim = Simulator()
        locks = LockManager(sim)
        aborted = []

        def txn(txn_id, first, second):
            yield from locks.acquire(txn_id, first, X)
            yield sim.timeout(5)
            try:
                yield from locks.acquire(txn_id, second, X)
                yield sim.timeout(1)
            except DeadlockAbort:
                aborted.append(txn_id)
            locks.release_all(txn_id)

        processes = [
            sim.spawn(txn(1, "a", "b")),
            sim.spawn(txn(2, "b", "c")),
            sim.spawn(txn(3, "c", "a")),
        ]
        for process in processes:
            sim.run_until_complete(process)
        assert aborted == [3]  # youngest in the cycle, deterministically
        assert locks.idle

    def test_no_false_deadlock_on_plain_contention(self):
        sim = Simulator()
        locks = LockManager(sim)

        def holder():
            yield from locks.acquire(1, "r", X)
            yield sim.timeout(20)
            locks.release_all(1)

        def waiter():
            yield sim.timeout(1)
            yield from locks.acquire(2, "r", X)
            locks.release_all(2)

        sim.spawn(holder())
        drive(sim, waiter())
        assert locks.deadlocks == 0
        assert locks.idle

    def test_wait_for_edges_snapshot(self):
        sim = Simulator()
        locks = LockManager(sim)
        seen = {}

        def holder():
            yield from locks.acquire(1, "r", X)
            yield sim.timeout(10)
            seen.update(locks.wait_for_edges())
            locks.release_all(1)

        def waiter():
            yield sim.timeout(1)
            yield from locks.acquire(2, "r", S)
            locks.release_all(2)

        sim.spawn(holder())
        drive(sim, waiter())
        assert seen == {2: {1}}
