"""Shared fixture: a small CUSTOM-design database with a Customer table."""

import pytest

from repro.harness import Design, build_database
from repro.workloads import build_customer_table

N_ROWS = 2_000


class TxnRig:
    def __init__(self):
        self.setup = build_database(
            Design.CUSTOM, bp_pages=128, bpext_pages=512, tempdb_pages=64
        )
        self.db = self.setup.database
        self.sim = self.db.sim
        self.table = build_customer_table(self.db, n_rows=N_ROWS)

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))


@pytest.fixture
def txn_rig():
    return TxnRig()
