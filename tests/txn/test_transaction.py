"""Transaction lifecycle: commit, rollback/undo, doom, retry loop."""

import pytest

from repro.engine.wal import LogRecordKind
from repro.reliability import ReliabilityPolicy
from repro.txn import (
    DeadlockAbort,
    LockMode,
    TransactionAborted,
    TransactionDoomed,
    TxnRetriesExhausted,
    TxnState,
)


def bump_balance(row):
    new_row = list(row)
    new_row[5] = row[5] + 100.0
    return tuple(new_row)


def read_row(rig, key):
    def body():
        rows = yield from rig.table.clustered.search(key)
        return rows

    return rig.run(body())


class TestCommit:
    def test_update_commits_and_persists(self, txn_rig):
        manager = txn_rig.db.transactions()
        before = read_row(txn_rig, 7)[0]

        def body(txn):
            after = yield from txn.update(txn_rig.table, 7, bump_balance)
            return after

        after = txn_rig.run(manager.run(body))
        assert after[5] == pytest.approx(before[5] + 100.0)
        assert read_row(txn_rig, 7)[0] == after
        assert manager.commits == 1
        assert manager.locks.idle

    def test_wal_records_carry_txn_id_and_outcome(self, txn_rig):
        manager = txn_rig.db.transactions()

        def body(txn):
            yield from txn.update(txn_rig.table, 3, bump_balance)

        txn_rig.run(manager.run(body))
        records = [r for r in txn_rig.db.wal.records if r.txn_id != 0]
        kinds = [r.kind for r in records]
        assert kinds == [LogRecordKind.BEGIN, LogRecordKind.UPDATE, LogRecordKind.COMMIT]
        assert len({r.txn_id for r in records}) == 1

    def test_read_only_transaction_logs_nothing(self, txn_rig):
        manager = txn_rig.db.transactions()
        wal_before = len(txn_rig.db.wal.records)

        def body(txn):
            rows = yield from txn.read(txn_rig.table, 11)
            return rows

        rows = txn_rig.run(manager.run(body))
        assert rows
        # Let any stray flush drain; no record should have been queued.
        txn_rig.sim.run(until=txn_rig.sim.now + 1e5)
        assert len(txn_rig.db.wal.records) == wal_before
        assert manager.commits == 1

    def test_on_commit_deferred_until_commit_point(self, txn_rig):
        manager = txn_rig.db.transactions()
        sideeffects = []

        def body(txn):
            txn.on_commit(lambda: sideeffects.append("fired"))
            yield from txn.read(txn_rig.table, 1)
            assert sideeffects == []

        txn_rig.run(manager.run(body))
        assert sideeffects == ["fired"]


class TestRollback:
    def test_update_rolled_back_restores_before_image(self, txn_rig):
        manager = txn_rig.db.transactions()
        before = read_row(txn_rig, 5)[0]

        def body():
            txn = manager.begin()
            yield from txn.update(txn_rig.table, 5, bump_balance)
            yield from txn.rollback()
            return txn

        txn = txn_rig.run(body())
        assert txn.state is TxnState.ABORTED
        assert read_row(txn_rig, 5)[0] == before
        assert manager.locks.idle

    def test_insert_rolled_back_disappears(self, txn_rig):
        manager = txn_rig.db.transactions()
        new_key = 10_000
        row_count = txn_rig.table.stats.row_count
        new_row = (new_key, "X", "A", 0, "p", 1.0, "B", "c")

        def body():
            txn = manager.begin()
            yield from txn.insert(txn_rig.table, new_row)
            yield from txn.rollback()

        txn_rig.run(body())
        assert read_row(txn_rig, new_key) == []
        assert txn_rig.table.stats.row_count == row_count

    def test_delete_rolled_back_reappears(self, txn_rig):
        manager = txn_rig.db.transactions()
        victim = read_row(txn_rig, 9)[0]

        def body():
            txn = manager.begin()
            yield from txn.delete(txn_rig.table, 9)
            missing = yield from txn_rig.table.clustered.search(9)
            yield from txn.rollback()
            return missing

        missing = txn_rig.run(body())
        assert missing == []
        assert read_row(txn_rig, 9)[0] == victim

    def test_rollback_logs_abort_record(self, txn_rig):
        manager = txn_rig.db.transactions()

        def body():
            txn = manager.begin()
            yield from txn.update(txn_rig.table, 2, bump_balance)
            yield from txn.rollback()
            return txn.txn_id

        txn_id = txn_rig.run(body())
        txn_rig.sim.run(until=txn_rig.sim.now + 1e5)
        assert txn_id in txn_rig.db.wal.aborted_txn_ids()
        assert txn_id not in txn_rig.db.wal.committed_txn_ids()

    def test_version_stamps_restored_on_rollback(self, txn_rig):
        manager = txn_rig.db.transactions()
        item = ("row", txn_rig.table.name, 4)

        def committed(txn):
            yield from txn.update(txn_rig.table, 4, bump_balance)

        txn_rig.run(manager.run(committed))
        stamp = manager._versions[item]

        def aborted():
            txn = manager.begin()
            yield from txn.update(txn_rig.table, 4, bump_balance)
            assert manager._versions[item] == txn.txn_id
            yield from txn.rollback()

        txn_rig.run(aborted())
        assert manager._versions[item] == stamp


class TestDoom:
    def test_manager_subscribes_to_extension_loss(self, txn_rig):
        manager = txn_rig.db.transactions()
        extension = txn_rig.db.pool.extension
        levels = getattr(extension, "levels", None) or [extension]
        assert any(
            manager._on_media_loss in level.loss_listeners for level in levels
        )

    def test_media_loss_dooms_active_transactions_only(self, txn_rig):
        manager = txn_rig.db.transactions()

        def body():
            txn = manager.begin()
            yield from txn.update(txn_rig.table, 8, bump_balance)
            manager._on_media_loss("mem0", [("page", 1), ("page", 2)])
            with pytest.raises(TransactionDoomed):
                yield from txn.read(txn_rig.table, 9)
            yield from txn.rollback()

        txn_rig.run(body())
        assert manager.dooms == 1
        assert manager.active_count == 0
        assert manager.locks.idle

    def test_empty_loss_dooms_nothing(self, txn_rig):
        manager = txn_rig.db.transactions()

        def body():
            txn = manager.begin()
            yield from txn.read(txn_rig.table, 1)
            manager._on_media_loss("mem0", [])
            yield from txn.read(txn_rig.table, 2)  # must not raise
            yield from txn.commit()

        txn_rig.run(body())
        assert manager.dooms == 0
        assert manager.commits == 1

    def test_doomed_transaction_retried_to_success(self, txn_rig):
        manager = txn_rig.db.transactions()
        attempts = []
        before = read_row(txn_rig, 6)[0]

        def body(txn):
            attempts.append(txn.txn_id)
            yield from txn.update(txn_rig.table, 6, bump_balance)
            if len(attempts) == 1:
                manager._on_media_loss("mem0", [("page", 1)])
                yield from txn.read(txn_rig.table, 7)  # raises TransactionDoomed

        txn_rig.run(manager.run(body))
        assert len(attempts) == 2
        assert attempts[0] != attempts[1]  # fresh id per attempt
        assert manager.doom_aborts == 1
        assert manager.retries == 1
        assert manager.commits == 1
        # Exactly one bump survived: the aborted attempt left no trace.
        assert read_row(txn_rig, 6)[0][5] == pytest.approx(before[5] + 100.0)


class TestRetryLoop:
    def test_retries_exhausted_raises(self, txn_rig):
        policy = ReliabilityPolicy(retry_attempts=2, retry_base_us=10.0)
        manager = txn_rig.db.transactions(policy=policy)

        def body(txn):
            yield from txn.read(txn_rig.table, 1)
            raise DeadlockAbort(txn.txn_id, (txn.txn_id,))

        with pytest.raises(TxnRetriesExhausted):
            txn_rig.run(manager.run(body))
        assert manager.exhausted == 1
        assert manager.commits == 0
        assert manager.locks.idle

    def test_non_abort_exception_rolls_back_and_propagates(self, txn_rig):
        manager = txn_rig.db.transactions()
        before = read_row(txn_rig, 12)[0]

        def body(txn):
            yield from txn.update(txn_rig.table, 12, bump_balance)
            raise RuntimeError("application bug")

        with pytest.raises(RuntimeError, match="application bug"):
            txn_rig.run(manager.run(body))
        assert read_row(txn_rig, 12)[0] == before
        assert manager.retries == 0
        assert manager.locks.idle

    def test_deadlock_between_crossing_updates_resolves(self, txn_rig):
        manager = txn_rig.db.transactions()
        sim = txn_rig.sim

        def crossing(first, second):
            def body(txn):
                yield from txn.update(txn_rig.table, first, bump_balance)
                yield sim.timeout(50)
                yield from txn.update(txn_rig.table, second, bump_balance)

            return manager.run(body)

        processes = [
            sim.spawn(crossing(20, 21)),
            sim.spawn(crossing(21, 20)),
        ]
        for process in processes:
            sim.run_until_complete(process)
        assert manager.commits == 2
        assert manager.deadlock_aborts >= 1
        assert manager.retries >= 1
        assert manager.locks.idle
        # Both updates landed exactly twice (once per committed txn).
        for key in (20, 21):
            row = read_row(txn_rig, key)[0]
            assert row[5] == pytest.approx(float(1000 + key % 9000) + 200.0)

    def test_explicit_lock_respected_across_transactions(self, txn_rig):
        manager = txn_rig.db.transactions()
        sim = txn_rig.sim
        order = []

        def holder(txn):
            yield from txn.lock(("district", 1), LockMode.EXCLUSIVE)
            order.append("holder")
            yield sim.timeout(25)

        def waiter(txn):
            yield sim.timeout(1)
            yield from txn.lock(("district", 1), LockMode.EXCLUSIVE)
            order.append("waiter")

        processes = [
            sim.spawn(manager.run(holder)),
            sim.spawn(manager.run(waiter)),
        ]
        for process in processes:
            sim.run_until_complete(process)
        assert order == ["holder", "waiter"]


class TestScan:
    def test_scan_locks_returned_rows(self, txn_rig):
        manager = txn_rig.db.transactions()

        def body():
            txn = manager.begin()
            rows = yield from txn.scan(txn_rig.table, 100, 105)
            held = manager.locks.held_by(txn.txn_id)
            yield from txn.commit()
            return rows, held

        rows, held = txn_rig.run(body())
        assert len(rows) == 5
        for row in rows:
            assert held[("row", txn_rig.table.name, row[0])] is LockMode.SHARED

    def test_scan_sees_stable_result_under_concurrent_insert(self, txn_rig):
        manager = txn_rig.db.transactions()
        sim = txn_rig.sim
        new_row = (102_000, "New", "A", 0, "p", 1.0, "B", "c")

        def inserter(txn):
            yield from txn.insert(txn_rig.table, new_row)

        def scanner(txn):
            rows = yield from txn.scan(txn_rig.table, 101_990, 102_010)
            return rows

        txn_rig.run(manager.run(inserter))
        rows = txn_rig.run(manager.run(scanner))
        assert [row[0] for row in rows] == [102_000]
