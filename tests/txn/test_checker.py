"""Serializability checker: conflict graph, dirty reads, final state."""

from repro.txn import TxnHistory, check_serializable, committed_row_images


class TestConflictGraph:
    def test_empty_history_is_serializable(self):
        result = check_serializable(TxnHistory())
        assert result.ok
        assert result.txns == 0

    def test_serial_history_passes(self):
        history = TxnHistory()
        history.install(1, reads=[("x", 0)], writes=[("x", "a")])
        history.install(2, reads=[("x", 1)], writes=[("x", "b")])
        result = check_serializable(history)
        assert result.ok
        # ww, wr and rw all point 1->2; per-pair edges are a set.
        assert result.edges == 1

    def test_rw_anti_dependency_cycle_detected(self):
        # T1 reads x@0 then T2 overwrites x; T2 reads y@0 then T1
        # overwrites y: rw edges T1->T2 and T2->T1 — not serializable
        # (the classic write-skew shape).
        history = TxnHistory()
        history.install(1, reads=[("x", 0)], writes=[("y", "w1")])
        history.install(2, reads=[("y", 0)], writes=[("x", "w2")])
        result = check_serializable(history)
        assert not result.ok
        assert any("cycle" in violation for violation in result.violations)

    def test_dirty_read_detected(self):
        history = TxnHistory()
        history.install(2, reads=[("x", 5)], writes=[])  # txn 5 never committed
        result = check_serializable(history)
        assert not result.ok
        assert any("dirty read" in violation for violation in result.violations)

    def test_read_your_own_write_is_not_an_edge(self):
        history = TxnHistory()
        history.install(1, reads=[("x", 1)], writes=[("x", "mine")])
        result = check_serializable(history)
        assert result.ok
        assert result.edges == 0


class TestFinalState:
    def test_matching_final_state_passes(self):
        history = TxnHistory()
        history.install(1, reads=[], writes=[("x", "a")])
        history.install(2, reads=[], writes=[("x", "b")])
        result = check_serializable(history, final_rows={"x": "b"})
        assert result.ok

    def test_lost_committed_image_flagged(self):
        history = TxnHistory()
        history.install(1, reads=[], writes=[("x", "a")])
        result = check_serializable(history, final_rows={"x": "stale"})
        assert not result.ok
        assert any("lost" in violation for violation in result.violations)

    def test_committed_delete_must_be_absent(self):
        history = TxnHistory()
        history.install(1, reads=[], writes=[("x", None)])  # delete
        result = check_serializable(history, final_rows={"x": "ghost"})
        assert not result.ok
        result_ok = check_serializable(history, final_rows={})
        assert result_ok.ok


class TestRowImages:
    def test_images_reflect_committed_updates(self, txn_rig):
        manager = txn_rig.db.transactions(record_history=True)

        def bump(row):
            new_row = list(row)
            new_row[5] = row[5] + 1.0
            return tuple(new_row)

        def body(txn):
            yield from txn.update(txn_rig.table, 42, bump)

        txn_rig.run(manager.run(body))
        images = committed_row_images(txn_rig.db, [txn_rig.table])
        item = ("row", txn_rig.table.name, 42)
        assert images[item][5] == float(1000 + 42 % 9000) + 1.0
        # The history's last after-image matches the on-storage row.
        result = check_serializable(manager.history, final_rows=images)
        assert result.ok

    def test_images_include_dirty_pool_frames(self, txn_rig):
        """Rows changed in the buffer pool but not yet flushed to the
        store must still appear — the overlay prefers resident frames."""
        manager = txn_rig.db.transactions(record_history=True)

        def rewrite(row):
            new_row = list(row)
            new_row[1] = "Rewritten"
            return tuple(new_row)

        def body(txn):
            yield from txn.update(txn_rig.table, 0, rewrite)

        txn_rig.run(manager.run(body))
        images = committed_row_images(txn_rig.db, [txn_rig.table])
        assert images[("row", txn_rig.table.name, 0)][1] == "Rewritten"
        # The store's own (stale) snapshot proves the overlay mattered.
        store_row = txn_rig.table.clustered.store.peek(
            txn_rig.table.clustered.root_page_no
        )
        assert store_row is not None
