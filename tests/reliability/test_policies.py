"""Deadline and seeded-retry semantics of the reliability layer."""

import numpy as np
import pytest

from repro.reliability import (
    DeadlineExceeded,
    ReliabilityLayer,
    ReliabilityPolicy,
    RetrySchedule,
)
from repro.sim import Simulator
from repro.sim.kernel import Resource


def make_layer(policy=None, seed=7):
    sim = Simulator()
    layer = ReliabilityLayer(sim, np.random.default_rng(seed), policy)
    return sim, layer


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        ReliabilityPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retry_attempts": -1},
            {"breaker_failure_threshold": 0},
            {"breaker_probe_quota": 0},
            {"retry_jitter": 1.5},
            {"hedge_min_delay_us": 500.0, "hedge_max_delay_us": 100.0},
            {"read_deadline_us": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReliabilityPolicy(**kwargs)


class TestDeadlines:
    def test_fast_call_returns_value(self):
        sim, layer = make_layer()

        def op():
            yield sim.timeout(10.0)
            return "done"

        result = complete(sim, layer.with_deadline(op(), 50.0, family="rpc"))
        assert result == "done"
        assert layer.deadline_hits["rpc"] == 0

    def test_slow_call_raises_and_counts(self):
        sim, layer = make_layer()

        def op():
            yield sim.timeout(100.0)
            return "done"

        started = sim.now
        with pytest.raises(DeadlineExceeded):
            complete(sim, layer.with_deadline(op(), 50.0, family="read"))
        assert sim.now - started == pytest.approx(50.0)
        assert layer.deadline_hits["read"] == 1

    def test_none_deadline_disables_budget(self):
        sim, layer = make_layer()

        def op():
            yield sim.timeout(1e6)
            return 42

        assert complete(sim, layer.with_deadline(op(), None)) == 42

    def test_inner_exception_reraised_to_caller(self):
        sim, layer = make_layer()

        def op():
            yield sim.timeout(1.0)
            raise KeyError("inner")

        with pytest.raises(KeyError):
            complete(sim, layer.with_deadline(op(), 50.0))

    def test_interrupted_call_unwinds_resources(self):
        # The whole point of interrupting on expiry: the abandoned call
        # must release what it holds, not leak it.
        sim, layer = make_layer()
        gate = Resource(sim, capacity=1, name="gate")

        def op():
            request = gate.request()
            try:
                yield request
                yield sim.timeout(500.0)
            except BaseException:
                gate.cancel(request)
                raise
            gate.release()

        with pytest.raises(DeadlineExceeded):
            complete(sim, layer.with_deadline(op(), 50.0))
        sim.run(until=sim.now + 1.0)  # let the interrupt be delivered
        assert gate.in_use == 0


class TestRetries:
    def test_succeeds_after_transient_failures(self):
        sim, layer = make_layer(ReliabilityPolicy(retry_attempts=3))
        calls = []

        def factory():
            def op():
                calls.append(sim.now)
                yield sim.timeout(5.0)
                if len(calls) < 3:
                    raise OSError("flaky")
                return "ok"

            return op()

        result = complete(
            sim, layer.call_idempotent(factory, retry_on=(OSError,), family="rpc")
        )
        assert result == "ok"
        assert len(calls) == 3
        assert layer.retries["rpc"] == 2
        # Exponential backoff separates the attempts.
        assert calls[1] - calls[0] >= 5.0 + layer.policy.retry_base_us * 0.5

    def test_budget_exhaustion_reraises_last_error(self):
        sim, layer = make_layer(ReliabilityPolicy(retry_attempts=2))
        calls = []

        def factory():
            def op():
                calls.append(sim.now)
                yield sim.timeout(1.0)
                raise OSError("always")

            return op()

        with pytest.raises(OSError):
            complete(sim, layer.call_idempotent(factory, retry_on=(OSError,)))
        assert len(calls) == 3  # first try + 2 retries

    def test_unlisted_exception_propagates_immediately(self):
        sim, layer = make_layer()
        calls = []

        def factory():
            def op():
                calls.append(sim.now)
                yield sim.timeout(1.0)
                raise ValueError("not retryable")

            return op()

        with pytest.raises(ValueError):
            complete(sim, layer.call_idempotent(factory, retry_on=(OSError,)))
        assert len(calls) == 1

    def test_deadline_expiry_is_retryable(self):
        sim, layer = make_layer(ReliabilityPolicy(retry_attempts=1))
        calls = []

        def factory():
            def op():
                calls.append(sim.now)
                # First attempt blows the deadline; the second is quick.
                yield sim.timeout(100.0 if len(calls) == 1 else 1.0)
                return "ok"

            return op()

        result = complete(
            sim, layer.call_idempotent(factory, retry_on=(), deadline_us=50.0)
        )
        assert result == "ok"
        assert len(calls) == 2
        assert layer.deadline_hits["rpc"] == 1


class TestBackoffDeterminism:
    def test_same_seed_same_backoffs(self):
        policy = ReliabilityPolicy()
        a = RetrySchedule(policy, np.random.default_rng(11))
        b = RetrySchedule(policy, np.random.default_rng(11))
        assert [a.backoff_us(n) for n in range(1, 6)] == [
            b.backoff_us(n) for n in range(1, 6)
        ]

    def test_backoff_grows_and_caps(self):
        policy = ReliabilityPolicy(retry_jitter=0.0)
        schedule = RetrySchedule(policy, np.random.default_rng(0))
        values = [schedule.backoff_us(n) for n in range(1, 6)]
        assert values[0] == policy.retry_base_us
        assert values[1] == policy.retry_base_us * policy.retry_multiplier
        assert max(values) == policy.retry_max_us

    def test_jitter_stays_bounded(self):
        policy = ReliabilityPolicy(retry_jitter=0.5)
        schedule = RetrySchedule(policy, np.random.default_rng(3))
        for attempt in range(1, 4):
            base = min(
                policy.retry_max_us,
                policy.retry_base_us * policy.retry_multiplier ** (attempt - 1),
            )
            for _ in range(100):
                value = schedule.backoff_us(attempt)
                assert base * 0.5 <= value <= base * 1.5

    def test_snapshot_counts_draws(self):
        sim, layer = make_layer()
        layer.retry.backoff_us(1)
        layer.retry.backoff_us(2)
        assert layer.snapshot()["backoff_draws"] == 2
