"""Hedge-delay derivation and per-provider admission control."""

import numpy as np
import pytest

from repro.reliability import (
    AdmissionController,
    HedgeStats,
    ReliabilityLayer,
    ReliabilityPolicy,
    hedge_delay_us,
)
from repro.sim import Simulator
from repro.sim.stats import LatencyRecorder

POLICY = ReliabilityPolicy(
    hedge_min_delay_us=100.0,
    hedge_max_delay_us=2_000.0,
    hedge_min_samples=8,
    per_provider_inflight=2,
)


class TestHedgeDelay:
    def test_cold_start_uses_conservative_maximum(self):
        recorder = LatencyRecorder("reads")
        for _ in range(POLICY.hedge_min_samples - 1):
            recorder.record(10.0)
        assert hedge_delay_us(POLICY, recorder) == POLICY.hedge_max_delay_us

    def test_warm_delay_tracks_the_tail(self):
        recorder = LatencyRecorder("reads")
        for value in [100.0] * 98 + [900.0] * 2:
            recorder.record(value)
        delay = hedge_delay_us(POLICY, recorder)
        assert delay == pytest.approx(900.0)

    def test_delay_clamps_low_and_high(self):
        fast = LatencyRecorder("fast")
        slow = LatencyRecorder("slow")
        for _ in range(POLICY.hedge_min_samples):
            fast.record(1.0)
            slow.record(1e6)
        assert hedge_delay_us(POLICY, fast) == POLICY.hedge_min_delay_us
        assert hedge_delay_us(POLICY, slow) == POLICY.hedge_max_delay_us

    def test_layer_exposes_the_same_derivation(self):
        sim = Simulator()
        layer = ReliabilityLayer(sim, np.random.default_rng(1), POLICY)
        recorder = LatencyRecorder("reads")
        assert layer.hedge_delay_us(recorder) == POLICY.hedge_max_delay_us


class TestHedgeStats:
    def test_backup_win_notifies_listeners(self):
        stats = HedgeStats()
        wins = []
        stats.win_listeners.append(lambda: wins.append(1))
        stats.record_backup_win()
        stats.record_backup_win(rescued=True)
        assert len(wins) == 2
        assert stats.snapshot() == {
            "issued": 0,
            "primary_wins": 0,
            "backup_wins": 2,
            "rescues": 1,
        }


class TestAdmission:
    def make(self, policy=POLICY):
        sim = Simulator()
        return sim, AdmissionController(sim, policy)

    def test_admits_up_to_capacity_then_queues(self):
        sim, admission = self.make()
        tickets = []

        def worker():
            ticket = yield from admission.enter("mem0")
            tickets.append(ticket)

        for _ in range(3):
            sim.spawn(worker())
        sim.run(until=1.0)
        assert len(tickets) == POLICY.per_provider_inflight
        assert admission.inflight("mem0") == POLICY.per_provider_inflight
        assert admission.queue_length("mem0") == 1
        assert admission.queued == 1

        tickets[0].release()
        sim.run(until=2.0)
        assert len(tickets) == 3
        assert admission.queue_length("mem0") == 0

    def test_gates_are_per_provider(self):
        sim, admission = self.make()
        tickets = []

        def worker(provider):
            ticket = yield from admission.enter(provider)
            tickets.append(ticket)

        for _ in range(POLICY.per_provider_inflight):
            sim.spawn(worker("mem0"))
        sim.spawn(worker("mem1"))
        sim.run(until=1.0)
        # mem0 is full but mem1 admits immediately: no head-of-line blocking.
        assert len(tickets) == POLICY.per_provider_inflight + 1
        assert admission.inflight("mem1") == 1

    def test_interrupted_waiter_leaves_no_ghost(self):
        sim, admission = self.make()
        holders = []

        def holder():
            ticket = yield from admission.enter("mem0")
            holders.append(ticket)

        for _ in range(POLICY.per_provider_inflight):
            sim.spawn(holder())
        sim.run(until=1.0)

        def waiter():
            yield from admission.enter("mem0")

        victim = sim.spawn(waiter())
        sim.run(until=2.0)
        assert admission.queue_length("mem0") == 1
        victim.interrupt(cause="deadline")
        sim.run(until=3.0)
        assert admission.queue_length("mem0") == 0
        # Freed capacity still flows to live waiters.
        for ticket in holders:
            ticket.release()
        done = []

        def late():
            ticket = yield from admission.enter("mem0")
            done.append(ticket)

        sim.spawn(late())
        sim.run(until=4.0)
        assert len(done) == 1

    def test_ticket_release_is_idempotent(self):
        sim, admission = self.make()
        tickets = []

        def worker():
            ticket = yield from admission.enter("mem0")
            tickets.append(ticket)

        sim.spawn(worker())
        sim.run(until=1.0)
        (ticket,) = tickets
        ticket.release()
        ticket.release()
        assert admission.inflight("mem0") == 0

    def test_zero_inflight_disables_the_gate(self):
        sim, admission = self.make(ReliabilityPolicy(per_provider_inflight=0))
        assert not admission.enabled
        results = []

        def worker():
            ticket = yield from admission.enter("mem0")
            results.append(ticket)

        sim.spawn(worker())
        sim.run(until=1.0)
        assert results == [None]
        assert admission.inflight("mem0") == 0
