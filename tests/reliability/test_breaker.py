"""Circuit-breaker state machine, clocked on virtual time."""

from repro.reliability import BreakerState, ReliabilityPolicy
from repro.reliability.breaker import BreakerRegistry
from repro.sim import Simulator

POLICY = ReliabilityPolicy(
    breaker_failure_threshold=3, breaker_open_us=1_000.0, breaker_probe_quota=2
)


def make_registry(policy=POLICY):
    sim = Simulator()
    return sim, BreakerRegistry(sim, policy)


def trip(registry, provider="mem0", times=POLICY.breaker_failure_threshold):
    for _ in range(times):
        registry.record_failure(provider)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        _sim, registry = make_registry()
        assert registry.state("mem0") is BreakerState.CLOSED
        assert registry.allow("mem0")
        assert registry.routable("mem0")

    def test_consecutive_failures_trip_open(self):
        _sim, registry = make_registry()
        trip(registry, times=POLICY.breaker_failure_threshold - 1)
        assert registry.state("mem0") is BreakerState.CLOSED
        registry.record_failure("mem0")
        assert registry.state("mem0") is BreakerState.OPEN
        assert not registry.allow("mem0")
        assert not registry.routable("mem0")
        assert registry.quarantined() == ["mem0"]

    def test_success_resets_the_failure_streak(self):
        _sim, registry = make_registry()
        trip(registry, times=POLICY.breaker_failure_threshold - 1)
        registry.record_success("mem0")
        trip(registry, times=POLICY.breaker_failure_threshold - 1)
        assert registry.state("mem0") is BreakerState.CLOSED

    def test_quarantine_expiry_admits_probes(self):
        sim, registry = make_registry()
        trip(registry)
        sim.now = POLICY.breaker_open_us + 1.0
        assert registry.routable("mem0")  # non-consuming check first
        assert registry.state("mem0") is BreakerState.OPEN
        assert registry.allow("mem0")  # consumes a probe slot
        assert registry.state("mem0") is BreakerState.HALF_OPEN

    def test_probe_quota_bounds_trial_traffic(self):
        sim, registry = make_registry()
        trip(registry)
        sim.now = POLICY.breaker_open_us + 1.0
        for _ in range(POLICY.breaker_probe_quota):
            assert registry.allow("mem0")
        assert not registry.allow("mem0")
        assert registry.breaker("mem0").rejections >= 1

    def test_probe_success_closes(self):
        sim, registry = make_registry()
        trip(registry)
        sim.now = POLICY.breaker_open_us + 1.0
        assert registry.allow("mem0")
        registry.record_success("mem0")
        assert registry.state("mem0") is BreakerState.CLOSED
        assert registry.quarantined() == []

    def test_probe_failure_reopens_and_restarts_clock(self):
        sim, registry = make_registry()
        trip(registry)
        sim.now = POLICY.breaker_open_us + 1.0
        assert registry.allow("mem0")
        registry.record_failure("mem0")
        assert registry.state("mem0") is BreakerState.OPEN
        # Fresh quarantine: not routable until another full open period.
        sim.now += POLICY.breaker_open_us / 2
        assert not registry.routable("mem0")
        sim.now += POLICY.breaker_open_us
        assert registry.routable("mem0")


class TestRegistry:
    def test_breakers_are_per_provider(self):
        _sim, registry = make_registry()
        trip(registry, provider="mem0")
        assert registry.state("mem0") is BreakerState.OPEN
        assert registry.state("mem1") is BreakerState.CLOSED
        assert registry.allow("mem1")

    def test_transition_log_is_ordered_and_complete(self):
        sim, registry = make_registry()
        trip(registry)
        sim.now = POLICY.breaker_open_us + 5.0
        registry.allow("mem0")
        registry.record_success("mem0")
        log = registry.snapshot()
        assert [(entry[1], entry[2], entry[3]) for entry in log] == [
            ("mem0", "closed", "open"),
            ("mem0", "open", "half-open"),
            ("mem0", "half-open", "closed"),
        ]
        assert log[0][0] <= log[1][0] <= log[2][0]

    def test_listeners_see_every_transition(self):
        sim, registry = make_registry()
        seen = []
        registry.transition_listeners.append(
            lambda provider, old, new, at: seen.append((provider, old, new, at))
        )
        trip(registry)
        assert seen == [("mem0", BreakerState.CLOSED, BreakerState.OPEN, sim.now)]
