"""Batch I/O, priming API and provider behavior of the page stores.

The batch paths (TempDB spills, priming sweeps) and the public priming
surface (``install``/``iter_pages``/``peek``/``slot_provider``) are
exercised per medium: a local device, remote memory over RDMA, and a
RamDrive behind SMB.
"""

import pytest

from repro.engine.bufferpool import BufferPoolExtension
from repro.engine.errors import PageNotFound
from repro.engine.files import DevicePageFile, PageStore, RemotePageFile, SmbPageFile
from repro.engine.page import PAGE_SIZE, Page
from repro.reliability import ReliabilityLayer, ReliabilityPolicy
from repro.storage import MB


def make_pages(file_id, start, count):
    return [Page.build(file_id, start + n, [(start + n, "row")]) for n in range(count)]


def make_smb_store(rig, capacity=64):
    from repro.net import SmbDirectClient, SmbFileServer
    from repro.storage import RamDrive

    drive = rig.mem.attach_device("ramdrive", RamDrive(rig.sim))
    file_server = SmbFileServer(rig.mem, drive)
    return SmbPageFile(33, rig.db, SmbDirectClient(rig.db, file_server), capacity_pages=capacity)


class TestDeviceBatches:
    def test_write_batch_is_one_device_io(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        writes_before = rig.ssd.writes
        rig.run(store.write_batch(0, make_pages(1, 0, 8)))
        assert rig.ssd.writes == writes_before + 1
        assert store.page_writes == 8
        back = rig.run(store.read_batch(0, 8))
        assert [p.rows for p in back] == [[(n, "row")] for n in range(8)]

    def test_batch_across_chunk_boundary(self, rig):
        # CHUNK_PAGES = 256: the extent straddles two scattered chunks
        # but stays one logical write, and every page reads back.
        store = DevicePageFile(1, rig.db, rig.ssd)
        start = DevicePageFile.CHUNK_PAGES - 4
        rig.run(store.write_batch(start, make_pages(1, start, 8)))
        back = rig.run(store.read_batch(start, 8))
        assert len(back) == 8
        single = rig.run(store.read_page(start + 6))  # past the boundary
        assert single.rows == [(start + 6, "row")]

    def test_read_batch_skips_missing_slots(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        rig.run(store.write_page(Page.build(1, 0, [(0,)])))
        rig.run(store.write_page(Page.build(1, 2, [(2,)])))
        back = rig.run(store.read_batch(0, 3))
        assert [p.page_no for p in back] == [0, 2]

    def test_batch_capacity_enforced(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd, capacity_pages=8)
        with pytest.raises(PageNotFound):
            rig.run(store.write_batch(4, make_pages(1, 4, 8)))
        with pytest.raises(PageNotFound):
            rig.run(store.read_batch(4, 8))

    def test_discard_is_untimed_invalidation(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        rig.run(store.write_page(Page.build(1, 3, [(3,)])))
        before = rig.sim.now
        store.discard(3)
        assert rig.sim.now == before
        assert not store.contains(3)
        with pytest.raises(PageNotFound):
            rig.run(store.read_page(3))


class TestRemoteBatches:
    def make_store(self, rig, size=64 * MB):
        return RemotePageFile(9, rig.make_remote_file("ext", size))

    def test_batch_roundtrip_one_extent(self, rig):
        store = self.make_store(rig)
        rig.run(store.write_batch(0, make_pages(9, 0, 8)))
        back = rig.run(store.read_batch(0, 8))
        assert [p.rows for p in back] == [[(n, "row")] for n in range(8)]

    def test_read_window_ending_inside_batch(self, rig):
        store = self.make_store(rig)
        rig.run(store.write_batch(0, make_pages(9, 0, 8)))
        back = rig.run(store.read_batch(0, 5))
        assert [p.page_no for p in back] == [0, 1, 2, 3, 4]

    def test_read_spans_batch_then_single_pages(self, rig):
        store = self.make_store(rig)
        rig.run(store.write_batch(0, make_pages(9, 0, 4)))
        for page in make_pages(9, 4, 2):
            rig.run(store.write_page(page))
        back = rig.run(store.read_batch(0, 6))
        assert [p.page_no for p in back] == [0, 1, 2, 3, 4, 5]

    def test_batch_straddling_memory_region_falls_back(self, rig):
        # The rig's proxy offers 16 MB regions: an extent across the
        # boundary cannot be one RDMA write, so the store degrades to
        # page-by-page — observable because *inner* slots then serve
        # single-page reads (a whole extent would not).
        store = self.make_store(rig)
        boundary = 16 * MB // PAGE_SIZE
        start = boundary - 2
        rig.run(store.write_batch(start, make_pages(9, start, 4)))
        for n in range(4):
            page = rig.run(store.read_page(start + n))
            assert page.page_no == start + n

    def test_discard_stops_serving_slot(self, rig):
        store = self.make_store(rig)
        rig.run(store.write_batch(0, make_pages(9, 0, 4)))
        store.discard(0)
        assert not store.contains(0)
        with pytest.raises(PageNotFound):
            rig.run(store.read_page(0))
        # Rewriting the slot re-establishes it as a single page.
        rig.run(store.write_page(Page.build(9, 0, [(0, "new")])))
        assert rig.run(store.read_page(0)).rows == [(0, "new")]


class TestSmbBatches:
    def test_read_batch_skips_missing_slots(self, rig):
        store = make_smb_store(rig)
        rig.run(store.write_page(Page.build(33, 1, [(1,)])))
        rig.run(store.write_page(Page.build(33, 3, [(3,)])))
        back = rig.run(store.read_batch(0, 4))
        assert [p.page_no for p in back] == [1, 3]

    def test_discard_and_capacity(self, rig):
        store = make_smb_store(rig, capacity=8)
        rig.run(store.write_page(Page.build(33, 2, [(2,)])))
        store.discard(2)
        assert not store.contains(2)
        with pytest.raises(PageNotFound):
            rig.run(store.write_batch(6, make_pages(33, 6, 4)))


class TestPrimingApi:
    """install/iter_pages/peek: the public untimed surface (no ``_pages``)."""

    def test_install_iter_peek_on_local_media(self, rig):
        for store in (
            DevicePageFile(1, rig.db, rig.ssd),
            make_smb_store(rig),
        ):
            before = rig.sim.now
            for page in make_pages(store.file_id, 0, 4):
                store.install(page)
            assert rig.sim.now == before
            assert sorted(slot for slot, _ in store.iter_pages()) == [0, 1, 2, 3]
            assert store.peek(2).page_no == 2
            with pytest.raises(PageNotFound):
                store.peek(9)

    def test_remote_install_is_untimed_and_readable(self, rig):
        store = RemotePageFile(9, rig.make_remote_file("ext", 16 * MB))
        before = rig.sim.now
        store.install(Page.build(9, 5, [(5, "primed")]))
        assert rig.sim.now == before
        assert store.contains(5)
        assert rig.run(store.read_page(5)).rows == [(5, "primed")]
        # Remote memory cannot enumerate its contents cheaply.
        assert list(store.iter_pages()) == []

    def test_slot_provider_names_the_memory_server(self, rig):
        store = RemotePageFile(9, rig.make_remote_file("ext", 16 * MB))
        assert store.slot_provider(0) == "mem0"
        assert DevicePageFile(1, rig.db, rig.ssd).slot_provider(0) is None
        assert make_smb_store(rig).slot_provider(0) is None

    def test_base_class_defaults(self, rig):
        class MinimalStore(PageStore):
            def read_page(self, slot, background=False):
                yield from ()

            def write_page(self, page, slot=None, background=False, on_abort=None):
                yield from ()

            def contains(self, slot):
                return False

            def discard(self, slot):
                pass

        store = MinimalStore(7)
        assert list(store.iter_pages()) == []
        assert store.slot_provider(0) is None
        with pytest.raises(NotImplementedError):
            store.install(Page.build(7, 0, []))
        with pytest.raises(PageNotFound):
            store.peek(0)


class TestProviderQuarantine:
    """Breaker routing keys on ``slot_provider``: remote slots are
    skipped while their provider is quarantined; provider-less media
    never are; fault sweeps invalidate conservatively."""

    POLICY = ReliabilityPolicy(breaker_failure_threshold=3, breaker_open_us=10_000.0)

    def make_ext(self, rig, store):
        ext = BufferPoolExtension(store)
        ext.reliability = ReliabilityLayer(
            rig.sim, rig.cluster.rng.stream("rel"), self.POLICY
        )
        return ext

    def park(self, rig, ext, file_id, count=3):
        for page in make_pages(file_id, 0, count):
            rig.run(ext.put(page))

    def trip(self, ext, provider="mem0"):
        for _ in range(self.POLICY.breaker_failure_threshold):
            ext.reliability.breakers.record_failure(provider)

    def test_quarantined_provider_is_skipped_then_recovers(self, rig):
        store = RemotePageFile(9, rig.make_remote_file("ext", 16 * MB))
        ext = self.make_ext(rig, store)
        self.park(rig, ext, 9)
        self.trip(ext)
        with pytest.raises(PageNotFound):
            rig.run(ext.get((9, 0)))
        assert ext.quarantine_skips == 1
        assert ext.contains((9, 0))  # mapping kept: the image is intact
        # The parked image survives the quarantine window.
        rig.sim.run(until=rig.sim.now + self.POLICY.breaker_open_us + 1)
        assert rig.run(ext.get((9, 0))).page_no == 0

    def test_local_store_ignores_quarantine(self, rig):
        store = DevicePageFile(50, rig.db, rig.ssd, capacity_pages=16)
        ext = self.make_ext(rig, store)
        self.park(rig, ext, 50)
        self.trip(ext)  # some remote provider elsewhere is quarantined
        assert rig.run(ext.get((50, 0))).page_no == 0
        assert ext.quarantine_skips == 0

    def test_fault_sweep_matches_provider_on_remote(self, rig):
        store = RemotePageFile(9, rig.make_remote_file("ext", 16 * MB))
        ext = self.make_ext(rig, store)
        self.park(rig, ext, 9)
        assert ext.on_fault(provider="somewhere-else") == []
        lost = ext.on_fault(provider="mem0")
        assert len(lost) == 3
        assert ext.pages_lost_to_faults == 3

    def test_fault_sweep_is_conservative_without_providers(self, rig):
        # A store that cannot name providers invalidates everything on
        # a provider-targeted sweep: correctness over retention.
        store = DevicePageFile(50, rig.db, rig.ssd, capacity_pages=16)
        ext = self.make_ext(rig, store)
        self.park(rig, ext, 50)
        lost = ext.on_fault(provider="mem0")
        assert len(lost) == 3
