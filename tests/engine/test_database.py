"""Tests for the Database facade: DDL, DML, execution, grants wiring."""

import pytest

from repro.engine import Column, Database, DevicePageFile, Schema, TableScan
from repro.engine.tempdb import EXTENT_PAGES
from repro.engine.wal import LogRecordKind

SCHEMA = Schema(columns=(Column("k", "int", 8), Column("v", "str", 40)), key="k")


def make_db(rig, **kwargs):
    tempdb_store = DevicePageFile(500, rig.db, rig.ssd,
                                  capacity_pages=EXTENT_PAGES * 8)
    return Database(rig.db, bp_pages=512, data_device=rig.ssd,
                    log_device=rig.hdd, tempdb_store=tempdb_store, **kwargs)


class TestDdl:
    def test_create_table_sorts_and_stats(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(3, "c"), (1, "a"), (2, "b")])
        assert table.stats.row_count == 3
        assert table.stats.min_key == 1 and table.stats.max_key == 3
        rows = rig.run(table.clustered.range_scan(0, 10))
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_duplicate_table_rejected(self, rig):
        from repro.engine.errors import EngineError

        db = make_db(rig)
        db.create_table("t", SCHEMA, [])
        with pytest.raises(EngineError):
            db.create_table("t", SCHEMA, [])

    def test_secondary_index_matches_base(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(k, f"v{k % 5}") for k in range(100)])
        index = db.create_secondary_index(table, "v")
        entries = rig.run(index.search("v3"))
        assert sorted(pk for _key, pk in entries) == [k for k in range(100) if k % 5 == 3]

    def test_duplicate_index_rejected(self, rig):
        from repro.engine.errors import EngineError

        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(1, "a")])
        db.create_secondary_index(table, "v")
        with pytest.raises(EngineError):
            db.create_secondary_index(table, "v")


class TestDml:
    def test_insert_then_visible(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(k, "x") for k in range(10)])
        rig.run(db.insert_row(table, (42, "new")))
        assert rig.run(table.clustered.search(42)) == [(42, "new")]
        assert table.stats.row_count == 11

    def test_update_by_key(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(k, "x") for k in range(10)])
        changed = rig.run(db.update_by_key(table, 7, lambda row: (row[0], "y")))
        assert changed == 1
        assert rig.run(table.clustered.search(7)) == [(7, "y")]

    def test_delete_by_key(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(k, "x") for k in range(10)])
        removed = rig.run(db.delete_by_key(table, 4))
        assert removed == 1
        assert rig.run(table.clustered.search(4)) == []
        assert table.stats.row_count == 9

    def test_dml_is_logged_and_committed(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(1, "a")])
        rig.run(db.insert_row(table, (2, "b")))
        rig.run(db.update_by_key(table, 1, lambda row: (1, "a2")))
        kinds = [record.kind for record in db.wal.records]
        assert kinds.count(LogRecordKind.INSERT) == 1
        assert kinds.count(LogRecordKind.UPDATE) == 1
        assert kinds.count(LogRecordKind.COMMIT) == 2


class TestExecution:
    def test_execute_counts_queries_and_releases_grant(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(k, "x") for k in range(50)])
        result = rig.run(db.execute(TableScan(table), requested_memory_bytes=1024))
        assert len(result) == 50
        assert db.queries_executed == 1
        assert db.grants.in_use == 0

    def test_execute_charges_setup_cpu(self, rig):
        db = make_db(rig, query_setup_cpu_us=1000.0)
        table = db.create_table("t", SCHEMA, [(1, "a")])
        start = rig.sim.now
        rig.run(db.execute(TableScan(table)))
        assert rig.sim.now - start >= 1000.0

    def test_grant_released_even_on_operator_error(self, rig):
        db = make_db(rig)
        table = db.create_table("t", SCHEMA, [(1, "a")])

        class Exploding(TableScan):
            def run(self, ctx):
                raise RuntimeError("boom")
                yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            rig.run(db.execute(Exploding(table), requested_memory_bytes=4096))
        assert db.grants.in_use == 0
