"""WAL edge cases: batch re-arm, in-order acknowledgement, recovery
with an uncommitted tail.  Complements ``test_wal_grants_tempdb.py``
(happy-path group commit) with the cases the transaction layer leans
on: a durable COMMIT must imply every earlier record is durable, and
REDO must never resurrect work that never committed.
"""

from repro.engine.wal import (
    GROUP_COMMIT_BATCH,
    LogRecord,
    LogRecordKind,
    WriteAheadLog,
    redo_replay,
)


def data_record(wal, txn_id, key, row=("v",)):
    return LogRecord(
        lsn=wal.next_lsn(), kind=LogRecordKind.UPDATE, table="t", key=key,
        row=row, txn_id=txn_id,
    )


def outcome_record(wal, txn_id, kind):
    return LogRecord(lsn=wal.next_lsn(), kind=kind, txn_id=txn_id)


class TestGroupCommitReArm:
    def test_backlog_beyond_one_batch_flushes_in_multiple_batches(self, rig):
        """More pending records than GROUP_COMMIT_BATCH: the flusher must
        re-arm itself and drain the rest without a new append signal."""
        wal = WriteAheadLog(rig.db, rig.hdd)
        total = GROUP_COMMIT_BATCH * 2 + 7
        for key in range(total - 1):
            wal.append_nowait(data_record(wal, txn_id=1, key=key))
        # One awaited append at the very end: when it acknowledges, the
        # in-order chain guarantees the whole backlog is durable.
        rig.run(wal.append(outcome_record(wal, 1, LogRecordKind.COMMIT)))
        assert len(wal.records) == total
        assert wal.flushes >= 3  # ceil(135 / 64)
        # Durable image preserves append (LSN) order exactly.
        lsns = [record.lsn for record in wal.records]
        assert lsns == sorted(lsns)

    def test_commit_ack_implies_earlier_records_durable(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        for key in range(5):
            wal.append_nowait(data_record(wal, txn_id=3, key=key))
        commit = outcome_record(wal, 3, LogRecordKind.COMMIT)

        def committer():
            yield from wal.append(commit)
            # At ack time every earlier record must already be in the
            # durable image — this is what lets transactions await only
            # their COMMIT.
            return [record.lsn for record in wal.records]

        durable_lsns = rig.run(committer())
        assert durable_lsns == sorted(durable_lsns)
        assert commit.lsn in durable_lsns
        assert len(durable_lsns) == 6


class TestInOrderAcknowledgement:
    def test_acks_follow_lsn_order_despite_concurrent_flushes(self, rig):
        """Regression for the out-of-order durability bug: with several
        flushes in flight on a seeded-random device, a later batch can
        finish its write first — but acknowledgements must still arrive
        in LSN order."""
        wal = WriteAheadLog(rig.db, rig.hdd)
        ack_order = []

        def committer(key):
            record = yield from wal.log_update("t", key, None)
            ack_order.append(record.lsn)

        processes = [rig.sim.spawn(committer(key)) for key in range(60)]
        for process in processes:
            rig.sim.run_until_complete(process)
        assert len(ack_order) == 60
        assert ack_order == sorted(ack_order)
        # The scenario is real: multiple batches were actually in flight.
        assert wal.flushes > 1


class TestCheckpointBoundary:
    def test_records_since_excludes_the_checkpoint_itself(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        rig.run(wal.log_update("t", 1, ("a",)))
        checkpoint_lsn = rig.run(wal.checkpoint())
        rig.run(wal.log_update("t", 2, ("b",)))
        tail = wal.records_since(checkpoint_lsn)
        assert [record.lsn for record in tail] == [checkpoint_lsn + 1]
        # Boundary is strict: the record *at* the checkpoint LSN is out,
        # the one immediately after is in.
        assert all(record.lsn > checkpoint_lsn for record in tail)

    def test_redo_from_lsn_zero_replays_everything(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        for key in range(4):
            rig.run(wal.log_update("t", key, (key,)))
        rig.run(wal.checkpoint())
        applied = []
        count = rig.run(redo_replay(rig.db, wal, lambda r: applied.append(r.key), from_lsn=0))
        assert count == 4
        assert applied == [0, 1, 2, 3]


class TestRecoveryWithUncommittedTail:
    def drain(self, rig, wal):
        rig.sim.run(until=rig.sim.now + 1e6)

    def test_uncommitted_transaction_not_replayed(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        wal.append_nowait(outcome_record(wal, 5, LogRecordKind.BEGIN))
        wal.append_nowait(data_record(wal, txn_id=5, key=1))
        wal.append_nowait(data_record(wal, txn_id=5, key=2))
        self.drain(rig, wal)  # durable, but no COMMIT: the txn was in flight
        assert len(wal.records) == 3
        applied = []
        count = rig.run(redo_replay(rig.db, wal, lambda r: applied.append(r.key)))
        assert count == 0
        assert applied == []

    def test_aborted_transaction_not_replayed(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        wal.append_nowait(data_record(wal, txn_id=6, key=1))
        rig.run(wal.append(outcome_record(wal, 6, LogRecordKind.ABORT)))
        applied = []
        count = rig.run(redo_replay(rig.db, wal, lambda r: applied.append(r.key)))
        assert count == 0
        assert wal.aborted_txn_ids() == {6}

    def test_committed_transaction_replayed_autocommit_unconditional(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        # Committed txn 7, uncommitted txn 8, legacy autocommit (txn 0).
        wal.append_nowait(data_record(wal, txn_id=7, key=1))
        rig.run(wal.append(outcome_record(wal, 7, LogRecordKind.COMMIT)))
        wal.append_nowait(data_record(wal, txn_id=8, key=2))
        rig.run(wal.log_update("t", 3, ("legacy",)))
        applied = []
        count = rig.run(redo_replay(rig.db, wal, lambda r: applied.append((r.txn_id, r.key))))
        assert count == 2
        assert applied == [(7, 1), (0, 3)]
        assert wal.committed_txn_ids() == {7}

    def test_commit_lookup_spans_the_whole_log_not_just_the_tail(self, rig):
        """A transaction may straddle the REDO start point: its COMMIT
        before ``from_lsn`` must still qualify tail records."""
        wal = WriteAheadLog(rig.db, rig.hdd)
        rig.run(wal.append(outcome_record(wal, 9, LogRecordKind.COMMIT)))
        boundary = wal.records[-1].lsn
        wal.append_nowait(data_record(wal, txn_id=9, key=4))
        self.drain(rig, wal)
        applied = []
        count = rig.run(
            redo_replay(rig.db, wal, lambda r: applied.append(r.key), from_lsn=boundary)
        )
        assert count == 1
        assert applied == [4]

    def test_replay_off_switch_applies_uncommitted(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        wal.append_nowait(data_record(wal, txn_id=5, key=1))
        self.drain(rig, wal)
        count = rig.run(redo_replay(rig.db, wal, lambda r: None, committed_only=False))
        assert count == 1
