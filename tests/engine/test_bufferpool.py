"""Tests for the buffer pool, eviction, lazy writer and BPExt."""

import pytest

from repro.engine.bufferpool import BufferPool, BufferPoolExtension
from repro.engine.files import DevicePageFile, RemotePageFile
from repro.engine.page import Page


def make_pool(rig, capacity=8, extension_store=None, file_device=None):
    extension = BufferPoolExtension(extension_store) if extension_store else None
    pool = BufferPool(rig.db, capacity_pages=capacity, extension=extension)
    device = file_device if file_device is not None else rig.hdd
    data = DevicePageFile(1, rig.db, device)
    data.preload([Page.build(1, n, [(n, f"row{n}")]) for n in range(64)])
    pool.register_file(data)
    return pool, data


class TestBasicCaching:
    def test_miss_then_hit(self, rig):
        pool, _data = make_pool(rig)
        rig.run(pool.get_page(1, 0))
        assert (pool.hits, pool.misses) == (0, 1)
        rig.run(pool.get_page(1, 0))
        assert (pool.hits, pool.misses) == (1, 1)

    def test_hit_avoids_device(self, rig):
        pool, data = make_pool(rig)
        rig.run(pool.get_page(1, 0))
        reads_before = data.page_reads
        rig.run(pool.get_page(1, 0))
        assert data.page_reads == reads_before

    def test_lru_eviction_order(self, rig):
        pool, _data = make_pool(rig, capacity=4)
        for n in range(4):
            rig.run(pool.get_page(1, n))
        rig.run(pool.get_page(1, 0))  # 0 becomes most recent
        rig.run(pool.get_page(1, 4))  # evicts 1 (least recent)
        assert pool.is_cached((1, 0))
        assert not pool.is_cached((1, 1))

    def test_unknown_file_raises(self, rig):
        from repro.engine.errors import PageNotFound

        pool, _data = make_pool(rig)
        with pytest.raises(PageNotFound):
            rig.run(pool.get_page(99, 0))

    def test_capacity_validation(self, rig):
        from repro.engine.errors import EngineError

        with pytest.raises(EngineError):
            BufferPool(rig.db, capacity_pages=1)


class TestDirtyPages:
    def test_update_marks_dirty_and_changes_content(self, rig):
        pool, _data = make_pool(rig)

        def bump(page):
            page.rows[0] = (0, "updated")

        rig.run(pool.update_page(1, 0, bump))
        page = rig.run(pool.get_page(1, 0))
        assert page.rows[0] == (0, "updated")

    def test_dirty_eviction_flushes_to_file_in_background(self, rig):
        pool, data = make_pool(rig, capacity=4)

        def bump(page):
            page.rows[0] = (0, "updated")

        rig.run(pool.update_page(1, 0, bump))
        for n in range(1, 6):  # push page 0 out
            rig.run(pool.get_page(1, n))
        rig.sim.run(until=rig.sim.now + 1e6)  # let the lazy writer drain
        assert data._pages[0].rows[0] == (0, "updated")

    def test_read_during_pending_write_sees_new_data(self, rig):
        pool, _data = make_pool(rig, capacity=4)

        def bump(page):
            page.rows[0] = (0, "updated")

        rig.run(pool.update_page(1, 0, bump))
        for n in range(1, 6):
            rig.run(pool.get_page(1, n))
        # Do not wait for the writer: the page image must still be correct.
        page = rig.run(pool.get_page(1, 0))
        assert page.rows[0] == (0, "updated")

    def test_flush_all_persists_everything(self, rig):
        pool, data = make_pool(rig)

        def bump(page):
            page.rows[0] = ("flushed",)

        for n in range(3):
            rig.run(pool.update_page(1, n, bump))
        rig.run(pool.flush_all())
        for n in range(3):
            assert data._pages[n].rows[0] == ("flushed",)


class TestExtension:
    def make_ext_pool(self, rig, remote=False, capacity=4, ext_pages=16):
        if remote:
            remote_file = rig.make_remote_file("bpext", ext_pages * 8192)
            store = RemotePageFile(50, remote_file)
        else:
            store = DevicePageFile(50, rig.db, rig.ssd, capacity_pages=ext_pages)
        pool, data = make_pool(rig, capacity=capacity, extension_store=store)
        return pool, data, store

    def test_clean_eviction_parks_in_extension(self, rig):
        pool, _data, _store = self.make_ext_pool(rig)
        for n in range(5):  # page 0 evicted
            rig.run(pool.get_page(1, n))
        assert pool.extension.contains((1, 0))

    def test_extension_hit_avoids_base_file(self, rig):
        pool, data, _store = self.make_ext_pool(rig)
        for n in range(5):
            rig.run(pool.get_page(1, n))
        base_reads = data.page_reads
        rig.run(pool.get_page(1, 0))  # should come from the extension
        assert data.page_reads == base_reads
        assert pool.ext_hits == 1

    def test_remote_extension_roundtrip(self, rig):
        pool, _data, _store = self.make_ext_pool(rig, remote=True)
        for n in range(5):
            rig.run(pool.get_page(1, n))
        page = rig.run(pool.get_page(1, 0))
        assert page.rows == [(0, "row0")]
        assert pool.ext_hits == 1

    def test_extension_evicts_oldest_when_full(self, rig):
        pool, _data, _store = self.make_ext_pool(rig, capacity=2, ext_pages=3)
        for n in range(8):
            rig.run(pool.get_page(1, n))
        parked = [pid for pid in [(1, n) for n in range(8)] if pool.extension.contains(pid)]
        assert len(parked) <= 3

    def test_update_invalidates_extension_copy(self, rig):
        pool, _data, _store = self.make_ext_pool(rig)
        for n in range(5):
            rig.run(pool.get_page(1, n))
        assert pool.extension.contains((1, 0))

        def bump(page):
            page.rows[0] = (0, "v2")

        rig.run(pool.update_page(1, 0, bump))
        # Fresh read after another round of eviction must see v2.
        for n in range(1, 6):
            rig.run(pool.get_page(1, n))
        rig.sim.run(until=rig.sim.now + 1e6)
        page = rig.run(pool.get_page(1, 0))
        assert page.rows[0] == (0, "v2")

    def test_remote_loss_falls_back_to_base_file(self, rig):
        """Correctness survives losing every lease (Section 4.1.5)."""
        pool, data, _store = self.make_ext_pool(rig, remote=True)
        for n in range(5):
            rig.run(pool.get_page(1, n))
        assert pool.extension.contains((1, 0))
        # Expire the leases: remote memory vanishes.
        rig.sim.run(until=rig.sim.now + rig.broker.lease_duration_us + 1)
        page = rig.run(pool.get_page(1, 0))
        assert page.rows == [(0, "row0")]  # served from the data file
        assert pool.extension.failures >= 1


class TestPrefetch:
    def test_prefetch_installs_contiguous_pages(self, rig):
        pool, data = make_pool(rig, capacity=64)
        pool.prefetch(1, list(range(0, 16)))
        rig.sim.run(until=rig.sim.now + 1e6)
        assert all(pool.is_cached((1, n)) for n in range(16))
        # One coalesced device read, not sixteen.
        assert data.page_reads == 16
        assert rig.hdd.reads <= 2

    def test_prefetch_skips_resident_and_missing(self, rig):
        pool, data = make_pool(rig, capacity=64)
        rig.run(pool.get_page(1, 5))
        reads_before = data.page_reads
        pool.prefetch(1, [5, 63, 100])  # 5 resident, 100 missing
        rig.sim.run(until=rig.sim.now + 1e6)
        assert pool.is_cached((1, 63))
        assert not pool.is_cached((1, 100))
        assert data.page_reads == reads_before + 1

    def test_concurrent_reader_waits_for_inflight_prefetch(self, rig):
        pool, data = make_pool(rig, capacity=64)
        got = []

        def reader():
            page = yield from pool.get_page(1, 3)
            got.append(page)

        pool.prefetch(1, [3])
        rig.sim.spawn(reader())
        rig.sim.run(until=rig.sim.now + 1e6)
        assert got and got[0].page_id == (1, 3)
        # The reader deduplicated against the prefetch: one device read.
        assert data.page_reads == 1

    def test_prefetch_concurrency_cap(self, rig):
        from repro.engine.bufferpool import PREFETCH_CONCURRENCY

        pool, _data = make_pool(rig, capacity=1024)
        # Ask for more than the cap in one call: the claim count is bounded.
        data2 = DevicePageFile(2, rig.db, rig.ssd)
        data2.preload([Page.build(2, n, [(n,)]) for n in range(PREFETCH_CONCURRENCY * 2)])
        pool.register_file(data2)
        pool.prefetch(2, list(range(PREFETCH_CONCURRENCY * 2)))
        assert pool._prefetch_active <= PREFETCH_CONCURRENCY


class TestExtensionFaultHooks:
    """The BPExt side of the fault-injection surface."""

    def make_remote_ext_pool(self, rig, capacity=4, ext_pages=16):
        remote_file = rig.make_remote_file("bpext-faults", ext_pages * 8192)
        store = RemotePageFile(50, remote_file)
        pool, data = make_pool(rig, capacity=capacity, extension_store=store)
        return pool, data, store

    def test_on_failure_frees_slot_for_reuse(self, rig):
        """A failed slot goes back on the free list instead of leaking."""
        pool, _data, _store = self.make_remote_ext_pool(rig)
        ext = pool.extension
        for n in range(5):  # park page 0
            rig.run(pool.get_page(1, n))
        assert ext.contains((1, 0))
        slot = ext._slots[(1, 0)]
        free_before = len(ext._free)
        ext._on_failure((1, 0), slot)
        assert not ext.contains((1, 0))
        assert slot in ext._free
        assert len(ext._free) == free_before + 1
        assert ext.failures == 1

    def test_on_failure_is_idempotent_per_slot(self, rig):
        """Two concurrent accesses can both observe the same failure;
        the slot must not be double-freed."""
        pool, _data, _store = self.make_remote_ext_pool(rig)
        ext = pool.extension
        for n in range(5):
            rig.run(pool.get_page(1, n))
        slot = ext._slots[(1, 0)]
        ext._on_failure((1, 0), slot)
        ext._on_failure((1, 0), slot)  # second observer of the same loss
        assert ext._free.count(slot) == 1

    def test_failed_page_refaults_from_base_and_reparks(self, rig):
        """Satellite fix: after a remote failure the page re-faults from
        the base file, and the freed slot is reusable for a re-park."""
        pool, data, _store = self.make_remote_ext_pool(rig, capacity=4, ext_pages=4)
        ext = pool.extension
        for n in range(5):
            rig.run(pool.get_page(1, n))
        assert ext.contains((1, 0))
        # Remote memory vanishes (lease expiry).
        rig.sim.run(until=rig.sim.now + rig.broker.lease_duration_us + 1)
        base_reads = data.page_reads
        page = rig.run(pool.get_page(1, 0))
        assert page.rows == [(0, "row0")]
        assert data.page_reads == base_reads + 1
        # Every dead slot was reclaimed, none leaked.
        dead = ext.failures
        assert dead >= 1
        assert len(ext._free) + len(ext._slots) == ext.capacity_pages

    def test_fault_listeners_observe_access_time_failures(self, rig):
        pool, _data, _store = self.make_remote_ext_pool(rig)
        ext = pool.extension
        seen = []
        ext.fault_listeners.append(seen.append)
        for n in range(5):
            rig.run(pool.get_page(1, n))
        rig.sim.run(until=rig.sim.now + rig.broker.lease_duration_us + 1)
        rig.run(pool.get_page(1, 0))
        assert (1, 0) in seen

    def test_on_fault_sweeps_provider_slots(self, rig):
        pool, _data, _store = self.make_remote_ext_pool(rig)
        ext = pool.extension
        for n in range(6):
            rig.run(pool.get_page(1, n))
        parked = len(ext._slots)
        assert parked >= 1
        # A provider the store does not use loses nothing...
        assert ext.on_fault(provider="mem-elsewhere") == []
        assert len(ext._slots) == parked
        # ...the real provider loses everything it backs.
        lost = ext.on_fault(provider="mem0")
        assert len(lost) == parked
        assert len(ext._slots) == 0
        assert ext.pages_lost_to_faults == parked
        assert len(ext._free) == ext.capacity_pages

    def test_on_fault_without_provider_sweeps_everything(self, rig):
        pool, _data, _store = self.make_remote_ext_pool(rig)
        ext = pool.extension
        for n in range(6):
            rig.run(pool.get_page(1, n))
        parked = len(ext._slots)
        lost = ext.on_fault()
        assert len(lost) == parked and not ext._slots

    def test_replace_store_resets_and_rewarms(self, rig):
        pool, _data, _store = self.make_remote_ext_pool(rig, ext_pages=16)
        ext = pool.extension
        for n in range(5):
            rig.run(pool.get_page(1, n))
        assert ext._slots
        new_file = rig.make_remote_file("bpext-faults-2", 16 * 8192)
        new_store = RemotePageFile(50, new_file, capacity_pages=16)
        ext.replace_store(new_store)
        assert ext.store is new_store
        assert not ext._slots and len(ext._free) == 16
        assert ext.enabled
        # The extension re-warms through normal eviction traffic.
        for n in range(8, 13):
            rig.run(pool.get_page(1, n))
        assert ext._slots  # fresh pages parked in the new store
