"""Shared fixtures for engine tests."""

import pytest

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.remotefile import AccessPolicy, RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB, Raid0Array, SsdDevice


class EngineRig:
    """A DB server with HDD + SSD, one memory server, broker and remote FS."""

    def __init__(self, policy=AccessPolicy.SYNC, remote_gb=4):
        self.cluster = Cluster(seed=42)
        self.sim = self.cluster.sim
        network = Network(self.sim)
        self.db = self.cluster.add_server("db", memory_bytes=64 * GB)
        network.attach(self.db)
        self.hdd = self.db.attach_device(
            "hdd", Raid0Array(self.sim, spindles=20, rng=self.cluster.rng.stream("hdd"))
        )
        self.ssd = self.db.attach_device("ssd", SsdDevice(self.sim))
        self.mem = self.cluster.add_server("mem0", memory_bytes=384 * GB)
        network.attach(self.mem)
        self.broker = MemoryBroker(self.sim)
        self.proxy = MemoryProxy(self.mem, self.broker, mr_bytes=16 * MB)
        self.fs = RemoteMemoryFilesystem(self.db, self.broker, StagingPool(self.db), policy=policy)

        def setup():
            yield from self.fs.initialize()
            yield from self.proxy.offer_available(limit_bytes=remote_gb * GB)

        self.run(setup())

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))

    def make_remote_file(self, name, size):
        def build():
            file = yield from self.fs.create(name, size)
            yield from file.open()
            return file

        return self.run(build())


@pytest.fixture
def rig():
    return EngineRig()
