"""Tests for the scenario modules: semantic cache, priming, loader, optimizer."""

import pytest

from repro.engine import (
    CostModel,
    Database,
    DevicePageFile,
    JoinChoice,
    LoadSplit,
    MaintenancePolicy,
    Medium,
    RemotePageFile,
    SemanticCache,
    choose_join,
    crossover_selectivity,
    load_splits,
    parallel_load,
    prime_pool_from_file,
    prime_push,
    serialize_pool_to_file,
)
from repro.engine.wal import LogRecord, LogRecordKind
from repro.storage import MB


def make_db(rig, bp_pages=1024):
    return Database(rig.db, bp_pages=bp_pages, data_device=rig.ssd)


class TestSemanticCache:
    def make_view(self, rig, db, rows=None, policy=MaintenancePolicy.SYNC):
        cache = SemanticCache(db)
        rows = rows if rows is not None else [(i, i * 2.0) for i in range(500)]
        store = DevicePageFile(600, rig.db, rig.ssd, capacity_pages=256)
        view = rig.run(cache.create_view("v", "T1", rows, 24, store, policy=policy))
        return cache, view, rows

    def test_match_and_scan_roundtrip(self, rig):
        db = make_db(rig)
        cache, view, rows = self.make_view(rig, db)
        assert cache.match("T1") is view
        assert rig.run(cache.scan_view(view)) == rows

    def test_miss_on_unknown_template(self, rig):
        db = make_db(rig)
        cache, _view, _rows = self.make_view(rig, db)
        assert cache.match("other") is None
        assert cache.misses == 1

    def test_invalidate_policy_drops_view_on_update(self, rig):
        db = make_db(rig)
        cache, view, _rows = self.make_view(rig, db, policy=MaintenancePolicy.INVALIDATE)
        rig.run(cache.on_base_update("T1", (1, 2.0)))
        assert not view.valid
        assert cache.match("T1") is None

    def test_sync_policy_keeps_view_valid(self, rig):
        db = make_db(rig)
        cache, view, _rows = self.make_view(rig, db, policy=MaintenancePolicy.SYNC)
        rig.run(cache.on_base_update("T1", (1, 2.0)))
        assert view.valid

    def test_remote_view_invalidates_on_lease_loss(self, rig):
        from repro.remotefile import RemoteMemoryUnavailable

        db = make_db(rig)
        cache = SemanticCache(db)
        file = rig.make_remote_file("mv", 16 * MB)
        store = RemotePageFile(601, file, capacity_pages=512)
        rows = [(i,) for i in range(100)]
        view = rig.run(cache.create_view("v", "T2", rows, 24, store, timed=True))
        rig.sim.run(until=rig.sim.now + rig.broker.lease_duration_us + 1)
        with pytest.raises(RemoteMemoryUnavailable):
            rig.run(cache.scan_view(view))
        assert not view.valid

    def test_recovery_replays_log_tail(self, rig):
        db = make_db(rig)
        cache, view, rows = self.make_view(rig, db)
        rig.run(db.wal.checkpoint())
        view.checkpoint_lsn = db.wal.checkpoint_lsn
        for key in (3, 5):
            db.wal.records.append(LogRecord(
                lsn=db.wal.next_lsn(), kind=LogRecordKind.UPDATE,
                table="v", key=key, row=(key, -1.0),
            ))
        new_store = DevicePageFile(602, rig.db, rig.ssd, capacity_pages=256)
        applied = rig.run(cache.recover_view("T1", new_store, rows))
        assert applied == 2
        recovered = rig.run(cache.scan_view(view))
        assert (3, -1.0) in recovered and (5, -1.0) in recovered
        assert view.valid


class TestPriming:
    def test_serialize_then_prime_transfers_pool(self, rig):
        source = make_db(rig, bp_pages=256)
        target = Database(rig.db, bp_pages=256, data_device=rig.hdd)
        table = source.create_table(
            "t", __import__("repro.workloads.rangescan", fromlist=["CUSTOMER_SCHEMA"]).CUSTOMER_SCHEMA,
            [(k, "n", "a", 0, "p", 1.0, "m", "c") for k in range(2000)],
        )
        # Warm the source pool.
        rig.run(table.clustered.range_scan(0, 2000))
        file = rig.make_remote_file("prime", 8 * MB)
        report = rig.run(serialize_pool_to_file(source, file))
        assert report.pages == source.pool.in_memory_pages
        primed = rig.run(prime_pool_from_file(target, file, report.pages))
        assert primed.pages == report.pages
        assert target.pool.in_memory_pages == report.pages

    def test_prime_push_direct(self, rig):
        from repro.workloads.rangescan import CUSTOMER_SCHEMA

        source = make_db(rig, bp_pages=128)
        target = Database(rig.db, bp_pages=128, data_device=rig.hdd)
        table = source.create_table(
            "t", CUSTOMER_SCHEMA,
            [(k, "n", "a", 0, "p", 1.0, "m", "c") for k in range(1000)],
        )
        rig.run(table.clustered.range_scan(0, 1000))
        report = rig.run(prime_push(source, target))
        assert report.pages > 0
        assert target.pool.in_memory_pages >= min(report.pages, 127)


class TestLoader:
    def test_single_server_load_time_scales_with_bytes(self, rig):
        small = rig.run(load_splits(rig.db, [LoadSplit(0, 1 * MB)]))
        big = rig.run(load_splits(rig.db, [LoadSplit(0, 4 * MB)]))
        assert 3.0 < big.load_us / small.load_us < 5.0

    def test_parallel_load_offloads_and_copy_is_cheap(self, rig):
        splits = [LoadSplit(i, 2 * MB) for i in range(16)]
        single = rig.run(load_splits(rig.db, splits))
        # Offload to the (one) idle remote server: same load time on an
        # identical machine, plus a negligible RDMA copy.
        multi = rig.run(parallel_load(rig.db, [rig.mem], splits))
        assert multi.load_us <= single.load_us * 1.05
        assert multi.copy_us < 0.2 * multi.load_us
        assert multi.bytes_loaded == single.bytes_loaded


class TestOptimizer:
    def make_table(self, rig):
        db = make_db(rig)
        from repro.engine import Column, Schema

        schema = Schema(columns=(Column("k", "int", 8), Column("v", "int", 8)), key="k")
        return db.create_table("t", schema, [(i, i) for i in range(5000)])

    def test_inlj_wins_for_few_rows(self, rig):
        table = self.make_table(rig)
        model = CostModel(index_medium=Medium.REMOTE_MEMORY)
        choice, _inlj, _hash = choose_join(model, outer_rows=5, inner_table=table)
        assert choice is JoinChoice.INDEX_NESTED_LOOP

    def test_hash_wins_for_many_rows(self, rig):
        table = self.make_table(rig)
        model = CostModel(index_medium=Medium.HDD)
        choice, _inlj, _hash = choose_join(model, outer_rows=5000, inner_table=table)
        assert choice is JoinChoice.HASH_JOIN

    def test_crossover_moves_with_medium(self, rig):
        table = self.make_table(rig)
        crossovers = {
            medium: crossover_selectivity(CostModel(index_medium=medium), table, 100_000)
            for medium in (Medium.HDD, Medium.SSD, Medium.REMOTE_MEMORY, Medium.LOCAL_MEMORY)
        }
        assert (
            crossovers[Medium.HDD]
            < crossovers[Medium.SSD]
            < crossovers[Medium.REMOTE_MEMORY]
            < crossovers[Medium.LOCAL_MEMORY]
        )


class TestReactivePriming:
    def test_lookup_serves_pages_on_demand(self, rig):
        from repro.engine import ReactivePrimer
        from repro.workloads.rangescan import CUSTOMER_SCHEMA

        source = make_db(rig, bp_pages=300)
        target = Database(rig.db, bp_pages=300, data_device=rig.hdd)
        table = source.create_table(
            "t", CUSTOMER_SCHEMA,
            [(k, "n", "a", 0, "p", 1.0, "m", "c") for k in range(3000)],
        )
        rig.run(table.clustered.range_scan(0, 3000))  # warm source
        file = rig.make_remote_file("prime", 8 * MB)
        primer = rig.run(ReactivePrimer.build(source, target, file))
        # A hot page fetches on demand ...
        hot_id = source.pool.cached_pages()[0].page_id
        page = rig.run(primer.lookup(hot_id))
        assert page is not None and page.page_id == hot_id
        assert target.pool.is_cached(hot_id)
        assert primer.hits == 1
        # ... a never-cached page misses to the data file path.
        assert rig.run(primer.lookup((999, 999))) is None
        assert primer.misses == 1

    def test_reactive_fetch_is_rdma_fast(self, rig):
        from repro.engine import ReactivePrimer
        from repro.workloads.rangescan import CUSTOMER_SCHEMA

        source = make_db(rig, bp_pages=200)
        target = Database(rig.db, bp_pages=200, data_device=rig.hdd)
        table = source.create_table(
            "t", CUSTOMER_SCHEMA,
            [(k, "n", "a", 0, "p", 1.0, "m", "c") for k in range(2000)],
        )
        rig.run(table.clustered.range_scan(0, 2000))
        file = rig.make_remote_file("prime", 8 * MB)
        primer = rig.run(ReactivePrimer.build(source, target, file))
        hot_id = source.pool.cached_pages()[10].page_id
        start = rig.sim.now
        rig.run(primer.lookup(hot_id))
        # A 1MB batch fetch over RDMA: far below one HDD seek.
        assert rig.sim.now - start < 1500
