"""Tests for the write-ahead log, grants and TempDB."""

import pytest

from repro.engine.files import DevicePageFile
from repro.engine.grants import GrantManager
from repro.engine.tempdb import EXTENT_PAGES, TempDb
from repro.engine.wal import LogRecordKind, WriteAheadLog, redo_replay
from repro.storage import MB


class TestWal:
    def test_append_assigns_monotonic_lsns(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        lsns = [rig.run(wal.log_update("t", k, None)).lsn for k in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_records_become_durable(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        rig.run(wal.log_update("t", 1, ("row",)))
        assert len(wal.records) == 1
        assert wal.durable_bytes > 0

    def test_group_commit_batches_concurrent_appends(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)

        def committer(key):
            yield from wal.log_update("t", key, None)

        for key in range(40):
            rig.sim.spawn(committer(key))
        rig.sim.run(until=rig.sim.now + 1e6)
        assert len(wal.records) == 40
        # Far fewer device writes than records: group commit works.
        assert wal.flushes < 40

    def test_checkpoint_bounds_redo(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        rig.run(wal.log_update("t", 1, ("a",)))
        rig.run(wal.checkpoint())
        rig.run(wal.log_update("t", 2, ("b",)))
        tail = wal.records_since(wal.checkpoint_lsn)
        assert [r.key for r in tail if r.kind is LogRecordKind.UPDATE] == [2]

    def test_redo_replay_applies_tail(self, rig):
        wal = WriteAheadLog(rig.db, rig.hdd)
        for key in range(10):
            rig.run(wal.log_update("t", key, (key, "v")))
        applied = {}

        def apply(record):
            applied[record.key] = record.row
            return None

        count = rig.run(redo_replay(rig.db, wal, apply))
        assert count == 10
        assert applied[7] == (7, "v")

    def test_redo_replay_takes_time_proportional_to_tail(self, rig):
        def measure(n):
            wal = WriteAheadLog(rig.db, rig.ssd)
            for key in range(n):
                rig.run(wal.log_update("t", key, None))
            start = rig.sim.now
            rig.run(redo_replay(rig.db, wal, lambda record: None, from_lsn=0))
            return rig.sim.now - start

        small = measure(50)
        large = measure(2000)
        assert large > 8 * small


class TestGrants:
    def test_full_grant_when_available(self, rig):
        grants = GrantManager(rig.db, total_bytes=100 * MB)
        grant = rig.run(grants.acquire(10 * MB))
        assert grant.granted_bytes == 10 * MB
        assert not grant.is_partial

    def test_grant_capped_at_fraction(self, rig):
        grants = GrantManager(rig.db, total_bytes=100 * MB, max_fraction=0.25)
        grant = rig.run(grants.acquire(80 * MB))
        assert grant.granted_bytes == 25 * MB
        assert grant.is_partial
        assert grants.grants_capped == 1

    def test_waiters_queue_until_release(self, rig):
        grants = GrantManager(rig.db, total_bytes=100 * MB, max_fraction=0.5)
        order = []

        def query(tag, hold_us):
            grant = yield from grants.acquire(50 * MB)
            order.append((tag, rig.sim.now))
            yield rig.sim.timeout(hold_us)
            grant.release()

        rig.sim.spawn(query("a", 100))
        rig.sim.spawn(query("b", 100))
        rig.sim.spawn(query("c", 100))
        rig.sim.run()
        times = dict(order)
        # Two fit concurrently; the third waits for a release.
        assert times["c"] >= 100

    def test_release_is_idempotent(self, rig):
        grants = GrantManager(rig.db, total_bytes=10 * MB)
        grant = rig.run(grants.acquire(1 * MB))
        grant.release()
        grant.release()
        assert grants.in_use == 0


class TestTempDb:
    def make_tempdb(self, rig, capacity_pages=EXTENT_PAGES * 16):
        store = DevicePageFile(77, rig.db, rig.ssd, capacity_pages=capacity_pages)
        return TempDb(store)

    def test_write_read_roundtrip(self, rig):
        tempdb = self.make_tempdb(rig)
        rows = [(i, f"row{i}") for i in range(1000)]
        run = rig.run(tempdb.write_run(rows, rows_per_page=40))
        assert run.row_count == 1000
        back = rig.run(tempdb.read_run(run))
        assert back == rows

    def test_extent_accounting(self, rig):
        tempdb = self.make_tempdb(rig)
        rows = [(i,) for i in range(EXTENT_PAGES * 10 * 2)]  # 2 extents at 10/page
        run = rig.run(tempdb.write_run(rows, rows_per_page=10))
        assert len(run.extents) == 2
        assert run.page_count == EXTENT_PAGES * 2

    def test_free_run_returns_extents(self, rig):
        tempdb = self.make_tempdb(rig)
        before = tempdb.free_extents
        run = rig.run(tempdb.write_run([(i,) for i in range(100)], rows_per_page=10))
        assert tempdb.free_extents < before
        tempdb.free_run(run)
        assert tempdb.free_extents == before

    def test_tempdb_full_raises(self, rig):
        from repro.engine.errors import EngineError

        tempdb = self.make_tempdb(rig, capacity_pages=EXTENT_PAGES)
        rig.run(tempdb.write_run([(i,) for i in range(10)], rows_per_page=1))
        with pytest.raises(EngineError):
            rig.run(tempdb.write_run([(i,) for i in range(100)], rows_per_page=1))

    def test_read_extent_streams_in_order(self, rig):
        tempdb = self.make_tempdb(rig)
        # Two read-ahead windows' worth of extents at 5 rows/page.
        window = tempdb.MERGE_READAHEAD_EXTENTS
        rows = [(i,) for i in range(EXTENT_PAGES * 5 * window * 2)]
        run = rig.run(tempdb.write_run(rows, rows_per_page=5))
        first, consumed1 = rig.run(tempdb.read_extent(run, 0))
        second, consumed2 = rig.run(tempdb.read_extent(run, consumed1))
        assert consumed1 == consumed2 == window
        assert first + second == rows

    def test_coalesce_merges_contiguous_extents(self, rig):
        tempdb = self.make_tempdb(rig)
        rows = [(i,) for i in range(EXTENT_PAGES * 5 * 3)]
        run = rig.run(tempdb.write_run(rows, rows_per_page=5))
        # Three contiguous extents collapse into one large read.
        assert len(tempdb._coalesce(run.extents)) == 1
        # Non-contiguous extents stay separate.
        assert len(tempdb._coalesce([(0, 64), (128, 64)])) == 2

    def test_empty_run(self, rig):
        tempdb = self.make_tempdb(rig)
        run = rig.run(tempdb.write_run([], rows_per_page=10))
        assert run.row_count == 0
        assert rig.run(tempdb.read_run(run)) == []


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture])
@given(
    n_rows=st.integers(min_value=0, max_value=3000),
    rows_per_page=st.integers(min_value=1, max_value=80),
)
def test_property_tempdb_roundtrip(n_rows, rows_per_page):
    """Property: any run written to TempDB reads back exactly, for any
    page density, through both whole-run and windowed reads."""
    from tests.engine.conftest import EngineRig

    rig = EngineRig()
    store = DevicePageFile(77, rig.db, rig.ssd, capacity_pages=EXTENT_PAGES * 64)
    tempdb = TempDb(store)
    rows = [(index, index * 7) for index in range(n_rows)]
    run = rig.run(tempdb.write_run(rows, rows_per_page=rows_per_page))
    assert rig.run(tempdb.read_run(run)) == rows
    # Windowed (merge-style) reads cover the same rows in order.
    collected = []
    cursor = 0
    while cursor < len(run.extents):
        window, consumed = rig.run(tempdb.read_extent(run, cursor))
        collected.extend(window)
        cursor += max(1, consumed)
    assert collected == rows


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture])
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]),
                  st.integers(min_value=0, max_value=400)),
        min_size=1, max_size=120,
    )
)
def test_property_btree_insert_delete_matches_multiset(operations):
    """Property: a B-tree under random inserts/deletes equals a multiset."""
    from collections import Counter

    from repro.engine import BTree, BufferPool
    from tests.engine.conftest import EngineRig

    rig = EngineRig()
    pool = BufferPool(rig.db, capacity_pages=2048)
    store = DevicePageFile(1, rig.db, rig.ssd)
    pool.register_file(store)
    tree = BTree("t", pool, store, key_fn=lambda row: row[0], leaf_capacity=5)
    tree.bulk_build([])
    reference = Counter()
    for op, key in operations:
        if op == "insert":
            rig.run(tree.insert((key, key)))
            reference[key] += 1
        else:
            removed = rig.run(tree.delete(key))
            assert removed == reference.pop(key, 0)
    scan = rig.run(tree.range_scan(-1, 1000))
    assert Counter(row[0] for row in scan) == +reference
