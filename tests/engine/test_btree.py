"""Tests for the page-based B-tree, including hypothesis properties."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.bufferpool import BufferPool
from repro.engine.btree import BTree
from repro.engine.files import DevicePageFile


def make_tree(rig, rows, leaf_capacity=8, pool_pages=512):
    pool = BufferPool(rig.db, capacity_pages=pool_pages)
    store = DevicePageFile(1, rig.db, rig.ssd)
    pool.register_file(store)
    tree = BTree("t", pool, store, key_fn=lambda r: r[0], leaf_capacity=leaf_capacity)
    tree.bulk_build(rows)
    return tree, pool


class TestBulkBuild:
    def test_small_tree_is_single_leaf(self, rig):
        tree, _ = make_tree(rig, [(i, f"v{i}") for i in range(5)])
        assert tree.height == 1
        assert tree.leaf_count == 1

    def test_large_tree_has_internal_levels(self, rig):
        tree, _ = make_tree(rig, [(i, f"v{i}") for i in range(1000)], leaf_capacity=8)
        assert tree.height >= 2
        assert tree.leaf_count == 125

    def test_unsorted_input_rejected(self, rig):
        from repro.engine.errors import EngineError

        with pytest.raises(EngineError):
            make_tree(rig, [(2, "b"), (1, "a")])

    def test_empty_tree_builds_and_searches(self, rig):
        tree, _ = make_tree(rig, [])
        assert rig.run(tree.search(1)) == []


class TestSearch:
    def test_point_lookup(self, rig):
        tree, _ = make_tree(rig, [(i, f"v{i}") for i in range(200)])
        assert rig.run(tree.search(137)) == [(137, "v137")]

    def test_missing_key(self, rig):
        tree, _ = make_tree(rig, [(i * 2, i) for i in range(100)])
        assert rig.run(tree.search(3)) == []

    def test_range_scan_inclusive_exclusive(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(100)])
        rows = rig.run(tree.range_scan(10, 20))
        assert [r[0] for r in rows] == list(range(10, 20))

    def test_range_scan_spanning_leaves(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(100)], leaf_capacity=4)
        rows = rig.run(tree.range_scan(0, 100))
        assert len(rows) == 100

    def test_range_scan_limit(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(100)])
        rows = rig.run(tree.range_scan(0, 100, limit=7))
        assert len(rows) == 7

    def test_leaf_page_numbers_cover_all_leaves(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(100)], leaf_capacity=4)
        numbers = rig.run(tree.leaf_page_numbers())
        assert len(numbers) == tree.leaf_count


class TestMutation:
    def test_insert_then_search(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(0, 100, 2)])
        rig.run(tree.insert((13, "new")))
        assert rig.run(tree.search(13)) == [(13, "new")]

    def test_insert_splits_leaf(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(8)], leaf_capacity=8)
        leaves_before = tree.leaf_count
        rig.run(tree.insert((100, "x")))
        assert tree.leaf_count == leaves_before + 1
        assert rig.run(tree.search(100)) == [(100, "x")]

    def test_many_inserts_keep_order(self, rig):
        tree, _ = make_tree(rig, [], leaf_capacity=4)
        # First insert into an empty tree, in scrambled order.
        keys = [(i * 37) % 200 for i in range(200)]
        for key in keys:
            rig.run(tree.insert((key, f"v{key}")))
        rows = rig.run(tree.range_scan(-1, 1000))
        assert [r[0] for r in rows] == sorted(keys)

    def test_update_where(self, rig):
        tree, _ = make_tree(rig, [(i, 0) for i in range(50)])
        changed = rig.run(tree.update_where(7, lambda row: (row[0], row[1] + 5)))
        assert changed == 1
        assert rig.run(tree.search(7)) == [(7, 5)]

    def test_delete(self, rig):
        tree, _ = make_tree(rig, [(i, i) for i in range(50)])
        assert rig.run(tree.delete(10)) == 1
        assert rig.run(tree.search(10)) == []
        assert rig.run(tree.delete(10)) == 0

    def test_updates_survive_eviction(self, rig):
        """Dirty index pages must round-trip through the storage stack."""
        tree, pool = make_tree(rig, [(i, 0) for i in range(400)],
                               leaf_capacity=4, pool_pages=8)
        rig.run(tree.update_where(399, lambda row: (row[0], "persisted")))
        # Thrash the pool so the dirty leaf is evicted and rewritten.
        for key in range(0, 300, 7):
            rig.run(tree.search(key))
        rig.sim.run(until=rig.sim.now + 1e6)
        assert rig.run(tree.search(399)) == [(399, "persisted")]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=0, max_size=300),
    leaf_capacity=st.integers(min_value=2, max_value=16),
)
def test_btree_matches_sorted_reference(keys, leaf_capacity):
    """Property: after arbitrary inserts, a full scan equals sorted input."""
    from tests.engine.conftest import EngineRig

    rig = EngineRig()
    pool = BufferPool(rig.db, capacity_pages=4096)
    store = DevicePageFile(1, rig.db, rig.ssd)
    pool.register_file(store)
    tree = BTree("t", pool, store, key_fn=lambda r: r[0], leaf_capacity=leaf_capacity)
    tree.bulk_build([])
    for key in keys:
        rig.run(tree.insert((key, key * 2)))
    rows = rig.run(tree.range_scan(-1, 10_001))
    assert [r[0] for r in rows] == sorted(keys)
    # Every key individually findable.
    for key in set(keys):
        found = rig.run(tree.search(key))
        assert all(r[0] == key for r in found)
        assert len(found) == keys.count(key)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_rows=st.integers(min_value=0, max_value=500),
    low=st.integers(min_value=-10, max_value=510),
    span=st.integers(min_value=0, max_value=200),
)
def test_range_scan_matches_slice(n_rows, low, span):
    """Property: range_scan(low, high) == the matching slice of the data."""
    from tests.engine.conftest import EngineRig

    rig = EngineRig()
    pool = BufferPool(rig.db, capacity_pages=4096)
    store = DevicePageFile(1, rig.db, rig.ssd)
    pool.register_file(store)
    tree = BTree("t", pool, store, key_fn=lambda r: r[0], leaf_capacity=6)
    tree.bulk_build([(i, i) for i in range(n_rows)])
    high = low + span
    rows = rig.run(tree.range_scan(low, high))
    expected = [i for i in range(n_rows) if low <= i < high]
    assert [r[0] for r in rows] == expected


class TestDevicePageFileLayout:
    def test_chunked_layout_separates_chunks(self, rig):
        from repro.engine.files import DevicePageFile

        store = DevicePageFile(1, rig.db, rig.hdd)
        # Within a chunk: consecutive pages are 8K apart.
        assert store._offset(1) - store._offset(0) == 8192
        assert store._offset(255) - store._offset(254) == 8192
        # Across a chunk boundary: far apart (scattered placement).
        assert abs(store._offset(256) - store._offset(255)) > 2 * 1024 * 1024

    def test_linear_layout_is_contiguous(self, rig):
        from repro.engine.files import DevicePageFile

        store = DevicePageFile(1, rig.db, rig.hdd, chunk_pages=None, base_offset=1000)
        assert store._offset(0) == 1000
        assert store._offset(300) == 1000 + 300 * 8192

    def test_layout_is_deterministic_per_file(self, rig):
        from repro.engine.files import DevicePageFile

        a = DevicePageFile(7, rig.db, rig.hdd)
        b = DevicePageFile(7, rig.db, rig.ssd)
        c = DevicePageFile(8, rig.db, rig.hdd)
        assert a._offset(512) == b._offset(512)  # same file id, same layout
        assert a._offset(512) != c._offset(512)  # different files scatter apart
