"""Tests for physical operators: correctness and spill behaviour."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import (
    Column,
    Database,
    ExternalSort,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRangeScan,
    IndexSeek,
    Schema,
    TableScan,
)
from repro.engine.files import DevicePageFile
from repro.engine.tempdb import EXTENT_PAGES
from repro.storage import MB

TWO_COL = Schema(columns=(Column("id", "int", 8), Column("val", "int", 8)), key="id")
WIDE = Schema(
    columns=(Column("id", "int", 8), Column("grp", "int", 8), Column("pad", "str", 180)),
    key="id",
)


def make_db(rig, workspace_bytes=64 * MB, bp_pages=4096):
    tempdb_store = DevicePageFile(500, rig.db, rig.ssd, capacity_pages=EXTENT_PAGES * 256)
    return Database(
        rig.db,
        bp_pages=bp_pages,
        data_device=rig.ssd,
        log_device=rig.hdd,
        tempdb_store=tempdb_store,
        workspace_bytes=workspace_bytes,
    )


class TestScans:
    def test_table_scan_returns_all_rows(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, i * 10) for i in range(500)])
        result = rig.run(db.execute(TableScan(table)))
        assert len(result.rows) == 500

    def test_table_scan_predicate_and_project(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, i * 10) for i in range(100)])
        plan = TableScan(table, predicate=lambda r: r[0] < 10, project=lambda r: (r[1],))
        result = rig.run(db.execute(plan))
        assert result.rows == [(i * 10,) for i in range(10)]

    def test_index_range_scan(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, i) for i in range(1000)])
        plan = IndexRangeScan(table.clustered, 100, 200)
        result = rig.run(db.execute(plan))
        assert [r[0] for r in result.rows] == list(range(100, 200))

    def test_index_seek(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, i) for i in range(100)])
        result = rig.run(db.execute(IndexSeek(table.clustered, 42)))
        assert result.rows == [(42, 42)]


class TestHashJoin:
    def setup_join(self, rig, n_left=200, n_right=400, workspace=64 * MB):
        db = make_db(rig, workspace_bytes=workspace)
        left = db.create_table("l", TWO_COL, [(i, i % 50) for i in range(n_left)])
        right = db.create_table("r", TWO_COL, [(i, i % n_left) for i in range(n_right)])
        plan = HashJoin(
            build=TableScan(left),
            probe=TableScan(right),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[1],
        )
        return db, plan

    def reference_join(self, n_left, n_right):
        left = [(i, i % 50) for i in range(n_left)]
        right = [(i, i % n_left) for i in range(n_right)]
        by_key = {row[0]: row for row in left}
        return sorted(by_key[r[1]] + r for r in right if r[1] in by_key)

    def test_in_memory_join_correct(self, rig):
        db, plan = self.setup_join(rig)
        result = rig.run(db.execute(plan, requested_memory_bytes=16 * MB))
        assert sorted(result.rows) == self.reference_join(200, 400)
        assert result.metrics.spilled_runs == 0

    def test_grace_join_spills_and_matches(self, rig):
        # Tiny workspace: the build side cannot fit, forcing grace hash.
        db, plan = self.setup_join(rig, n_left=2000, n_right=2000, workspace=64 * 1024)
        result = rig.run(db.execute(plan, requested_memory_bytes=64 * 1024))
        assert result.metrics.spilled_runs > 0
        assert result.metrics.tempdb_writes > 0
        assert sorted(result.rows) == self.reference_join(2000, 2000)

    def test_spill_charges_tempdb_time(self, rig):
        db, spill_plan = self.setup_join(rig, n_left=2000, n_right=2000, workspace=64 * 1024)
        start = rig.sim.now
        rig.run(db.execute(spill_plan, requested_memory_bytes=64 * 1024))
        spill_time = rig.sim.now - start
        db2, mem_plan = self.setup_join(rig, n_left=2000, n_right=2000)
        start = rig.sim.now
        rig.run(db2.execute(mem_plan, requested_memory_bytes=16 * MB))
        mem_time = rig.sim.now - start
        assert spill_time > mem_time


class TestExternalSort:
    def test_in_memory_sort(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, (i * 37) % 1000) for i in range(1000)])
        plan = ExternalSort(TableScan(table), key=lambda r: r[1])
        result = rig.run(db.execute(plan, requested_memory_bytes=16 * MB))
        values = [r[1] for r in result.rows]
        assert values == sorted(values)
        assert result.metrics.spilled_runs == 0

    def test_external_sort_spills_and_sorts(self, rig):
        db = make_db(rig, workspace_bytes=32 * 1024)
        rows = [(i, (i * 7919) % 100000) for i in range(5000)]
        table = db.create_table("t", TWO_COL, rows)
        plan = ExternalSort(TableScan(table), key=lambda r: r[1])
        result = rig.run(db.execute(plan, requested_memory_bytes=32 * 1024))
        assert result.metrics.spilled_runs > 1
        values = [r[1] for r in result.rows]
        assert values == sorted(values)
        assert len(values) == 5000

    def test_descending_sort(self, rig):
        db = make_db(rig, workspace_bytes=32 * 1024)
        table = db.create_table("t", TWO_COL, [(i, i % 977) for i in range(3000)])
        plan = ExternalSort(TableScan(table), key=lambda r: r[1], reverse=True)
        result = rig.run(db.execute(plan, requested_memory_bytes=32 * 1024))
        values = [r[1] for r in result.rows]
        assert values == sorted(values, reverse=True)

    def test_top_n_truncates(self, rig):
        db = make_db(rig, workspace_bytes=32 * 1024)
        table = db.create_table("t", TWO_COL, [(i, (i * 31) % 5000) for i in range(5000)])
        plan = ExternalSort(TableScan(table), key=lambda r: r[1], top_n=100)
        result = rig.run(db.execute(plan, requested_memory_bytes=32 * 1024))
        assert len(result.rows) == 100
        all_sorted = sorted(((i * 31) % 5000) for i in range(5000))
        assert [r[1] for r in result.rows] == all_sorted[:100]


class TestOtherOperators:
    def test_inlj_matches_hash_join(self, rig):
        db = make_db(rig)
        left = db.create_table("l", TWO_COL, [(i, i % 20) for i in range(100)])
        right = db.create_table("r", TWO_COL, [(i, i) for i in range(20)])
        inlj = IndexNestedLoopJoin(
            outer=TableScan(left),
            inner_tree=right.clustered,
            outer_key=lambda r: r[1],
        )
        hj = HashJoin(
            build=TableScan(right),
            probe=TableScan(left),
            build_key=lambda r: r[0],
            probe_key=lambda r: r[1],
            combine=lambda b, p: p + b,
        )
        inlj_result = rig.run(db.execute(inlj))
        hj_result = rig.run(db.execute(hj))
        assert sorted(inlj_result.rows) == sorted(hj_result.rows)

    def test_hash_aggregate_sums(self, rig):
        db = make_db(rig)
        table = db.create_table("t", TWO_COL, [(i, i % 3) for i in range(30)])
        plan = HashAggregate(
            TableScan(table),
            group_key=lambda r: r[1],
            init=lambda: 0,
            update=lambda acc, row: acc + 1,
        )
        result = rig.run(db.execute(plan))
        assert sorted(result.rows) == [(0, 10), (1, 10), (2, 10)]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_rows=st.integers(min_value=0, max_value=2000),
    workspace_kb=st.sampled_from([16, 64, 1024, 16384]),
)
def test_sort_spill_invariant(n_rows, workspace_kb):
    """Property: sorted output identical whether or not the sort spills."""
    from tests.engine.conftest import EngineRig

    rig = EngineRig()
    db = make_db(rig, workspace_bytes=workspace_kb * 1024)
    rows = [(i, (i * 2654435761) % 2**16) for i in range(n_rows)]
    table = db.create_table("t", TWO_COL, rows)
    plan = ExternalSort(TableScan(table), key=lambda r: r[1])
    result = rig.run(db.execute(plan, requested_memory_bytes=workspace_kb * 1024))
    assert [r[1] for r in result.rows] == sorted((r[1] for r in rows))


class TestGrantSharing:
    def test_budget_split_across_consumers(self, rig):
        from repro.engine.operators import ExecContext

        db = make_db(rig)
        grant = rig.run(db.grants.acquire(4 * MB))
        solo = ExecContext(db=db, grant=grant, memory_consumers=1)
        shared = ExecContext(db=db, grant=grant, memory_consumers=4)
        assert solo.operator_budget_bytes == 4 * MB
        assert shared.operator_budget_bytes == 1 * MB
        grant.release()

    def test_consumer_split_controls_spilling(self, rig):
        """The same query spills or not depending on how many operators
        share the grant — the admission-control mechanism behind the
        paper's TPC-H Q10/Q18 result."""
        db = make_db(rig, workspace_bytes=2 * MB)
        rows = [(i, i) for i in range(4000)]  # ~96 KB of build side
        left = db.create_table("l", TWO_COL, rows)
        right = db.create_table("r", TWO_COL, rows)

        def plan():
            return HashJoin(
                build=TableScan(left), probe=TableScan(right),
                build_key=lambda r: r[0], probe_key=lambda r: r[0],
            )

        roomy = rig.run(db.execute(plan(), requested_memory_bytes=2 * MB,
                                   memory_consumers=1))
        tight = rig.run(db.execute(plan(), requested_memory_bytes=2 * MB,
                                   memory_consumers=16))
        assert roomy.metrics.spilled_runs == 0
        assert tight.metrics.spilled_runs > 0
        assert sorted(roomy.rows) == sorted(tight.rows)

    def test_metrics_track_tempdb_traffic(self, rig):
        db = make_db(rig, workspace_bytes=64 * 1024)
        table = db.create_table("t", TWO_COL, [(i, i % 97) for i in range(5000)])
        plan = ExternalSort(TableScan(table), key=lambda r: r[1])
        result = rig.run(db.execute(plan, requested_memory_bytes=64 * 1024))
        assert result.metrics.tempdb_writes > 0
        assert result.metrics.tempdb_reads > 0
        assert result.metrics.spilled_bytes == result.metrics.tempdb_writes * 8192
