"""Tests for pages and the three page-store media."""

import pytest

from repro.engine.errors import PageNotFound
from repro.engine.files import DevicePageFile, RemotePageFile
from repro.engine.page import PAGE_SIZE, Page, PageKind, rows_per_page
from repro.storage import MB


class TestPage:
    def test_rows_per_page_for_customer_width(self):
        # ~245-byte rows (paper's Customer table): ~33 rows fit.
        assert 30 <= rows_per_page(245) <= 35

    def test_rows_per_page_validation(self):
        with pytest.raises(ValueError):
            rows_per_page(0)

    def test_copy_isolates_row_list(self):
        page = Page.build(1, 0, [(1, "a"), (2, "b")])
        snapshot = page.copy()
        page.rows.append((3, "c"))
        assert len(snapshot.rows) == 2
        assert snapshot.page_id == page.page_id

    def test_copy_isolates_meta_lists(self):
        page = Page(page_id=(1, 0), kind=PageKind.BTREE_INTERNAL,
                    meta={"keys": [5], "children": [1, 2]})
        snapshot = page.copy()
        page.meta["children"].append(3)
        assert snapshot.meta["children"] == [1, 2]

    def test_byte_serialization_roundtrip(self):
        page = Page.build(3, 7, [(1, "x", 2.5)], kind=PageKind.BTREE_LEAF)
        page.lsn = 99
        page.meta["next"] = 8
        restored = Page.from_bytes(page.to_bytes())
        assert restored.page_id == (3, 7)
        assert restored.rows == [(1, "x", 2.5)]
        assert restored.lsn == 99
        assert restored.meta["next"] == 8
        assert restored.kind is PageKind.BTREE_LEAF


class TestDevicePageFile:
    def test_write_read_roundtrip(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        page = Page.build(1, 5, [(1, "row")])
        rig.run(store.write_page(page))
        got = rig.run(store.read_page(5))
        assert got.rows == [(1, "row")]
        assert got is not page  # snapshot isolation

    def test_disk_image_isolated_from_mutation(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        page = Page.build(1, 5, [(1, "row")])
        rig.run(store.write_page(page))
        page.rows.append((2, "later"))  # mutate after write
        assert rig.run(store.read_page(5)).rows == [(1, "row")]

    def test_missing_page_raises(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd)
        with pytest.raises(PageNotFound):
            rig.run(store.read_page(0))

    def test_capacity_enforced(self, rig):
        store = DevicePageFile(1, rig.db, rig.ssd, capacity_pages=10)
        with pytest.raises(PageNotFound):
            rig.run(store.write_page(Page.build(1, 10, [])))

    def test_hdd_read_is_slow_ssd_class_faster(self, rig):
        hdd_store = DevicePageFile(1, rig.db, rig.hdd)
        ssd_store = DevicePageFile(2, rig.db, rig.ssd)
        hdd_store.preload([Page.build(1, 0, [(1,)])])
        rig.run(ssd_store.write_page(Page.build(2, 0, [(1,)])))
        start = rig.sim.now
        rig.run(hdd_store.read_page(0))
        hdd_latency = rig.sim.now - start
        start = rig.sim.now
        rig.run(ssd_store.read_page(0))
        ssd_latency = rig.sim.now - start
        assert hdd_latency > 5 * ssd_latency

    def test_preload_requires_no_time(self, rig):
        store = DevicePageFile(1, rig.db, rig.hdd)
        before = rig.sim.now
        store.preload([Page.build(1, n, [(n,)]) for n in range(100)])
        assert rig.sim.now == before
        assert store.contains(99)


class TestRemotePageFile:
    def test_roundtrip_via_rdma(self, rig):
        remote = rig.make_remote_file("ext", 64 * MB)
        store = RemotePageFile(9, remote)
        page = Page.build(9, 3, [(7, "remote")])
        rig.run(store.write_page(page))
        got = rig.run(store.read_page(3))
        assert got.rows == [(7, "remote")]

    def test_capacity_from_file_size(self, rig):
        remote = rig.make_remote_file("ext", 64 * MB)
        store = RemotePageFile(9, remote)
        assert store.capacity_pages == 64 * MB // PAGE_SIZE

    def test_remote_read_latency_is_rdma_class(self, rig):
        remote = rig.make_remote_file("ext", 64 * MB)
        store = RemotePageFile(9, remote)
        rig.run(store.write_page(Page.build(9, 0, [(1,)])))
        start = rig.sim.now
        rig.run(store.read_page(0))
        assert rig.sim.now - start < 30

    def test_lease_loss_surfaces_unavailable(self, rig):
        from repro.remotefile import RemoteMemoryUnavailable

        remote = rig.make_remote_file("ext", 16 * MB)
        store = RemotePageFile(9, remote)
        rig.run(store.write_page(Page.build(9, 0, [(1,)])))
        rig.sim.run(until=rig.sim.now + rig.broker.lease_duration_us + 1)
        with pytest.raises(RemoteMemoryUnavailable):
            rig.run(store.read_page(0))


class TestSmbPageFile:
    def test_roundtrip_via_smb(self, rig):
        from repro.engine.files import SmbPageFile
        from repro.net import SmbDirectClient, SmbFileServer
        from repro.storage import RamDrive

        drive = rig.mem.attach_device("ramdrive", RamDrive(rig.sim))
        file_server = SmbFileServer(rig.mem, drive)
        client = SmbDirectClient(rig.db, file_server)
        store = SmbPageFile(33, rig.db, client, capacity_pages=64)
        page = Page.build(33, 5, [(1, "via smb")])
        rig.run(store.write_page(page))
        got = rig.run(store.read_page(5))
        assert got.rows == [(1, "via smb")]

    def test_batch_roundtrip(self, rig):
        from repro.engine.files import SmbPageFile
        from repro.net import SmbClient, SmbFileServer
        from repro.storage import RamDrive

        drive = rig.mem.attach_device("ramdrive2", RamDrive(rig.sim))
        file_server = SmbFileServer(rig.mem, drive)
        client = SmbClient(rig.db, file_server)
        store = SmbPageFile(34, rig.db, client, capacity_pages=64)
        pages = [Page.build(34, n, [(n,)]) for n in range(8)]
        rig.run(store.write_batch(0, pages))
        back = rig.run(store.read_batch(0, 8))
        assert [p.rows for p in back] == [[(n,)] for n in range(8)]
