"""Transactional fleet tenants: txn.* telemetry and report plumbing."""

from repro.fleet import FleetSpec, TenantSpec, build_fleet, run_fleet


def txn_fleet_spec() -> FleetSpec:
    return FleetSpec(
        name="txn-test",
        memory_servers=2,
        tenants=(
            TenantSpec(name="oltp", replicas=1, ext_pages=512, bp_pages=48,
                       peak_queries_per_epoch=30, n_rows=2000, workers=4,
                       range_size=20, update_fraction=0.5, transactional=True),
            TenantSpec(name="scan", replicas=1, ext_pages=512, bp_pages=48,
                       peak_queries_per_epoch=30, n_rows=2000, workers=4),
        ),
    )


class TestTransactionalTenants:
    def test_txn_counters_exposed_per_tenant(self):
        setup = build_fleet(txn_fleet_spec())
        run_fleet(setup, epochs=2, epoch_us=1e6)
        flat = setup.metrics.flat()
        assert flat["fleet.tenant.oltp.txn.begins"] > 0
        assert flat["fleet.tenant.oltp.txn.commits"] > 0
        assert flat["fleet.tenant.oltp.txn.exhausted"] == 0.0
        # The non-transactional tenant's gauges exist and read zero.
        assert flat["fleet.tenant.scan.txn.begins"] == 0.0
        assert flat["fleet.tenant.scan.txn.commits"] == 0.0

    def test_report_carries_txn_stats_only_for_transactional_tenants(self):
        setup = build_fleet(txn_fleet_spec())
        report = run_fleet(setup, epochs=2, epoch_us=1e6).as_dict()
        oltp = report["tenants"]["oltp"]
        assert oltp["txn"]["commits"] > 0
        assert oltp["txn"]["commits"] == oltp["txn"]["begins"] - oltp["txn"]["aborts"]
        assert "txn" not in report["tenants"]["scan"]

    def test_transactional_run_is_deterministic(self):
        reports = [
            run_fleet(build_fleet(txn_fleet_spec()), epochs=2, epoch_us=1e6).as_dict()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]

    def test_locks_idle_after_run(self):
        setup = build_fleet(txn_fleet_spec())
        run_fleet(setup, epochs=2, epoch_us=1e6)
        for replica in setup.tenants["oltp"].replicas:
            manager = replica.database._txn_manager
            assert manager is not None
            assert manager.locks.idle
            assert manager.active_count == 0
