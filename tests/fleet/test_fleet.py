"""Fleet topology, marketplace rebalancing, and fault-storm behavior."""

import pytest

from repro.faults import FaultPlan
from repro.fleet import (
    DiurnalShape,
    FleetSpec,
    FlashCrowdShape,
    MarketplacePolicy,
    QosClass,
    SteadyShape,
    TenantSpec,
    build_fleet,
    run_fleet,
)


def two_tenant_spec(**overrides) -> FleetSpec:
    defaults = dict(
        name="test",
        memory_servers=2,
        tenants=(
            TenantSpec(name="acme", replicas=1, ext_pages=512, bp_pages=48,
                       peak_queries_per_epoch=30, n_rows=2000, workers=4),
            TenantSpec(name="zen", replicas=1, ext_pages=512, bp_pages=48,
                       peak_queries_per_epoch=30, n_rows=2000, workers=4,
                       qos=QosClass.GOLD),
        ),
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestTopology:
    def test_build_counts_servers_and_tenants(self):
        spec = two_tenant_spec()
        setup = build_fleet(spec)
        assert [s.name for s in setup.memory_servers] == ["mem0", "mem1"]
        assert sorted(setup.tenants) == ["acme", "zen"]
        assert spec.db_servers == 2
        # Every replica starts with its static share, MR-rounded.
        for runtime in setup.tenants.values():
            assert runtime.ext_pages == 512

    def test_replicas_split_the_tenant_share(self):
        spec = two_tenant_spec(
            tenants=(
                TenantSpec(name="acme", replicas=2, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=30, n_rows=2000),
            ),
        )
        setup = build_fleet(spec)
        runtime = setup.tenants["acme"]
        assert len(runtime.replicas) == 2
        assert [replica.ext_pages for replica in runtime.replicas] == [512, 512]

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            two_tenant_spec(
                tenants=(
                    TenantSpec(name="acme"),
                    TenantSpec(name="acme"),
                ),
            )

    def test_static_fleet_run_is_deterministic(self):
        reports = [
            run_fleet(build_fleet(two_tenant_spec()), epochs=2, epoch_us=1e6).as_dict()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert reports[0]["tenants"]["acme"]["queries"] > 0

    def test_per_tenant_telemetry_registered(self):
        setup = build_fleet(two_tenant_spec())
        run_fleet(setup, epochs=1, epoch_us=1e6)
        flat = setup.metrics.flat()
        assert flat["fleet.tenant.acme.queries"] > 0
        assert flat["fleet.tenant.zen.ext_pages"] == 512.0


class TestMarketplace:
    def test_memory_follows_demand(self):
        # zen flash-crowds while acme idles: the marketplace must move
        # pages from the idle tenant to the loaded one.
        spec = two_tenant_spec(
            memory_servers=2,
            tenants=(
                TenantSpec(name="acme", replicas=1, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000, workers=4,
                           shape=SteadyShape(level=0.05)),
                TenantSpec(name="zen", replicas=1, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000, workers=4,
                           shape=FlashCrowdShape(at_us=0.0, duration_us=1e9),
                           qos=QosClass.GOLD),
            ),
        )
        policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6, min_delta_pages=64)
        setup = build_fleet(spec, marketplace=policy)
        report = run_fleet(setup, epochs=6, epoch_us=1e6)
        acme, zen = report.tenants["acme"], report.tenants["zen"]
        assert zen["ext_pages_final"] > 1024, "loaded tenant should have grown"
        assert acme["ext_pages_final"] < 1024, "idle tenant should have shrunk"
        assert acme["ext_pages_final"] >= spec.tenants[0].resolved_floor()
        assert report.marketplace["resizes"] > 0

    def test_floor_is_respected(self):
        spec = two_tenant_spec(
            tenants=(
                TenantSpec(name="acme", replicas=1, ext_pages=512, bp_pages=48,
                           peak_queries_per_epoch=20, n_rows=2000,
                           shape=SteadyShape(level=0.0), floor_pages=512),
                TenantSpec(name="zen", replicas=1, ext_pages=512, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000,
                           qos=QosClass.GOLD),
            ),
        )
        policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6, min_delta_pages=64)
        setup = build_fleet(spec, marketplace=policy)
        report = run_fleet(setup, epochs=5, epoch_us=1e6)
        assert report.tenants["acme"]["ext_pages_final"] >= 512

    def test_anti_affinity_spreads_tenant_leases(self):
        spec = two_tenant_spec(memory_servers=4)
        setup = build_fleet(spec, marketplace=True)
        for name, runtime in setup.tenants.items():
            holders = set(runtime.holders())
            providers = {
                lease.provider
                for lease in setup.broker.active_leases
                if lease.holder in holders
            }
            assert len(providers) > 1, f"{name} concentrated on one provider"

    def test_marketplace_run_is_deterministic(self):
        def once():
            policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6)
            setup = build_fleet(two_tenant_spec(), marketplace=policy)
            return run_fleet(setup, epochs=3, epoch_us=1e6).as_dict()

        assert once() == once()

    def test_consistency_verified_after_run(self):
        setup = build_fleet(two_tenant_spec(), marketplace=True)
        report = run_fleet(setup, epochs=2, epoch_us=1e6)
        assert report.consistency["active_leases"] == report.consistency["recorded_leases"]


class TestFleetUnderFaults:
    def test_memory_server_crash_degrades_not_destroys(self):
        spec = two_tenant_spec(memory_servers=4)
        policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6)
        setup = build_fleet(spec, marketplace=policy)
        plan = FaultPlan().crash(1.5e6, "mem0", duration_us=3e6)
        report = run_fleet(setup, epochs=5, epoch_us=1e6, fault_plan=plan)
        for name, tenant in report.tenants.items():
            assert tenant["queries"] > 0, f"{name} starved by a single crash"
        # Anti-affinity means the crash revoked only a slice of each
        # tenant's leases, and the marketplace re-granted afterwards.
        assert report.consistency["active_leases"] > 0

    def test_crash_storm_is_deterministic(self):
        def once():
            policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6)
            setup = build_fleet(two_tenant_spec(memory_servers=4), marketplace=policy)
            plan = (
                FaultPlan()
                .crash(1.5e6, "mem0", duration_us=2e6)
                .crash(1.7e6, "mem1", duration_us=2e6)
            )
            return run_fleet(setup, epochs=4, epoch_us=1e6, fault_plan=plan).as_dict()

        assert once() == once()

    def test_broker_restart_aborts_round_and_recovers(self):
        spec = two_tenant_spec(
            tenants=(
                TenantSpec(name="acme", replicas=1, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000,
                           shape=SteadyShape(level=0.05)),
                TenantSpec(name="zen", replicas=1, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000,
                           qos=QosClass.GOLD),
            ),
        )
        policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6, min_delta_pages=64)
        setup = build_fleet(spec, marketplace=policy)
        # Down across the first rebalance rounds, then replayed back.
        plan = FaultPlan().broker_restart(0.9e6, duration_us=2.2e6, replay=True)
        report = run_fleet(setup, epochs=6, epoch_us=1e6, fault_plan=plan)
        # The run finished, the lease table matches the metadata store,
        # and the marketplace caught up after recovery.
        assert report.consistency["active_leases"] == report.consistency["recorded_leases"]
        assert report.tenants["zen"]["queries"] > 0

    def test_diurnal_shift_with_marketplace(self):
        spec = two_tenant_spec(
            memory_servers=4,
            tenants=(
                TenantSpec(name="acme", replicas=2, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000, workers=4,
                           shape=DiurnalShape(period_us=8e6, low=0.1, high=1.0, phase=0.0)),
                TenantSpec(name="zen", replicas=2, ext_pages=1024, bp_pages=48,
                           peak_queries_per_epoch=40, n_rows=2000, workers=4,
                           shape=DiurnalShape(period_us=8e6, low=0.1, high=1.0, phase=0.5),
                           qos=QosClass.GOLD),
            ),
        )
        policy = MarketplacePolicy(period_us=1e6, cooldown_us=2e6, min_delta_pages=64)
        setup = build_fleet(spec, marketplace=policy)
        report = run_fleet(setup, epochs=8, epoch_us=1e6)
        assert report.marketplace["resizes"] > 0
        assert report.marketplace["reclaimed_pages"] > 0
        assert report.marketplace["granted_pages"] > 0
