"""Traffic shapes are pure, deterministic functions of virtual time."""

import pytest

from repro.fleet import (
    DiurnalShape,
    FlashCrowdShape,
    SteadyShape,
    zipf_shares,
)


class TestShapes:
    def test_steady_is_flat(self):
        shape = SteadyShape(level=0.7)
        assert shape.intensity(0) == shape.intensity(5e6) == 0.7

    def test_diurnal_trough_and_peak(self):
        shape = DiurnalShape(period_us=24e6, low=0.2, high=1.0, phase=0.0)
        assert shape.intensity(0.0) == pytest.approx(0.2)
        assert shape.intensity(12e6) == pytest.approx(1.0)
        assert shape.intensity(24e6) == pytest.approx(0.2)

    def test_diurnal_antiphase_tenants_sum_constant(self):
        a = DiurnalShape(period_us=16e6, low=0.0, high=1.0, phase=0.0)
        b = DiurnalShape(period_us=16e6, low=0.0, high=1.0, phase=0.5)
        for t in (0.0, 1e6, 3.7e6, 8e6, 15e6):
            assert a.intensity(t) + b.intensity(t) == pytest.approx(1.0)

    def test_diurnal_bounded(self):
        shape = DiurnalShape(period_us=24e6, low=0.1, high=0.9)
        for t in range(0, 48, 5):
            value = shape.intensity(t * 1e6)
            assert 0.1 <= value <= 0.9 + 1e-12

    def test_flash_crowd_window(self):
        shape = FlashCrowdShape(at_us=4e6, duration_us=2e6, base=0.1, peak=1.0)
        assert shape.intensity(3.999e6) == 0.1
        assert shape.intensity(4e6) == 1.0
        assert shape.intensity(5.999e6) == 1.0
        assert shape.intensity(6e6) == 0.1

    def test_shapes_are_pure(self):
        shape = DiurnalShape(period_us=24e6)
        assert shape.intensity(7e6) == shape.intensity(7e6)


class TestZipfShares:
    def test_shares_sum_to_one_and_decrease(self):
        shares = zipf_shares(5, s=1.2)
        assert sum(shares) == pytest.approx(1.0)
        assert shares == sorted(shares, reverse=True)

    def test_skew_parameter_sharpens_head(self):
        flat = zipf_shares(4, s=0.5)
        steep = zipf_shares(4, s=2.0)
        assert steep[0] > flat[0]

    def test_empty(self):
        assert zipf_shares(0) == []

    def test_single_tenant_gets_everything(self):
        assert zipf_shares(1) == [1.0]

    def test_deterministic(self):
        assert zipf_shares(7, s=1.3) == zipf_shares(7, s=1.3)
