"""Property-based tests for the remote-memory file API."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB


def make_file(size_mb=48, mr_mb=16):
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    mem = cluster.add_server("mem0")
    network.attach(db)
    network.attach(mem)
    broker = MemoryBroker(cluster.sim)
    proxy = MemoryProxy(mem, broker, mr_bytes=mr_mb * MB)
    fs = RemoteMemoryFilesystem(db, broker, StagingPool(db))
    sim = cluster.sim

    def setup():
        yield from fs.initialize()
        yield from proxy.offer_available(limit_bytes=2 * GB)
        file = yield from fs.create("f", size_mb * MB)
        yield from file.open()
        return file

    return cluster, sim.run_until_complete(sim.spawn(setup()))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=40 * MB),
            st.binary(min_size=1, max_size=4096),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_byte_fidelity_matches_reference_buffer(writes):
    """Property: the remote file behaves exactly like one big bytearray,
    including writes that straddle memory-region boundaries."""
    cluster, file = make_file()
    reference = bytearray(file.size)

    def run(generator):
        return cluster.sim.run_until_complete(cluster.sim.spawn(generator))

    for offset, payload in writes:
        run(file.write(offset, payload))
        reference[offset : offset + len(payload)] = payload
    for offset, payload in writes:
        data = run(file.read(offset, len(payload)))
        assert data == bytes(reference[offset : offset + len(payload)])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    offset=st.integers(min_value=0, max_value=47 * MB),
    size=st.integers(min_value=1, max_value=1 * MB),
)
def test_locate_covers_exact_range(offset, size):
    """Property: offset translation tiles the request exactly, in order,
    within region bounds."""
    cluster, file = make_file()
    size = min(size, file.size - offset)
    segments = file._locate(offset, size)
    assert sum(length for _l, _o, length in segments) == size
    cursor = offset
    for lease, mr_offset, length in segments:
        assert 0 <= mr_offset < lease.region.size
        assert mr_offset + length <= lease.region.size
        cursor += length
    assert cursor == offset + size


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=st.lists(st.integers(min_value=1 * MB, max_value=40 * MB),
                      min_size=1, max_size=4))
def test_broker_conservation(sizes):
    """Property: leased + available bytes is conserved through any
    sequence of create/delete."""
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    mem = cluster.add_server("mem0")
    network.attach(db)
    network.attach(mem)
    broker = MemoryBroker(cluster.sim)
    proxy = MemoryProxy(mem, broker, mr_bytes=16 * MB)
    fs = RemoteMemoryFilesystem(db, broker, StagingPool(db))
    sim = cluster.sim

    def run(generator):
        return sim.run_until_complete(sim.spawn(generator))

    def setup():
        yield from fs.initialize()
        yield from proxy.offer_available(limit_bytes=1 * GB)

    run(setup())
    total = broker.available_bytes()
    files = []
    for index, size in enumerate(sizes):
        try:
            file = run(fs.create(f"f{index}", size))
        except Exception:
            break
        files.append(file)
        leased = sum(f.size for f in files)
        assert broker.available_bytes() + leased == total
    for file in files:
        run(fs.delete(file))
    assert broker.available_bytes() == total
