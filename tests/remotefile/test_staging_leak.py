"""Regression: interrupted transfers must not leak staging slots.

The old ``StagingPool.acquire`` yielded a bare resource request; a
process interrupted while *queued* (deadline expiry, NIC death) left the
request behind, the kernel granted it to the dead process, and the slots
were gone forever.  Enough brown-out rounds drained the whole pool.
"""

import numpy as np

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.reliability import ReliabilityLayer, ReliabilityPolicy
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, KB, MB


def make_pool(schedulers=1, buffer_bytes=16 * KB):
    cluster = Cluster()
    db = cluster.add_server("db", memory_bytes=4 * GB)
    pool = StagingPool(db, schedulers=schedulers, buffer_bytes=buffer_bytes)
    sim = cluster.sim
    sim.run_until_complete(sim.spawn(pool.initialize()))
    return sim, pool


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestAcquireInterruptSafety:
    def test_interrupted_waiter_releases_nothing_and_leaks_nothing(self):
        sim, pool = make_pool()  # 2 slots total
        held = []

        def holder():
            slots = yield from pool.acquire(16 * KB)
            held.append(slots)
            yield sim.event()  # hold until the test releases explicitly

        sim.spawn(holder())
        sim.run(until=sim.now + 1.0)
        assert pool.slots.in_use == 2

        def waiter():
            yield from pool.acquire(16 * KB)

        victim = sim.spawn(waiter())
        sim.run(until=sim.now + 2.0)
        assert pool.slots.queue_length == 1
        victim.interrupt(cause="deadline")
        sim.run(until=sim.now + 3.0)
        assert pool.slots.queue_length == 0

        pool.release(held[0])
        assert pool.slots.in_use == 0

        # The freed capacity is actually usable again.
        acquired = []

        def late():
            slots = yield from pool.acquire(16 * KB)
            acquired.append(slots)
            pool.release(slots)

        sim.spawn(late())
        sim.run(until=sim.now + 4.0)
        assert acquired == [2]

    def test_interrupt_after_grant_returns_slots(self):
        sim, pool = make_pool()

        def slow_holder():
            slots = yield from pool.acquire(16 * KB)
            try:
                yield sim.timeout(1_000.0)
            except BaseException:
                pool.release(slots)
                raise

        victim = sim.spawn(slow_holder())
        sim.run(until=sim.now + 1.0)
        assert pool.slots.in_use == 2
        victim.interrupt(cause="teardown")
        sim.run(until=sim.now + 2.0)
        assert pool.slots.in_use == 0


class TestDeadlineStormLeavesPoolIntact:
    def test_repeated_deadline_expiry_never_drains_the_pool(self):
        """End-to-end: reads time out under a browned-out NIC for many
        rounds; afterwards the staging pool is fully free and healthy
        reads still succeed."""
        cluster = Cluster(seed=5)
        sim = cluster.sim
        network = Network(sim)
        db = cluster.add_server("db", memory_bytes=32 * GB)
        network.attach(db)
        mem = cluster.add_server("mem0", memory_bytes=64 * GB)
        network.attach(mem)
        mem.commit_memory(mem.memory_bytes - 2 * GB)
        broker = MemoryBroker(sim)
        proxy = MemoryProxy(mem, broker, mr_bytes=16 * MB)
        policy = ReliabilityPolicy(
            read_deadline_us=200.0, retry_attempts=0,
            breaker_failure_threshold=1000,  # keep the path open for the storm
            per_provider_inflight=0,
        )
        layer = ReliabilityLayer(sim, cluster.rng.stream("reliability"), policy)
        staging = StagingPool(db, schedulers=1, buffer_bytes=32 * KB)  # 4 slots
        fs = RemoteMemoryFilesystem(db, broker, staging, reliability=layer)

        def setup():
            yield from fs.initialize()
            yield from proxy.offer_available()
            file = yield from fs.create("f", 16 * MB)
            yield from file.open()
            return file

        file = complete(sim, setup())
        payload = np.arange(4096, dtype=np.uint8).tobytes()
        complete(sim, file.write(0, payload))

        mem.nic.degrade(latency_multiplier=500.0)
        outcomes = []

        def reader():
            try:
                yield from file.read(0, 16 * KB)
            except Exception as exc:  # DeadlineExceeded expected
                outcomes.append(type(exc).__name__)

        for round_no in range(6):
            for _ in range(3):  # more transfers than staging slots
                sim.spawn(reader())
            sim.run(until=sim.now + 5_000.0)
        assert outcomes.count("DeadlineExceeded") >= 6
        assert staging.slots.in_use == 0
        assert staging.slots.queue_length == 0

        mem.nic.restore_link()
        data = complete(sim, file.read(0, 4096))
        assert bytes(data) == payload
