"""Torn multi-segment writes report the partially-written range.

A write spanning several leases is not atomic.  When a later segment
fails after an earlier one landed, the caller must learn exactly which
prefix is on remote memory — re-reading is not an option when the
failing provider is gone — so it can invalidate precisely.
"""

import pytest

from repro.remotefile import RemoteMemoryUnavailable, TornWrite
from repro.storage import KB, MB

from .test_remotefile import complete, create_open, make_fs

BOUNDARY = 16 * MB  # mr_bytes in make_fs: leases are 16 MB each


def make_spanning_file():
    cluster, fs, broker, proxies = make_fs(memory_servers=2)
    file = create_open(cluster, fs, size=32 * MB, spread=True)
    assert len(file.leases) >= 2
    assert file.leases[0].provider != file.leases[1].provider
    return cluster, file


def expire(cluster, lease):
    lease.expires_at_us = cluster.sim.now - 1.0


class TestTornWrite:
    def test_second_segment_failure_reports_written_prefix(self):
        cluster, file = make_spanning_file()
        offset = BOUNDARY - 32 * KB
        data = bytes(range(256)) * 256  # 64 KB crossing the lease boundary
        expire(cluster, file.leases[1])

        with pytest.raises(TornWrite) as excinfo:
            complete(cluster.sim, file.write(offset, data))
        torn = excinfo.value
        assert torn.written_range == (offset, offset + 32 * KB)
        assert torn.intended == len(data)
        assert isinstance(torn, RemoteMemoryUnavailable)
        assert isinstance(torn.__cause__, RemoteMemoryUnavailable)

        # The reported prefix really is on remote memory.
        read_back = complete(cluster.sim, file.read(offset, 32 * KB))
        assert bytes(read_back) == data[: 32 * KB]

    def test_first_segment_failure_is_not_torn(self):
        cluster, file = make_spanning_file()
        offset = BOUNDARY - 32 * KB
        data = b"\xab" * (64 * KB)
        expire(cluster, file.leases[0])

        with pytest.raises(RemoteMemoryUnavailable) as excinfo:
            complete(cluster.sim, file.write(offset, data))
        assert not isinstance(excinfo.value, TornWrite)

    def test_single_segment_failure_is_not_torn(self):
        cluster, file = make_spanning_file()
        expire(cluster, file.leases[1])

        with pytest.raises(RemoteMemoryUnavailable) as excinfo:
            complete(cluster.sim, file.write(BOUNDARY + 1 * MB, b"\x01" * (8 * KB)))
        assert not isinstance(excinfo.value, TornWrite)

    def test_nodata_write_reports_torn_range_too(self):
        cluster, file = make_spanning_file()
        offset = BOUNDARY - 8 * KB
        expire(cluster, file.leases[1])

        with pytest.raises(TornWrite) as excinfo:
            complete(cluster.sim, file.write_nodata(offset, 16 * KB))
        assert excinfo.value.written_range == (offset, offset + 8 * KB)

    def test_healthy_spanning_write_roundtrips(self):
        cluster, file = make_spanning_file()
        offset = BOUNDARY - 32 * KB
        data = bytes(range(256)) * 256
        complete(cluster.sim, file.write(offset, data))
        read_back = complete(cluster.sim, file.read(offset, len(data)))
        assert bytes(read_back) == data
