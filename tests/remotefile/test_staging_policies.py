"""Tests for staging-pool mechanics and waiting-policy edge cases."""

import pytest

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.remotefile import (
    AccessPolicy,
    RemoteMemoryFilesystem,
    StagingPool,
)
from repro.remotefile.api import ADAPTIVE_SPIN_US
from repro.storage import GB, KB, MB


def make_rig(policy=AccessPolicy.SYNC, schedulers=2, buffer_bytes=64 * 1024):
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    mem = cluster.add_server("mem0")
    network.attach(db)
    network.attach(mem)
    broker = MemoryBroker(cluster.sim)
    proxy = MemoryProxy(mem, broker, mr_bytes=64 * MB)
    staging = StagingPool(db, schedulers=schedulers, buffer_bytes=buffer_bytes)
    fs = RemoteMemoryFilesystem(db, broker, staging, policy=policy)
    sim = cluster.sim

    def setup():
        yield from fs.initialize()
        yield from proxy.offer_available(limit_bytes=1 * GB)
        file = yield from fs.create("f", 128 * MB)
        yield from file.open()
        return file

    file = sim.run_until_complete(sim.spawn(setup()))
    return cluster, db, file, staging


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


class TestStagingPool:
    def test_initialize_registers_one_region_per_scheduler(self):
        cluster, _db, _file, staging = make_rig(schedulers=2)
        assert len(staging.regions) == 2
        assert all(region.registered for region in staging.regions)

    def test_slots_bound_outstanding_transfers(self):
        # 2 schedulers x 64K buffers = 16 slots of 8K.
        cluster, _db, file, staging = make_rig(schedulers=2, buffer_bytes=64 * 1024)
        assert staging.slots.capacity == 16
        sim = cluster.sim
        done = []

        def reader(tag):
            yield from file.read_nodata(tag * 8 * KB, 8 * KB)
            done.append(tag)

        for tag in range(40):
            sim.spawn(reader(tag))
        sim.run()
        assert len(done) == 40  # all complete despite the slot cap

    def test_uninitialized_pool_rejected(self):
        cluster = Cluster()
        server = cluster.add_server("s")
        staging = StagingPool(server)
        with pytest.raises(RuntimeError):
            complete(cluster.sim, staging.acquire(8 * KB))

    def test_slot_math(self):
        cluster = Cluster()
        server = cluster.add_server("s")
        staging = StagingPool(server)
        assert staging.slots_for(1) == 1
        assert staging.slots_for(8 * KB) == 1
        assert staging.slots_for(8 * KB + 1) == 2
        assert staging.memcpy_us(8 * KB) == pytest.approx(2.0, rel=0.1)


class TestAdaptivePolicy:
    def test_adaptive_spins_for_fast_transfers(self):
        cluster, db, file, _staging = make_rig(policy=AccessPolicy.ADAPTIVE)
        complete(cluster.sim, file.read_nodata(0, 8 * KB))
        assert db.cpu.context_switches == 0

    def test_adaptive_falls_back_for_slow_transfers(self):
        cluster, db, file, _staging = make_rig(
            policy=AccessPolicy.ADAPTIVE, schedulers=8, buffer_bytes=1024 * 1024
        )
        # A transfer far larger than the spin budget can cover.
        size = 4 * MB  # ~750 us on the wire >> ADAPTIVE_SPIN_US
        assert size / (5.4 * 1024) > ADAPTIVE_SPIN_US  # sanity: slower than budget
        complete(cluster.sim, file.read_nodata(0, size))
        assert db.cpu.context_switches >= 1

    def test_fire_and_forget_write_returns_after_memcpy(self):
        cluster, db, file, staging = make_rig()
        sim = cluster.sim
        start = sim.now
        complete(sim, file.write_object(0, 8 * KB, {"page": 1}, background=True))
        # Returned after slot + memcpy, well before the RDMA completes.
        assert sim.now - start < 5.0
        sim.run(until=sim.now + 1000)
        # The slot was released by the completion callback.
        assert staging.slots.in_use == 0
        got = complete(sim, file.read_object(0, 8 * KB))
        assert got == {"page": 1}
