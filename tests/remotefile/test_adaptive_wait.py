"""ADAPTIVE wait policy: spin for fast transfers, yield for slow ones.

Section 4.1.3: a healthy remote read completes in ~10 µs — comparable
to a context switch — so the adaptive policy spins for up to
``ADAPTIVE_SPIN_US`` and only falls back to the asynchronous (yield +
reschedule) path when the transfer is genuinely slow, e.g. during a
brown-out.
"""

from repro.remotefile import AccessPolicy
from repro.remotefile.api import ADAPTIVE_SPIN_US
from repro.storage import KB

from .test_remotefile import complete, create_open, make_fs


def busy_core_us(cpu, action):
    """Core-µs consumed on ``cpu`` while ``action()`` runs."""
    cores = cpu.cores
    cores._account()
    before = cores._busy_area
    action()
    cores._account()
    return cores._busy_area - before


def setup(policy):
    cluster, fs, _broker, _proxies = make_fs(memory_servers=1, policy=policy)
    file = create_open(cluster, fs, size=16 * KB * 1024)
    db = fs.owner
    return cluster, file, db


class TestAdaptiveFastPath:
    def test_fast_transfer_spins_and_never_switches(self):
        cluster, file, db = setup(AccessPolicy.ADAPTIVE)
        sim = cluster.sim
        start = sim.now
        busy = busy_core_us(db.cpu, lambda: complete(sim, file.read(0, 8 * KB)))
        latency = sim.now - start
        assert db.cpu.context_switches == 0
        assert latency < ADAPTIVE_SPIN_US * 2
        # Spinning: the core is busy for essentially the whole wait.
        assert busy >= latency * 0.5

    def test_fast_path_costs_the_same_as_sync(self):
        results = {}
        for policy in (AccessPolicy.ADAPTIVE, AccessPolicy.SYNC):
            cluster, file, db = setup(policy)
            sim = cluster.sim
            start = sim.now
            busy = busy_core_us(db.cpu, lambda: complete(sim, file.read(0, 8 * KB)))
            results[policy] = (sim.now - start, busy)
        adaptive, sync = results[AccessPolicy.ADAPTIVE], results[AccessPolicy.SYNC]
        assert adaptive[0] == sync[0]  # same latency
        assert abs(adaptive[1] - sync[1]) < 1.0  # same core-µs, no switch tax


class TestAdaptiveFallback:
    def test_slow_transfer_yields_the_core(self):
        cluster, file, db = setup(AccessPolicy.ADAPTIVE)
        sim = cluster.sim
        # Brown out the provider link: transfers now dwarf the spin budget.
        file.leases[0].region.server.nic.degrade(latency_multiplier=100.0)
        start = sim.now
        busy = busy_core_us(db.cpu, lambda: complete(sim, file.read(0, 8 * KB)))
        latency = sim.now - start
        assert db.cpu.context_switches == 1
        assert latency > ADAPTIVE_SPIN_US * 4
        # The core was held only for the spin budget, the switch-in and
        # the memcpy — not for the whole degraded wait.
        assert busy < latency * 0.5
        assert busy >= ADAPTIVE_SPIN_US + db.cpu.context_switch_us

    def test_fallback_pays_reschedule_delay(self):
        slow = setup(AccessPolicy.ADAPTIVE)
        sync = setup(AccessPolicy.SYNC)
        latencies = {}
        for label, (cluster, file, _db) in (("adaptive", slow), ("sync", sync)):
            file.leases[0].region.server.nic.degrade(latency_multiplier=100.0)
            sim = cluster.sim
            start = sim.now
            complete(sim, file.read(0, 8 * KB))
            latencies[label] = sim.now - start
        # Same transfer; the adaptive fallback adds the reschedule +
        # context-switch penalty on top of the SYNC latency.
        penalty = latencies["adaptive"] - latencies["sync"]
        _cluster, _file, db = slow
        expected = db.cpu.reschedule_delay_us + db.cpu.context_switch_us
        assert abs(penalty - expected) < 1.0
