"""Tests for the lightweight file API over remote memory (Table 2)."""

import pytest

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.net import Network
from repro.remotefile import (
    AccessPolicy,
    RemoteFileError,
    RemoteMemoryFilesystem,
    RemoteMemoryUnavailable,
    StagingPool,
)
from repro.storage import GB, KB, MB


def make_fs(memory_servers=2, spare_gb=2, policy=AccessPolicy.SYNC):
    cluster = Cluster()
    network = Network(cluster.sim)
    db = cluster.add_server("db", memory_bytes=32 * GB)
    network.attach(db)
    broker = MemoryBroker(cluster.sim)
    proxies = []
    for index in range(memory_servers):
        server = cluster.add_server(f"mem{index}", memory_bytes=64 * GB)
        network.attach(server)
        server.commit_memory(server.memory_bytes - spare_gb * GB)
        proxy = MemoryProxy(server, broker, mr_bytes=16 * MB)
        proxies.append(proxy)
    fs = RemoteMemoryFilesystem(db, broker, StagingPool(db), policy=policy)
    sim = cluster.sim

    def setup():
        yield from fs.initialize()
        for proxy in proxies:
            yield from proxy.offer_available()

    sim.run_until_complete(sim.spawn(setup()))
    return cluster, fs, broker, proxies


def complete(sim, generator):
    return sim.run_until_complete(sim.spawn(generator))


def create_open(cluster, fs, name="f", size=64 * MB, **kwargs):
    file = complete(cluster.sim, fs.create(name, size, **kwargs))
    complete(cluster.sim, file.open())
    return file


class TestLifecycle:
    def test_create_leases_cover_size(self):
        cluster, fs, broker, _ = make_fs()
        file = complete(cluster.sim, fs.create("f", 100 * MB))
        assert file.size >= 100 * MB
        assert len(broker.active_leases) == len(file.leases)

    def test_open_connects_to_all_providers(self):
        cluster, fs, _broker, _ = make_fs(memory_servers=3)
        file = create_open(cluster, fs, size=64 * MB, spread=True)
        assert set(file._qps) == set(file.providers)
        assert len(file.providers) == 3

    def test_delete_releases_leases(self):
        cluster, fs, broker, _ = make_fs()
        file = create_open(cluster, fs)
        before = broker.available_bytes()
        complete(cluster.sim, fs.delete(file))
        assert broker.available_bytes() == before + file.size
        assert not file.is_open

    def test_duplicate_name_rejected(self):
        cluster, fs, _broker, _ = make_fs()
        complete(cluster.sim, fs.create("f", 16 * MB))
        with pytest.raises(RemoteFileError):
            complete(cluster.sim, fs.create("f", 16 * MB))

    def test_read_requires_open(self):
        cluster, fs, _broker, _ = make_fs()
        file = complete(cluster.sim, fs.create("f", 16 * MB))
        with pytest.raises(RemoteFileError):
            complete(cluster.sim, file.read(0, 8 * KB))


class TestDataPath:
    def test_byte_roundtrip(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs)
        payload = bytes(range(256)) * 32  # 8 KB
        complete(cluster.sim, file.write(12345, payload))
        assert complete(cluster.sim, file.read(12345, len(payload))) == payload

    def test_write_spanning_regions(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs, size=32 * MB)
        # Write across the 16 MB region boundary.
        payload = b"Z" * (64 * KB)
        offset = 16 * MB - 32 * KB
        complete(cluster.sim, file.write(offset, payload))
        assert complete(cluster.sim, file.read(offset, len(payload))) == payload

    def test_object_roundtrip(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs)
        page = {"page_id": 7, "rows": [(1, "a"), (2, "b")]}
        complete(cluster.sim, file.write_object(8 * KB, 8 * KB, page))
        got = complete(cluster.sim, file.read_object(8 * KB, 8 * KB))
        assert got is page

    def test_object_must_not_span_regions(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs, size=32 * MB)
        with pytest.raises(RemoteFileError):
            complete(cluster.sim, file.write_object(16 * MB - 4 * KB, 8 * KB, object()))

    def test_out_of_range_rejected(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs, size=16 * MB)
        with pytest.raises(RemoteFileError):
            complete(cluster.sim, file.read(16 * MB - 4 * KB, 8 * KB))

    def test_8k_read_latency_is_rdma_class(self):
        cluster, fs, _broker, _ = make_fs()
        file = create_open(cluster, fs)
        complete(cluster.sim, file.write(0, b"x" * 8 * KB))
        start = cluster.sim.now
        complete(cluster.sim, file.read(0, 8 * KB))
        latency = cluster.sim.now - start
        # RDMA read + two memcpys + staging: ~10-20 us, far from the
        # ~600 us of the SSD or ~4500 us of the HDD.
        assert latency < 25

    def test_sync_policy_does_not_context_switch(self):
        cluster, fs, _broker, _ = make_fs(policy=AccessPolicy.SYNC)
        file = create_open(cluster, fs)
        db_cpu = fs.owner.cpu
        complete(cluster.sim, file.read(0, 8 * KB))
        assert db_cpu.context_switches == 0

    def test_async_policy_pays_context_switch(self):
        cluster, fs, _broker, _ = make_fs(policy=AccessPolicy.ASYNC)
        file = create_open(cluster, fs)
        db_cpu = fs.owner.cpu
        complete(cluster.sim, file.read(0, 8 * KB))
        assert db_cpu.context_switches >= 1

    def test_async_slower_than_sync(self):
        def one_read(policy):
            cluster, fs, _broker, _ = make_fs(policy=policy)
            file = create_open(cluster, fs)
            start = cluster.sim.now
            complete(cluster.sim, file.read(0, 8 * KB))
            return cluster.sim.now - start

        assert one_read(AccessPolicy.ASYNC) > one_read(AccessPolicy.SYNC)

    def test_adaptive_policy_fast_path(self):
        cluster, fs, _broker, _ = make_fs(policy=AccessPolicy.ADAPTIVE)
        file = create_open(cluster, fs)
        db_cpu = fs.owner.cpu
        complete(cluster.sim, file.read(0, 8 * KB))
        # An unloaded 8K RDMA read finishes inside the spin budget.
        assert db_cpu.context_switches == 0


class TestFaultTolerance:
    def test_expired_lease_raises_unavailable(self):
        cluster, fs, broker, _ = make_fs()
        file = create_open(cluster, fs, size=16 * MB)
        cluster.sim.run(until=cluster.sim.now + broker.lease_duration_us + 1)
        with pytest.raises(RemoteMemoryUnavailable):
            complete(cluster.sim, file.read(0, 8 * KB))

    def test_revocation_raises_unavailable(self):
        cluster, fs, broker, proxies = make_fs(memory_servers=1, spare_gb=1)
        file = create_open(cluster, fs, size=1 * GB)  # take everything
        complete(cluster.sim, proxies[0].handle_memory_pressure(16 * MB))
        with pytest.raises(RemoteMemoryUnavailable):
            # Some region of the file is gone; probing all of it must fail.
            for offset in range(0, file.size, 16 * MB):
                complete(cluster.sim, file.read(offset, 8 * KB))

    def test_renewal_daemon_keeps_file_alive(self):
        cluster, fs, broker, _ = make_fs()
        broker.lease_duration_us = 1e6
        file = create_open(cluster, fs, size=16 * MB)
        cluster.sim.spawn(fs.renewal_daemon(file))
        cluster.sim.run(until=cluster.sim.now + 5e6)
        complete(cluster.sim, file.read(0, 8 * KB))  # must not raise
        assert file.leases[0].is_valid(cluster.sim.now)
