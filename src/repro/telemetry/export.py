"""Exporters: Chrome trace-event JSON and flat metrics.

The Chrome trace-event format (the ``traceEvents`` JSON Object Format)
is what Perfetto and ``about:tracing`` load directly.  Spans become
``"X"`` (complete) events with microsecond timestamps — conveniently
the simulator's native unit — and each kernel process becomes a track
(``tid``) named via ``"M"`` metadata events, so the interleaving of
query, transfer and device processes is visible on a real timeline.
"""

from __future__ import annotations

import json
from typing import Any

from .tracer import TraceRecorder

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Synthetic process id: the whole simulation is one "process".
TRACE_PID = 1


def to_chrome_trace(tracer: TraceRecorder, label: str = "repro-sim") -> dict[str, Any]:
    """Render every recorded span as a Chrome trace-event JSON object."""
    end_of_trace = tracer.sim.now
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for tid in sorted(tracer.thread_names):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": tracer.thread_names[tid]},
            }
        )
    for span in tracer.spans:
        end = span.end_us if span.end_us is not None else end_of_trace
        args: dict[str, Any] = {"span_id": span.sid, "parent_id": span.parent_id}
        if span.args:
            for key, value in span.args.items():
                args[key] = value if isinstance(value, (int, float, str, bool)) else str(value)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.cat or "span",
                "ts": span.start_us,
                "dur": max(0.0, end - span.start_us),
                "pid": TRACE_PID,
                "tid": span.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: TraceRecorder, path: str, label: str = "repro-sim") -> str:
    """Serialize the trace to ``path``; returns the path for convenience."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer, label=label), fh, indent=1)
    return path


def validate_chrome_trace(obj: Any) -> list[dict[str, Any]]:
    """Assert the trace-event JSON shape Perfetto expects.

    Returns the event list on success; raises ``ValueError`` describing
    the first malformed event otherwise.  Used by the exporter tests
    and by the CI trace-smoke job.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a 'traceEvents' key")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        phase = event["ph"]
        if phase == "M":
            continue
        if phase != "X":
            raise ValueError(f"event {index} has unexpected phase {phase!r}")
        for key in ("ts", "dur", "cat", "args"):
            if key not in event:
                raise ValueError(f"event {index} ('{event['name']}') is missing {key!r}")
        if event["ts"] < 0 or event["dur"] < 0:
            raise ValueError(f"event {index} has negative ts/dur")
        # The whole document must round-trip as JSON (catches raw
        # objects smuggled into args).
        json.dumps(event)
    return events
