"""Critical-path analysis: where did this query spend its time?

The paper's Figure 11 and Figure 14 drill-downs decompose observed
latency into device service, network and CPU components read off
perfmon.  This module does the simulation-side equivalent from a span
trace: given a root span (a query, a page fault, one I/O), attribute
every microsecond of its wall-clock interval to a category.

Attribution rule: for each elementary time interval, among the
*categorized* descendant spans covering it, the **deepest** one wins —
a ``cpu.compute`` span nested inside an ``rdma.read`` counts as CPU,
not network.  Ties (same depth, overlapping concurrent children) break
toward the later-starting, then higher-sid span, which keeps the
decomposition deterministic.  Time inside the root covered by no
categorized descendant is reported as ``"blocked"`` — the query was
waiting on something the trace has no category for (event waits,
scheduler gaps).

Overlap caveat: categories are attributed by *wall-clock coverage* of
the root interval, not summed service time — two concurrent disk reads
covering the same 100 µs contribute 100 µs of ``disk``, exactly like a
perfmon utilization counter would.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .tracer import Span, TraceRecorder

__all__ = ["CATEGORIES", "decompose", "format_breakdown"]

#: Categories instrumentation sites use, in display order.
CATEGORIES = ("cpu", "net", "disk", "queue", "rpc", "fault")


def _descendants(tracer: TraceRecorder, root: Span) -> list[Span]:
    children: dict[int, list[Span]] = {}
    for span in tracer.spans:
        children.setdefault(span.parent_id, []).append(span)
    out: list[Span] = []
    frontier = [root.sid]
    while frontier:
        sid = frontier.pop()
        for child in children.get(sid, ()):
            out.append(child)
            frontier.append(child.sid)
    return out


def decompose(
    tracer: TraceRecorder,
    root: Span,
    categories: Iterable[str] = CATEGORIES,
) -> dict[str, float]:
    """Decompose ``root``'s latency into per-category microseconds.

    Returns ``{category: us, ..., "blocked": us, "total": us}`` where
    the categories plus ``blocked`` sum to ``total`` (the root span's
    duration), up to float rounding.
    """
    wanted = set(categories)
    end_default = tracer.sim.now
    root_start = root.start_us
    root_end = root.end_us if root.end_us is not None else end_default
    total = max(0.0, root_end - root_start)
    out = {category: 0.0 for category in categories}
    out["blocked"] = total
    out["total"] = total
    if total <= 0.0:
        return out

    # Clip categorized descendants to the root interval.
    clipped: list[tuple[float, float, int, int, str]] = []
    boundaries = {root_start, root_end}
    for span in _descendants(tracer, root):
        if span.cat not in wanted:
            continue
        start = max(root_start, span.start_us)
        end = min(root_end, span.end_us if span.end_us is not None else end_default)
        if end <= start:
            continue
        clipped.append((start, end, span.depth, span.sid, span.cat))
        boundaries.add(start)
        boundaries.add(end)
    if not clipped:
        return out

    # Sweep the elementary intervals; deepest active categorized span
    # wins, ties break toward later start then larger sid.
    edges = sorted(boundaries)
    attributed = 0.0
    for left, right in zip(edges, edges[1:]):
        width = right - left
        if width <= 0.0:
            continue
        winner: Optional[tuple[int, float, int, str]] = None
        for start, end, depth, sid, cat in clipped:
            if start <= left and end >= right:
                key = (depth, start, sid)
                if winner is None or key > (winner[0], winner[1], winner[2]):
                    winner = (depth, start, sid, cat)
        if winner is not None:
            out[winner[3]] += width
            attributed += width
    out["blocked"] = max(0.0, total - attributed)
    return out


def format_breakdown(breakdown: dict[str, float], title: str = "critical path") -> str:
    """Render a decomposition as an aligned text table (µs and %)."""
    total = breakdown.get("total", 0.0)
    lines = [title, "-" * len(title)]
    for key, value in breakdown.items():
        if key == "total":
            continue
        share = 100.0 * value / total if total > 0 else 0.0
        lines.append(f"{key:>10s}  {value:12.1f} us  {share:5.1f}%")
    lines.append(f"{'total':>10s}  {total:12.1f} us  100.0%")
    return "\n".join(lines)
