"""Hierarchical metrics registry: one tree for every device and cache.

The repo grew up with scattered ad-hoc :class:`~repro.sim.stats`
instruments — a ``LatencyRecorder`` here, a ``Counter`` there, counters
as plain ints on device objects.  The registry unifies them behind
dotted names (``db.dev.ssd0.read_latency``) so a benchmark can walk one
tree instead of knowing where each instrument lives.

Three ways instruments enter the tree:

* ``counter()/histogram()/timeline()`` — get-or-create by name (the
  same name always returns the same instance, so two call sites share
  one instrument);
* ``register()`` — adopt an instrument that already exists on a device
  (a ``BlockDevice.read_latency`` recorder, say) without copying it;
* ``gauge()`` — register a zero-argument callable sampled lazily at
  export time (utilization, queue depth, bytes cached).

Name semantics: one name maps to exactly one instrument.  Re-creating
under the same name with a *different* kind — or ``register()``-ing a
second object under a taken name — raises :class:`MetricsError`, which
turns silent double-accounting into a loud failure.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.stats import Counter, LatencyRecorder, TimeSeries, summarize

__all__ = ["Gauge", "MetricsError", "MetricsRegistry"]


class MetricsError(RuntimeError):
    """Name collision or kind mismatch in a :class:`MetricsRegistry`."""


class Gauge:
    """A lazily-sampled value: wraps a zero-argument callable."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]):
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class MetricsRegistry:
    """Flat store of instruments addressable by dotted name."""

    def __init__(self, name: str = "metrics"):
        self.name = name
        self._instruments: dict[str, Any] = {}

    # -- creation ----------------------------------------------------------

    def _get_or_create(self, name: str, kind: type, factory: Callable[[], Any]) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"{name!r} is already a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def histogram(self, name: str) -> LatencyRecorder:
        return self._get_or_create(name, LatencyRecorder, lambda: LatencyRecorder(name))

    def timeline(self, name: str, bucket_us: float) -> TimeSeries:
        series = self._get_or_create(
            name, TimeSeries, lambda: TimeSeries(bucket_us=bucket_us, name=name)
        )
        if series.bucket_us != bucket_us:
            raise MetricsError(
                f"{name!r} already has bucket_us={series.bucket_us:g}, "
                f"requested {bucket_us:g}"
            )
        return series

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        if name in self._instruments:
            raise MetricsError(f"metric name {name!r} already registered")
        gauge = Gauge(name, fn)
        self._instruments[name] = gauge
        return gauge

    def register(self, name: str, instrument: Any) -> Any:
        """Adopt an existing instrument (device recorder, counter, ...).

        Idempotent for the *same object*; a different object under a
        taken name is a collision.
        """
        existing = self._instruments.get(name)
        if existing is not None:
            if existing is instrument:
                return instrument
            raise MetricsError(f"metric name {name!r} already registered")
        self._instruments[name] = instrument
        return instrument

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Any:
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self, prefix: str = "") -> list[str]:
        """Sorted instrument names, optionally under a dotted prefix."""
        if not prefix:
            return sorted(self._instruments)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return sorted(n for n in self._instruments if n == prefix or n.startswith(dotted))

    def subtree(self, prefix: str) -> dict[str, Any]:
        """Instruments under ``prefix``, keyed by their remaining suffix."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        out: dict[str, Any] = {}
        for name in self.names(prefix):
            key = name[len(dotted):] if name.startswith(dotted) else name
            out[key] = self._instruments[name]
        return out

    # -- export ------------------------------------------------------------

    def flat(self, prefix: str = "") -> dict[str, float]:
        """Flatten the tree into a benchmark-friendly ``{name: value}``.

        Counters and gauges yield one entry; histograms expand through
        :func:`~repro.sim.stats.summarize`; timelines report their
        bucket count and total (the full series stays available on the
        instrument itself).
        """
        out: dict[str, float] = {}
        for name in self.names(prefix):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name] = float(instrument.read())
            elif isinstance(instrument, LatencyRecorder):
                for stat, value in summarize(instrument).items():
                    out[f"{name}.{stat}"] = value
            elif isinstance(instrument, TimeSeries):
                out[f"{name}.buckets"] = float(len(instrument.buckets))
                out[f"{name}.total"] = float(sum(instrument.buckets.values()))
            else:
                value = _read_unknown(instrument)
                if value is not None:
                    out[name] = value
        return out


def _read_unknown(instrument: Any) -> Optional[float]:
    """Best-effort numeric read for foreign instruments."""
    if isinstance(instrument, (int, float)):
        return float(instrument)
    for attr in ("value", "read"):
        candidate = getattr(instrument, attr, None)
        if callable(candidate):
            try:
                return float(candidate())
            except Exception:
                return None
        if isinstance(candidate, (int, float)):
            return float(candidate)
    return None
