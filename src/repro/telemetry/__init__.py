"""repro.telemetry: virtual-time tracing, metrics and Perfetto export.

Three pieces:

* :mod:`~repro.telemetry.tracer` — spans in virtual microseconds with
  causal parent links, zero-cost no-op by default (the DES kernel holds
  :data:`NOOP_TRACER` until :func:`install` swaps in a recorder);
* :mod:`~repro.telemetry.metrics` — a dotted-name registry unifying the
  :mod:`repro.sim.stats` instruments scattered across devices/caches;
* :mod:`~repro.telemetry.export` / :mod:`~repro.telemetry.critical_path`
  — Chrome trace-event JSON (Perfetto / ``about:tracing``), flat metric
  dicts, and the Figure-11/14-style latency decomposition.

Import structure note: ``sim/kernel.py`` imports the tracer from this
package, so only the dependency-free tracer module loads eagerly here;
everything that imports back into ``repro`` (metrics, binders) resolves
lazily via PEP 562.
"""

from __future__ import annotations

from .tracer import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopSpan,
    NoopTracer,
    Span,
    TraceRecorder,
    install,
)

__all__ = [
    "Span",
    "NoopSpan",
    "NoopTracer",
    "TraceRecorder",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "install",
    "Gauge",
    "MetricsError",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "CATEGORIES",
    "decompose",
    "format_breakdown",
    "attach",
]

_LAZY = {
    "Gauge": ("repro.telemetry.metrics", "Gauge"),
    "MetricsError": ("repro.telemetry.metrics", "MetricsError"),
    "MetricsRegistry": ("repro.telemetry.metrics", "MetricsRegistry"),
    "to_chrome_trace": ("repro.telemetry.export", "to_chrome_trace"),
    "write_chrome_trace": ("repro.telemetry.export", "write_chrome_trace"),
    "validate_chrome_trace": ("repro.telemetry.export", "validate_chrome_trace"),
    "CATEGORIES": ("repro.telemetry.critical_path", "CATEGORIES"),
    "decompose": ("repro.telemetry.critical_path", "decompose"),
    "format_breakdown": ("repro.telemetry.critical_path", "format_breakdown"),
    "attach": ("repro.telemetry.attach", None),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value
