"""Binders: adopt existing component instruments into one registry.

Devices, NICs, CPUs and caches already keep their own counters and
recorders (grown organically alongside the models).  Rather than move
those — every benchmark and fault test reads them in place — the
binders *register* them into a :class:`~repro.telemetry.MetricsRegistry`
under stable dotted names, and wrap plain-int counters in lazy gauges.
Everything is duck-typed: a binder reads only attributes the component
actually exposes, so it works across design variants (e.g. an IoTarget
with no database, a DbSetup with no remote memory).
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry

__all__ = [
    "register_device",
    "register_nic",
    "register_cpu",
    "register_pool",
    "register_extension",
    "register_tier",
    "register_remote_file",
    "register_reliability",
    "register_txn",
    "register_dist",
    "register_server",
    "register_cluster",
]


def _gauge_attr(registry: MetricsRegistry, name: str, obj: Any, attr: str) -> None:
    if hasattr(obj, attr):
        registry.gauge(name, lambda: float(getattr(obj, attr)))


def register_device(registry: MetricsRegistry, prefix: str, device: Any) -> None:
    """Adopt a :class:`~repro.storage.BlockDevice`'s instruments."""
    registry.register(f"{prefix}.read_latency", device.read_latency)
    registry.register(f"{prefix}.write_latency", device.write_latency)
    for attr in ("reads", "writes", "bytes_read", "bytes_written"):
        _gauge_attr(registry, f"{prefix}.{attr}", device, attr)
    if getattr(device, "throughput_series", None) is not None:
        registry.register(f"{prefix}.throughput", device.throughput_series)


def register_nic(registry: MetricsRegistry, prefix: str, nic: Any) -> None:
    for attr in ("bytes_sent", "bytes_received", "messages_sent", "retransmits"):
        _gauge_attr(registry, f"{prefix}.{attr}", nic, attr)
    registry.gauge(f"{prefix}.queue_depth", lambda: float(nic.queue_depth))


def register_cpu(registry: MetricsRegistry, prefix: str, cpu: Any) -> None:
    _gauge_attr(registry, f"{prefix}.context_switches", cpu, "context_switches")
    registry.gauge(f"{prefix}.utilization", lambda: float(cpu.utilization()))
    if hasattr(cpu, "mark_utilization"):
        # Windowed gauge: utilization since the *previous* poll, anchored
        # on an exact busy-area snapshot (an unanchored ``since`` would
        # overestimate — see Resource.utilization).
        window_start = [cpu.mark_utilization()]

        def _window() -> float:
            since = window_start[0]
            value = float(cpu.utilization(since))
            window_start[0] = cpu.mark_utilization()
            return value

        registry.gauge(f"{prefix}.utilization_window", _window)
    if getattr(cpu, "busy_series", None) is not None:
        registry.register(f"{prefix}.busy", cpu.busy_series)


def register_pool(registry: MetricsRegistry, prefix: str, pool: Any) -> None:
    """Adopt a :class:`~repro.engine.BufferPool`'s instruments."""
    registry.register(f"{prefix}.fault_latency", pool.fault_latency)
    for attr in ("hits", "misses", "ext_hits", "base_reads", "prefetches"):
        _gauge_attr(registry, f"{prefix}.{attr}", pool, attr)
    registry.gauge(f"{prefix}.hit_ratio", lambda: float(pool.hit_ratio))
    if pool.extension is not None:
        register_extension(registry, f"{prefix}.ext", pool.extension)


def register_extension(registry: MetricsRegistry, prefix: str, ext: Any) -> None:
    """Adopt a single extension *or* a tier stack.

    Aggregate names stay identical either way (benchmarks read
    ``bp.ext.hits`` regardless of topology); a stack additionally
    exposes each level under ``{prefix}.tier.<name>.*`` plus its
    demotion/promotion counters.
    """
    registry.register(f"{prefix}.read_latency", ext.read_latency)
    for attr in ("hits", "misses", "failures", "transient_failures", "quarantine_skips"):
        _gauge_attr(registry, f"{prefix}.{attr}", ext, attr)
    if getattr(ext, "bytes_series", None) is not None:
        registry.register(f"{prefix}.bytes", ext.bytes_series)
    levels = getattr(ext, "levels", None)
    if levels:
        _gauge_attr(registry, f"{prefix}.demotions", ext, "demotions")
        _gauge_attr(registry, f"{prefix}.promotions", ext, "promotions")
        for level in levels:
            register_tier(registry, f"{prefix}.tier.{level.tier.name}", level)


def register_tier(registry: MetricsRegistry, prefix: str, level: Any) -> None:
    """One level of a tier stack: per-tier accounting and occupancy."""
    registry.register(f"{prefix}.read_latency", level.read_latency)
    for attr in (
        "hits", "misses", "failures", "transient_failures",
        "quarantine_skips", "pages_lost_to_faults",
        "parked_pages", "capacity_pages",
    ):
        _gauge_attr(registry, f"{prefix}.{attr}", level, attr)


def register_remote_file(registry: MetricsRegistry, prefix: str, file: Any) -> None:
    registry.register(f"{prefix}.io_latency", file.io_latency)
    _gauge_attr(registry, f"{prefix}.reads", file, "reads")
    _gauge_attr(registry, f"{prefix}.writes", file, "writes")


def register_reliability(registry: MetricsRegistry, prefix: str, layer: Any) -> None:
    registry.gauge(f"{prefix}.deadline_hits", lambda: float(sum(layer.deadline_hits.values())))
    registry.gauge(f"{prefix}.retries", lambda: float(sum(layer.retries.values())))
    registry.gauge(f"{prefix}.hedges_issued", lambda: float(layer.hedge.issued))
    registry.gauge(
        f"{prefix}.quarantined", lambda: float(len(layer.breakers.quarantined()))
    )


def register_txn(registry: MetricsRegistry, prefix: str, manager: Any) -> None:
    """Adopt a :class:`~repro.txn.TransactionManager`'s instruments.

    Fleet runs bind each tenant's managers under
    ``fleet.tenant.<name>.txn.*``; single-engine harnesses typically use
    plain ``txn`` as the prefix.
    """
    for attr in (
        "begins", "commits", "aborts", "deadlock_aborts", "doom_aborts",
        "dooms", "retries", "exhausted",
    ):
        _gauge_attr(registry, f"{prefix}.{attr}", manager, attr)
    registry.gauge(f"{prefix}.active", lambda: float(manager.active_count))
    locks = getattr(manager, "locks", None)
    if locks is not None:
        registry.gauge(f"{prefix}.deadlocks_detected", lambda: float(locks.deadlocks))
        registry.gauge(f"{prefix}.lock_waits", lambda: float(locks.waits))
        registry.gauge(f"{prefix}.lock_wait_us", lambda: float(locks.lock_wait_us))


def register_dist(registry: MetricsRegistry, prefix: str, runtime: Any) -> None:
    """Adopt an :class:`~repro.dist.ExchangeRuntime`'s per-exchange stats.

    Exchange ids are declared at plan-compile time (the planner calls
    ``runtime.stat`` eagerly), so bind *after* compiling — only ids
    known at bind time get gauges.
    """
    for exchange_id in sorted(runtime.stats):
        stats = runtime.stats[exchange_id]
        for attr in ("rows", "bytes", "batches", "credit_stalls_us"):
            _gauge_attr(registry, f"{prefix}.exchange.{exchange_id}.{attr}", stats, attr)
    # Fabric-wide totals: *live* over the stats dict, so exchanges a
    # later compile declares (multi-join plans add .shuffle2, ...) are
    # counted without re-binding.
    for attr in ("rows", "bytes", "batches", "credit_stalls_us"):
        registry.gauge(
            f"{prefix}.exchange.total.{attr}",
            lambda attr=attr: float(
                sum(getattr(stats, attr) for stats in runtime.stats.values())
            ),
        )


def register_server(registry: MetricsRegistry, prefix: str, server: Any) -> None:
    """One server: CPU, NIC and every attached device."""
    if getattr(server, "cpu", None) is not None:
        register_cpu(registry, f"{prefix}.cpu", server.cpu)
    if getattr(server, "nic", None) is not None:
        register_nic(registry, f"{prefix}.nic", server.nic)
    for device in getattr(server, "devices", {}).values():
        register_device(registry, f"{prefix}.dev.{device.name}", device)


def register_cluster(registry: MetricsRegistry, cluster: Any) -> None:
    for name, server in sorted(cluster.servers.items()):
        register_server(registry, f"server.{name}", server)
