"""Virtual-time span tracer for the DES stack.

The paper reads its drill-downs (Figures 11 and 14) off perfmon; this
module is the simulation-side equivalent: spans opened in *virtual*
microseconds with causal parent links, so a query's latency can be
decomposed into operator / page-fault / NIC / device time after the
fact.

Design constraints (and how they are met):

* **Zero cost when disabled.**  Every :class:`~repro.sim.Simulator` is
  born with :data:`NOOP_TRACER`; its hooks are empty methods and its
  ``span()`` returns one shared no-op context manager, so uninstrumented
  runs pay a single attribute load plus a no-op call per span site.
* **No perturbation of virtual time or determinism.**  The tracer never
  creates events, never yields, and never advances the clock — it only
  *reads* ``sim.now``.  Same seed with tracing on or off therefore
  produces bit-identical results and virtual clocks (asserted in
  ``tests/telemetry/test_determinism.py``).
* **Interleaving-safe causality.**  Kernel processes interleave, so a
  single global span stack would attribute children to whichever
  process last resumed.  The tracer keeps one stack *per process* (the
  kernel exposes the currently-resuming process as
  ``sim._active_process``) and, when a process spawns another, the
  child inherits the spawner's innermost open span as its causal
  parent.  That is how a page-fault span ends up as the ancestor of the
  NIC spans opened inside the spawned RDMA transfer process.

This module deliberately imports nothing from the rest of ``repro`` —
``sim/kernel.py`` imports :data:`NOOP_TRACER` from here, so any import
back into the package would cycle.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "Span",
    "NoopSpan",
    "NoopTracer",
    "TraceRecorder",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "install",
]


class Span:
    """One timed interval in virtual microseconds, with a causal parent.

    Used as a context manager; ``__exit__`` stamps the end time off the
    simulator clock.  ``parent_id == 0`` marks a root span.
    """

    __slots__ = (
        "sid",
        "parent_id",
        "name",
        "cat",
        "start_us",
        "end_us",
        "tid",
        "depth",
        "args",
        "_tracer",
        "_stack",
    )

    def __init__(
        self,
        tracer: "TraceRecorder",
        sid: int,
        parent_id: int,
        name: str,
        cat: Optional[str],
        start_us: float,
        tid: int,
        depth: int,
        args: Optional[dict],
        stack: list,
    ):
        self.sid = sid
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.tid = tid
        self.depth = depth
        self.args = args
        self._tracer = tracer
        self._stack = stack

    @property
    def duration_us(self) -> float:
        end = self.end_us if self.end_us is not None else self._tracer.sim.now
        return end - self.start_us

    def set(self, **args: Any) -> "Span":
        """Attach (or update) key/value annotations on the span."""
        if self.args is None:
            self.args = {}
        self.args.update(args)
        return self

    def close(self) -> None:
        if self.end_us is None:
            self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.end_us is None:
            self.set(error=type(exc).__name__)
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, sid={self.sid}, "
            f"parent={self.parent_id}, [{self.start_us:g}, {self.end_us}])"
        )


class NoopSpan:
    """Shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    def set(self, **args: Any) -> "NoopSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NoopTracer:
    """The default tracer: every hook is a no-op.

    Instrumentation sites test nothing — they call ``sim.tracer.span``
    unconditionally and the cost collapses to one method call returning
    a shared object.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: Optional[str] = None, **args: Any) -> NoopSpan:
        return NOOP_SPAN

    def current(self) -> None:
        return None

    def on_spawn(self, process: Any) -> None:
        pass

    def on_finish(self, process: Any) -> None:
        pass


NOOP_SPAN = NoopSpan()
NOOP_TRACER = NoopTracer()


class TraceRecorder:
    """Recording tracer: collects every span opened on one simulator.

    ``install(sim)`` (or constructing one directly and assigning
    ``sim.tracer``) switches a simulator from :data:`NOOP_TRACER` to a
    recorder.  Spans opened outside any process (driver code between
    ``run_until_complete`` calls) land on a "main" pseudo-thread with
    ``tid == 0``.
    """

    enabled = True

    def __init__(self, sim: Any):
        self.sim = sim
        #: Every span ever opened, in opening order (deterministic).
        self.spans: list[Span] = []
        #: tid -> display name, for exporter thread metadata.
        self.thread_names: dict[int, str] = {0: "main"}
        self._stacks: dict[Any, list[Span]] = {}
        self._inherited: dict[Any, Span] = {}
        self._tids: dict[Any, int] = {}
        self._global: list[Span] = []
        self._next_sid = 0
        self._next_tid = 0

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, cat: Optional[str] = None, **args: Any) -> Span:
        """Open a span at ``sim.now`` under the active process's stack."""
        process = getattr(self.sim, "_active_process", None)
        if process is None:
            stack = self._global
            tid = 0
            parent = stack[-1] if stack else None
        else:
            stack = self._stacks.get(process)
            if stack is None:
                stack = self._stacks[process] = []
            parent = stack[-1] if stack else self._inherited.get(process)
            tid = self._tids.get(process)
            if tid is None:
                self._next_tid += 1
                tid = self._tids[process] = self._next_tid
                self.thread_names[tid] = process.name
        self._next_sid += 1
        span = Span(
            tracer=self,
            sid=self._next_sid,
            parent_id=parent.sid if parent is not None else 0,
            name=name,
            cat=cat,
            start_us=self.sim.now,
            tid=tid,
            depth=parent.depth + 1 if parent is not None else 0,
            args=args or None,
            stack=stack,
        )
        self.spans.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end_us = self.sim.now
        stack = span._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:
            # Out-of-order close (e.g. explicit ``close()`` under an
            # open child): drop it from wherever it sits.
            try:
                stack.remove(span)
            except ValueError:
                pass

    def current(self) -> Optional[Span]:
        """The innermost open span of the active context, if any."""
        process = getattr(self.sim, "_active_process", None)
        if process is None:
            return self._global[-1] if self._global else None
        stack = self._stacks.get(process)
        if stack:
            return stack[-1]
        return self._inherited.get(process)

    # -- kernel hooks ------------------------------------------------------

    def on_spawn(self, process: Any) -> None:
        """Called by ``Process.__init__``: inherit the spawner's span."""
        parent = self.current()
        if parent is not None:
            self._inherited[process] = parent

    def on_finish(self, process: Any) -> None:
        """Called when a process ends: release its per-process state."""
        self._stacks.pop(process, None)
        self._inherited.pop(process, None)
        self._tids.pop(process, None)

    # -- queries -----------------------------------------------------------

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id == 0]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.sid]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def by_sid(self, sid: int) -> Optional[Span]:
        for span in self.spans:
            if span.sid == sid:
                return span
        return None

    def depth_of(self, span: Span) -> int:
        """Parent-chain length: 0 for roots (cross-process aware)."""
        index = {s.sid: s for s in self.spans}
        depth = 0
        while span.parent_id:
            span = index[span.parent_id]
            depth += 1
        return depth

    def max_depth(self) -> int:
        """Deepest parent-chain nesting across the whole trace."""
        index = {s.sid: s for s in self.spans}
        best = 0
        for span in self.spans:
            depth = 0
            walk = span
            while walk.parent_id:
                walk = index[walk.parent_id]
                depth += 1
            best = max(best, depth)
        return best


def install(sim: Any) -> TraceRecorder:
    """Attach a recording tracer to ``sim`` and return it."""
    tracer = TraceRecorder(sim)
    sim.tracer = tracer
    return tracer
