"""Lease objects handed out by the memory broker.

A lease grants one database server exclusive read/write access to one
memory region on a memory server for a bounded time.  The holder must
renew before expiry; if renewal fails (broker revoked it, or the memory
server withdrew the region under local pressure) the holder must stop
using the region.  Correctness never depends on the lease — remote
memory is best-effort (Section 4.1.5).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..net.rdma import MemoryRegion

__all__ = ["Lease", "LeaseState"]

_lease_ids = itertools.count(1)


class LeaseState(enum.Enum):
    ACTIVE = "active"
    EXPIRED = "expired"
    RELEASED = "released"
    REVOKED = "revoked"


@dataclass
class Lease:
    region: MemoryRegion
    holder: str
    expires_at_us: float
    duration_us: float
    lease_id: int = field(default_factory=lambda: next(_lease_ids))
    state: LeaseState = LeaseState.ACTIVE

    def is_valid(self, now_us: float) -> bool:
        return self.state is LeaseState.ACTIVE and now_us < self.expires_at_us

    @property
    def provider(self) -> str:
        return self.region.server.name

    def __repr__(self) -> str:
        return (
            f"<Lease {self.lease_id} {self.holder}->{self.provider} "
            f"{self.region.size}B {self.state.value}>"
        )
