"""Replicated metadata store backing the memory broker.

The paper stores all broker state in Zookeeper so that a broker failure
is tolerated by electing a new broker (Section 4.2).  We model the store
as a linearizable key-value service with a fixed operation latency
(quorum round trip) and support for compare-and-set, which is all the
lease machinery needs.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import Simulator
from ..sim.kernel import ProcessGenerator

__all__ = ["MetadataStore", "CasConflict"]


class CasConflict(RuntimeError):
    """Raised when a compare-and-set loses to a concurrent writer."""


class MetadataStore:
    """Zookeeper-flavoured KV store: versioned entries, quorum latency."""

    def __init__(self, sim: Simulator, op_latency_us: float = 200.0):
        self.sim = sim
        self.op_latency_us = op_latency_us
        self._data: dict[str, tuple[int, Any]] = {}
        self.operations = 0

    def _charge(self) -> ProcessGenerator:
        self.operations += 1
        yield self.sim.timeout(self.op_latency_us)

    def get(self, key: str) -> ProcessGenerator:
        """Return ``(version, value)`` or ``None`` if absent."""
        yield from self._charge()
        return self._data.get(key)

    def put(self, key: str, value: Any) -> ProcessGenerator:
        """Unconditional write; returns the new version."""
        yield from self._charge()
        version = self._data[key][0] + 1 if key in self._data else 1
        self._data[key] = (version, value)
        return version

    def cas(self, key: str, expected_version: int, value: Any) -> ProcessGenerator:
        """Write only if the current version matches; returns new version.

        ``expected_version == 0`` means "create only if absent".
        """
        yield from self._charge()
        current = self._data.get(key)
        current_version = current[0] if current is not None else 0
        if current_version != expected_version:
            raise CasConflict(f"{key}: version {current_version} != {expected_version}")
        version = current_version + 1
        self._data[key] = (version, value)
        return version

    def delete(self, key: str) -> ProcessGenerator:
        yield from self._charge()
        self._data.pop(key, None)

    def keys(self, prefix: str = "") -> ProcessGenerator:
        yield from self._charge()
        return sorted(k for k in self._data if k.startswith(prefix))

    # Synchronous peeks for tests/assertions (no latency charged).

    def peek(self, key: str) -> Optional[Any]:
        entry = self._data.get(key)
        return entry[1] if entry is not None else None

    def peek_keys(self, prefix: str = "") -> list[str]:
        """Sorted keys under ``prefix`` without charging quorum latency."""
        return sorted(k for k in self._data if k.startswith(prefix))
