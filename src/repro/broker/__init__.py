"""Cluster memory brokering: proxies, leases, broker, metadata store."""

from .broker import (
    BrokerError,
    BrokerUnavailable,
    InsufficientMemory,
    MemoryBroker,
    PlacementHook,
    RevocationListeners,
)
from .lease import Lease, LeaseState
from .metadata import CasConflict, MetadataStore
from .proxy import DEFAULT_MR_BYTES, MemoryProxy

__all__ = [
    "BrokerError",
    "BrokerUnavailable",
    "CasConflict",
    "DEFAULT_MR_BYTES",
    "InsufficientMemory",
    "Lease",
    "LeaseState",
    "MemoryBroker",
    "MemoryProxy",
    "MetadataStore",
    "PlacementHook",
    "RevocationListeners",
]
