"""The cluster memory broker.

Design mirrors Section 4.2: every memory server runs a proxy that pins
and NIC-registers its unused memory as fixed-size memory regions (MRs)
and reports them to the broker.  A database server with unmet memory
demand asks the broker for leases; the broker picks providers, records
the mapping in the replicated metadata store, and gets out of the data
path — transfers then flow directly between the two servers' NICs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from ..net.rdma import MemoryRegion
from ..sim import Simulator
from ..sim.kernel import ProcessGenerator
from .lease import Lease, LeaseState
from .metadata import MetadataStore

__all__ = [
    "MemoryBroker",
    "BrokerError",
    "BrokerUnavailable",
    "InsufficientMemory",
    "PlacementHook",
    "RevocationListeners",
]

#: Pluggable provider-selection hook: called once per MR grant with the
#: requesting holder, the candidate providers that still have unleased
#: MRs (in the broker's default order) and the broker itself; returns
#: the provider to take the next MR from.  Returning ``None`` or a
#: provider with nothing available falls back to the default choice.
PlacementHook = Callable[[str, list, "MemoryBroker"], Optional[str]]


class BrokerError(RuntimeError):
    pass


class InsufficientMemory(BrokerError):
    """Not enough unleased remote memory in the cluster."""


class BrokerUnavailable(BrokerError):
    """The broker process is down (restarting); retry after recovery."""


class RevocationListeners:
    """Per-holder revocation callbacks, fired in registration order.

    Historically a plain ``dict[str, callable]`` where a second
    registration silently overwrote the first — the remote filesystem
    and the fleet marketplace both need to observe revocations, so each
    holder now keeps an ordered list.  Item assignment *adds* a listener
    (it no longer replaces) so the old ``listeners[holder] = fn`` call
    sites keep working; registering the same callable twice is a no-op,
    and fire order is registration order, deterministically.
    """

    def __init__(self):
        self._by_holder: dict[str, list[Callable[[Lease], None]]] = {}

    def add(self, holder: str, fn: Callable[[Lease], None]) -> Callable[[Lease], None]:
        listeners = self._by_holder.setdefault(holder, [])
        if fn not in listeners:
            listeners.append(fn)
        return fn

    def remove(self, holder: str, fn: Callable[[Lease], None]) -> None:
        listeners = self._by_holder.get(holder)
        if listeners and fn in listeners:
            listeners.remove(fn)
            if not listeners:
                del self._by_holder[holder]

    def get(self, holder: str) -> tuple[Callable[[Lease], None], ...]:
        """Snapshot of the holder's listeners in registration order."""
        return tuple(self._by_holder.get(holder, ()))

    def __setitem__(self, holder: str, fn: Callable[[Lease], None]) -> None:
        self.add(holder, fn)

    def __contains__(self, holder: str) -> bool:
        return holder in self._by_holder

    def __len__(self) -> int:
        return sum(len(listeners) for listeners in self._by_holder.values())


class MemoryBroker:
    """Tracks available MRs and grants timed, exclusive leases on them."""

    #: Default lease duration (30 simulated seconds).
    DEFAULT_LEASE_US = 30e6

    def __init__(
        self,
        sim: Simulator,
        store: MetadataStore | None = None,
        lease_duration_us: float = DEFAULT_LEASE_US,
    ):
        self.sim = sim
        self.store = store if store is not None else MetadataStore(sim)
        self.lease_duration_us = lease_duration_us
        # Available (unleased) regions per provider server, FIFO.
        self._available: dict[str, deque[MemoryRegion]] = {}
        self._leases: dict[int, Lease] = {}
        #: Callbacks fired when a lease is revoked: holder -> [fn(lease)].
        self.revocation_listeners = RevocationListeners()
        #: Provider-selection hook for non-``spread`` grants.  ``None``
        #: preserves the classic drain-first-provider order bit for bit;
        #: the fleet marketplace installs anti-affinity spreading here.
        self.placement: Optional[PlacementHook] = None
        #: Fault state: all broker RPCs raise BrokerUnavailable while down.
        self.alive = True

    def add_revocation_listener(
        self, holder: str, fn: Callable[[Lease], None]
    ) -> Callable[[Lease], None]:
        """Register ``fn`` to observe ``holder``'s revocations (multi-listener)."""
        return self.revocation_listeners.add(holder, fn)

    # -- fault hooks -------------------------------------------------------

    def _require_up(self) -> None:
        if not self.alive:
            raise BrokerUnavailable("broker is down")

    def fail(self) -> None:
        """Crash the broker process: volatile state stays frozen, every
        RPC fails until :meth:`recover` replays the metadata store."""
        self.alive = False

    def recover(self, replay: bool = True) -> ProcessGenerator:
        """Elect a new broker and rebuild its state (paper Section 4.2).

        With ``replay=True`` the lease table is reconstructed from the
        replicated metadata store, so leases survive the restart; with
        ``replay=False`` the metadata was lost too and every active
        lease is terminated as REVOKED.  Returns the surviving leases.
        """
        keys = yield from self.store.keys("leases/")
        recorded = {key.rsplit("/", 1)[-1] for key in keys}
        survivors: list[Lease] = []
        self.alive = True
        for lease in list(self._leases.values()):
            if lease.state is not LeaseState.ACTIVE:
                continue
            if replay and str(lease.lease_id) in recorded:
                survivors.append(lease)
            else:
                yield from self._terminate(lease, LeaseState.REVOKED)
        # Sweep anything that expired while the broker was down.
        self.check_expiry()
        return [lease for lease in survivors if lease.state is LeaseState.ACTIVE]

    def fail_provider(self, provider: str) -> ProcessGenerator:
        """A memory server crashed: its regions are gone, not reusable.

        Unleased MRs of the provider are forgotten (the memory they
        pinned no longer exists) and every active lease on the provider
        is revoked with listener notification.  Returns the revoked
        leases so injectors/monitors can account the damage.
        """
        for region in self._available.pop(provider, ()):  # regions lost
            yield from self.store.delete(f"regions/{provider}/{region.mr_id}")
        revoked: list[Lease] = []
        for lease in self.leases_for(provider=provider):
            lease.state = LeaseState.REVOKED
            lease.region.clear()
            self._leases.pop(lease.lease_id, None)
            yield from self.store.delete(f"leases/{lease.lease_id}")
            self._notify(lease)
            revoked.append(lease)
        return revoked

    def force_expire(self, leases: Iterable[Lease]) -> list[Lease]:
        """Expire ``leases`` immediately (lease-expiry storm injection)."""
        for lease in leases:
            if lease.state is LeaseState.ACTIVE:
                lease.expires_at_us = self.sim.now
        return self.check_expiry()

    # -- provider side ----------------------------------------------------

    def leases_for(
        self, provider: str | None = None, holder: str | None = None
    ) -> list[Lease]:
        """Active leases filtered by provider and/or holder, id-ordered."""
        return [
            lease
            for lease_id, lease in sorted(self._leases.items())
            if lease.state is LeaseState.ACTIVE
            and (provider is None or lease.provider == provider)
            and (holder is None or lease.holder == holder)
        ]

    def register_region(self, region: MemoryRegion) -> ProcessGenerator:
        """A memory proxy offers a pinned, registered MR to the cluster."""
        with self.sim.tracer.span(
            "broker.register_region", cat="rpc", provider=region.server.name
        ):
            self._require_up()
            if not region.registered:
                raise BrokerError("only NIC-registered regions can be brokered")
            self._available.setdefault(region.server.name, deque()).append(region)
            yield from self.store.put(
                f"regions/{region.server.name}/{region.mr_id}", region.size
            )
            return region

    def withdraw_region(self, provider: str) -> ProcessGenerator:
        """Remove one unleased MR of ``provider`` (local memory pressure).

        Returns the region, or ``None`` if every MR of the provider is
        currently leased — in that case the proxy may escalate with
        :meth:`revoke_one`.
        """
        self._require_up()
        queue = self._available.get(provider)
        if not queue:
            return None
        region = queue.pop()
        yield from self.store.delete(f"regions/{provider}/{region.mr_id}")
        return region

    def revoke_one(self, provider: str) -> ProcessGenerator:
        """Forcibly revoke the oldest lease on ``provider`` (pressure path)."""
        self._require_up()
        victim: Optional[Lease] = None
        for lease in self._leases.values():
            if lease.provider == provider and lease.state is LeaseState.ACTIVE:
                if victim is None or lease.expires_at_us < victim.expires_at_us:
                    victim = lease
        if victim is None:
            return None
        yield from self._terminate(victim, LeaseState.REVOKED)
        return victim

    # -- consumer side ----------------------------------------------------

    def available_regions(self, provider: str | None = None) -> list[MemoryRegion]:
        """Unleased regions, in grant (FIFO) order, optionally per provider."""
        if provider is not None:
            return list(self._available.get(provider, ()))
        return [r for name in sorted(self._available) for r in self._available[name]]

    def available_bytes(self, provider: str | None = None) -> int:
        if provider is not None:
            return sum(r.size for r in self._available.get(provider, ()))
        return sum(r.size for q in self._available.values() for r in q)

    def acquire(
        self,
        holder: str,
        bytes_needed: int,
        providers: Iterable[str] | None = None,
        spread: bool = False,
        avoid: Iterable[str] = (),
    ) -> ProcessGenerator:
        """Lease MRs totalling at least ``bytes_needed``.

        ``providers`` restricts the candidate memory servers; ``spread``
        round-robins across providers instead of draining one at a time
        (used by the multi-memory-server experiments, Figures 5 and 12b).
        ``avoid`` names providers to steer clear of (e.g. quarantined by
        a circuit breaker) — honoured only while the remaining providers
        can still cover the request, so availability beats purity.
        """
        with self.sim.tracer.span(
            "broker.acquire", cat="rpc", holder=holder, bytes=bytes_needed
        ):
            return (
                yield from self._acquire(holder, bytes_needed, providers, spread, avoid)
            )

    def _acquire(
        self,
        holder: str,
        bytes_needed: int,
        providers: Iterable[str] | None = None,
        spread: bool = False,
        avoid: Iterable[str] = (),
    ) -> ProcessGenerator:
        self._require_up()
        candidates = list(providers) if providers is not None else sorted(self._available)
        candidates = [c for c in candidates if self._available.get(c)]
        shunned = set(avoid)
        if shunned:
            preferred = [c for c in candidates if c not in shunned]
            if sum(self.available_bytes(c) for c in preferred) >= bytes_needed:
                candidates = preferred
        if self.available_bytes() < bytes_needed or not candidates:
            if sum(self.available_bytes(c) for c in candidates) < bytes_needed:
                raise InsufficientMemory(
                    f"{holder} wants {bytes_needed} bytes; cluster has "
                    f"{self.available_bytes()} available"
                )
        leases: list[Lease] = []
        granted = 0
        cursor = 0
        while granted < bytes_needed:
            if spread:
                tried = 0
                while tried < len(candidates) and not self._available.get(
                    candidates[cursor % len(candidates)]
                ):
                    cursor += 1
                    tried += 1
                provider = candidates[cursor % len(candidates)]
                cursor += 1
            else:
                live = [c for c in candidates if self._available.get(c)]
                provider = None
                if self.placement is not None and live:
                    provider = self.placement(holder, live, self)
                    if provider is not None and not self._available.get(provider):
                        provider = None  # hook picked an empty/unknown provider
                if provider is None:
                    provider = live[0] if live else None
            if provider is None or not self._available.get(provider):
                # Give back what we took: all-or-nothing semantics.
                for lease in leases:
                    yield from self._terminate(lease, LeaseState.RELEASED)
                raise InsufficientMemory(
                    f"{holder}: ran out of providers at {granted}/{bytes_needed} bytes"
                )
            region = self._available[provider].popleft()
            lease = Lease(
                region=region,
                holder=holder,
                expires_at_us=self.sim.now + self.lease_duration_us,
                duration_us=self.lease_duration_us,
            )
            self._leases[lease.lease_id] = lease
            yield from self.store.put(
                f"leases/{lease.lease_id}",
                {"holder": holder, "provider": provider, "size": region.size},
            )
            leases.append(lease)
            granted += region.size
        return leases

    def renew(self, lease: Lease) -> ProcessGenerator:
        """Extend the lease; returns False if it can no longer be renewed."""
        with self.sim.tracer.span("broker.renew", cat="rpc", lease=lease.lease_id):
            self._require_up()
            if lease.state is not LeaseState.ACTIVE or self.sim.now >= lease.expires_at_us:
                self._expire_if_needed(lease)
                return False
            yield from self.store.put(
                f"leases/{lease.lease_id}", {"renewed_at": self.sim.now}
            )
            lease.expires_at_us = self.sim.now + lease.duration_us
            return True

    def release(self, lease: Lease) -> ProcessGenerator:
        """Voluntary release: the MR returns to the available pool."""
        with self.sim.tracer.span("broker.release", cat="rpc", lease=lease.lease_id):
            self._require_up()
            if lease.state is LeaseState.ACTIVE:
                yield from self._terminate(lease, LeaseState.RELEASED)

    def check_expiry(self) -> list[Lease]:
        """Mark overdue leases expired; returns the newly-expired ones.

        No-op while the broker is down: expiry is enforced by the broker
        process, so a dead broker simply stops sweeping until recovery.
        """
        if not self.alive:
            return []
        expired = []
        for lease in list(self._leases.values()):
            if lease.state is LeaseState.ACTIVE and self.sim.now >= lease.expires_at_us:
                self._expire_if_needed(lease)
                expired.append(lease)
        return expired

    def expiry_daemon(self, period_us: float = 1e6) -> ProcessGenerator:
        """Spawn with ``sim.spawn`` to sweep for expired leases."""
        while True:
            yield self.sim.timeout(period_us)
            self.check_expiry()

    # -- internals ---------------------------------------------------------

    def _expire_if_needed(self, lease: Lease) -> None:
        if lease.state is LeaseState.ACTIVE and self.sim.now >= lease.expires_at_us:
            lease.state = LeaseState.EXPIRED
            lease.region.clear()
            self._available.setdefault(lease.provider, deque()).append(lease.region)
            del self._leases[lease.lease_id]
            self._notify(lease)

    def _terminate(self, lease: Lease, state: LeaseState) -> ProcessGenerator:
        lease.state = state
        lease.region.clear()
        self._available.setdefault(lease.provider, deque()).append(lease.region)
        self._leases.pop(lease.lease_id, None)
        yield from self.store.delete(f"leases/{lease.lease_id}")
        if state is LeaseState.REVOKED:
            self._notify(lease)

    def _notify(self, lease: Lease) -> None:
        for listener in self.revocation_listeners.get(lease.holder):
            listener(lease)

    @property
    def active_leases(self) -> list[Lease]:
        return [
            lease for lease in self._leases.values() if lease.state is LeaseState.ACTIVE
        ]
