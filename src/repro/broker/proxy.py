"""Memory brokering proxy: runs on every server with spare memory.

The proxy (Section 4.2, Figure 1):

* determines memory not committed to local processes,
* carves it into fixed-size MRs, pins them, registers them with the
  local NIC and reports them to the broker,
* subscribes to OS memory-pressure notifications, and on pressure
  withdraws MRs from the broker (forcing lease revocation if every MR
  is leased) so local processes are never paged out.
"""

from __future__ import annotations

from ..cluster import Server
from ..net.rdma import MemoryRegion, RdmaRegistrar
from ..sim.kernel import ProcessGenerator
from ..storage import MB
from .broker import MemoryBroker

__all__ = ["MemoryProxy", "DEFAULT_MR_BYTES"]

#: Fixed MR granularity ("configurable fixed-sized memory regions").
DEFAULT_MR_BYTES = 16 * MB


class MemoryProxy:
    """One server's brokering agent."""

    def __init__(
        self,
        server: Server,
        broker: MemoryBroker,
        mr_bytes: int = DEFAULT_MR_BYTES,
        reserve_bytes: int = 0,
    ):
        self.server = server
        self.broker = broker
        self.mr_bytes = mr_bytes
        #: Memory the proxy never offers (headroom for local spikes).
        self.reserve_bytes = reserve_bytes
        self.registrar = RdmaRegistrar(server)
        self.offered: list[MemoryRegion] = []

    @property
    def offered_bytes(self) -> int:
        return sum(region.size for region in self.offered)

    def ping(self, initiator: Server) -> ProcessGenerator:
        """Liveness probe: control round trip plus a sliver of proxy CPU.

        Used by the reliability layer to test a quarantined provider
        before re-admitting it.  Raises :class:`NetworkDown` when either
        endpoint is dark, like any other traffic.
        """
        yield from initiator.nic.send_control(self.server.nic)
        yield from self.server.cpu.compute(1.0)
        yield from self.server.nic.send_control(initiator.nic)
        return True

    def offer_available(self, limit_bytes: int | None = None) -> ProcessGenerator:
        """Pin, register and broker all (or up to ``limit_bytes``) spare memory."""
        spare = self.server.memory_available - self.reserve_bytes
        if limit_bytes is not None:
            spare = min(spare, limit_bytes)
        count = spare // self.mr_bytes
        regions = []
        for _ in range(int(count)):
            region = yield from self.registrar.register(self.mr_bytes)
            yield from self.broker.register_region(region)
            self.offered.append(region)
            regions.append(region)
        return regions

    def crash(self) -> None:
        """The host server crashed: every pinned MR is gone.

        Instantaneous (the server is dead — nobody pays CPU for it):
        registration state is wiped and the pinned memory is returned to
        the (now empty) server so a later :meth:`offer_available` after
        :meth:`repro.cluster.Server.restore` can re-pin from scratch.
        The broker learns about the crash separately through
        :meth:`~repro.broker.MemoryBroker.fail_provider`.
        """
        for region in self.offered:
            self.registrar.regions.pop(region.mr_id, None)
            region.registered = False
            region.clear()
            self.server.release_memory(region.size)
        self.offered.clear()

    def handle_memory_pressure(self, bytes_needed: int) -> ProcessGenerator:
        """OS pressure notification: withdraw MRs until demand is met.

        Prefers unleased MRs; revokes leases only if necessary.  Returns
        the number of bytes returned to the OS.
        """
        reclaimed = 0
        while reclaimed < bytes_needed and self.offered:
            region = yield from self.broker.withdraw_region(self.server.name)
            if region is None:
                lease = yield from self.broker.revoke_one(self.server.name)
                if lease is None:
                    break
                region = yield from self.broker.withdraw_region(self.server.name)
                if region is None:
                    break
            # Revocation legitimately races in-flight reads from lease
            # holders: doom them (they fail with RdmaError on resume)
            # rather than let them touch freed memory.
            yield from self.registrar.deregister(region, force=True)
            self.offered.remove(region)
            reclaimed += region.size
        return reclaimed

    def pressure_monitor(
        self, period_us: float = 1e6, watermark_bytes: int = 0
    ) -> ProcessGenerator:
        """Daemon: keep at least ``watermark_bytes`` free for local use."""
        while True:
            yield self.server.sim.timeout(period_us)
            shortfall = watermark_bytes - self.server.memory_available
            if shortfall > 0:
                yield from self.handle_memory_pressure(shortfall)
