"""Declarative tier-stack grammar: a design is data, not a code path.

A :class:`TierSpec` names where every engine-internal page store lives:

* ``extension`` — the buffer-pool extension hierarchy below the DRAM
  pool, ordered fast to slow.  Zero tiers disables BPExt, one tier is
  every Table-5 design, two or more gives the paper's Section-8
  future-work hierarchy (e.g. DRAM -> SSD -> remote).
* ``tempdb`` / ``wal`` / ``semcache`` — the medium for spill runs, the
  transaction log and semantic-cache structures.
* ``protocol`` — transport for every remote-medium store ("smb",
  "smbdirect" or "ndspi"), plus ``sync_remote_io`` for the Custom
  design's spin-wait.

``resolve()`` turns the spec plus the run's page budgets into a
:class:`TierPlan`: concrete per-tier capacities with the analytic
BPExt-disable rule (paper Section 5.3) applied in exactly one place.
The harness builder walks the plan; it never branches on design names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .tier import latency_class_for

__all__ = ["TierDef", "TierSpec", "ResolvedTier", "TierPlan", "spec_for"]

#: Media a tier may live on.
MEDIA = ("hdd", "ssd", "remote")
#: Remote transports (Table 5 / Section 4).
PROTOCOLS = ("smb", "smbdirect", "ndspi")


@dataclass(frozen=True)
class TierDef:
    """One extension tier below the DRAM buffer pool."""

    medium: str
    #: Display name; defaults to ``bpext`` (single tier) or
    #: ``bpext.<medium>`` (multi-tier stacks).
    name: str = ""
    #: Relative share of the extension page budget.
    share: float = 1.0
    #: Promote pages hit here into the tier above (multi-tier stacks).
    promote_on_hit: bool = False

    def __post_init__(self):
        if self.medium not in MEDIA:
            raise ValueError(f"unknown tier medium {self.medium!r} (one of {MEDIA})")
        if self.share <= 0:
            raise ValueError(f"tier share must be positive, got {self.share}")


@dataclass(frozen=True)
class TierSpec:
    """Full memory-hierarchy topology for one design alternative."""

    name: str
    extension: tuple[TierDef, ...] = ()
    tempdb: str = "hdd"
    wal: str = "hdd"
    semcache: str = "ssd"
    protocol: Optional[str] = None
    #: Custom-design spin-wait on remote completions (Section 4.1.3).
    sync_remote_io: bool = False
    #: Paper Section 5.3: HDD/HDD+SSD disable BPExt for sequential
    #: (analytic) workloads; remote-memory designs keep it.
    extension_for_analytics: bool = True
    #: Local Memory: the extension budget joins the DRAM pool instead.
    pool_absorbs_extension: bool = False

    def __post_init__(self):
        for medium in (self.tempdb, self.wal, self.semcache):
            if medium not in MEDIA:
                raise ValueError(f"unknown medium {medium!r} in spec {self.name!r}")
        if self.protocol is not None and self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r} in spec {self.name!r}")
        remote_media = [t.medium for t in self.extension if t.medium == "remote"]
        if self.tempdb == "remote" or self.semcache == "remote":
            remote_media.append("remote")
        if remote_media and self.protocol is None:
            raise ValueError(f"spec {self.name!r} places stores remotely but names no protocol")

    def resolve(
        self, *, analytic: bool, bpext_pages: int, tempdb_pages: int
    ) -> "TierPlan":
        """Apply budgets and workload rules; returns the concrete plan.

        This is the single home of the analytic BPExt-disable rule:
        callers never re-derive it.
        """
        tiers: list[ResolvedTier] = []
        enabled = bool(self.extension) and bpext_pages > 0
        if analytic and not self.extension_for_analytics:
            enabled = False
        if enabled:
            total_share = sum(tier.share for tier in self.extension)
            remaining = bpext_pages
            for index, tier in enumerate(self.extension):
                last = index == len(self.extension) - 1
                pages = remaining if last else int(bpext_pages * tier.share / total_share)
                remaining -= pages
                name = tier.name or (
                    "bpext" if len(self.extension) == 1 else f"bpext.{tier.medium}"
                )
                tiers.append(
                    ResolvedTier(
                        name=name,
                        medium=tier.medium,
                        latency_class=latency_class_for(tier.medium, self.protocol),
                        capacity_pages=pages,
                        promote_on_hit=tier.promote_on_hit,
                    )
                )
        return TierPlan(
            spec=self,
            extension=tuple(tiers),
            tempdb=ResolvedTier(
                name="tempdb",
                medium=self.tempdb,
                latency_class=latency_class_for(self.tempdb, self.protocol),
                capacity_pages=tempdb_pages,
            ),
            wal=ResolvedTier(
                name="wal",
                medium=self.wal,
                latency_class=latency_class_for(self.wal, self.protocol),
                capacity_pages=0,
            ),
        )


@dataclass(frozen=True)
class ResolvedTier:
    """A tier with its capacity fixed for one run."""

    name: str
    medium: str
    latency_class: str
    capacity_pages: int
    promote_on_hit: bool = False


@dataclass(frozen=True)
class TierPlan:
    """Resolved placement: what the harness builder actually constructs."""

    spec: TierSpec
    extension: tuple[ResolvedTier, ...] = ()
    tempdb: ResolvedTier = field(default=None)  # type: ignore[assignment]
    wal: ResolvedTier = field(default=None)  # type: ignore[assignment]

    @property
    def protocol(self) -> Optional[str]:
        return self.spec.protocol

    @property
    def sync_remote_io(self) -> bool:
        return self.spec.sync_remote_io

    @property
    def semcache(self) -> str:
        return self.spec.semcache

    @property
    def needs_remote(self) -> bool:
        """Whether any placed store lives behind the remote protocol."""
        return self.protocol is not None

    def remote_extension_tiers(self) -> tuple[ResolvedTier, ...]:
        return tuple(tier for tier in self.extension if tier.medium == "remote")


def spec_for(config, pool_absorbs_extension: bool = False) -> TierSpec:
    """Compile a Table-5 :class:`~repro.harness.DesignConfig` to a spec.

    Mechanical: one optional extension tier on ``config.bpext``, TempDB
    on ``config.tempdb``, WAL on the HDD array (Table 5 keeps the log
    local in every design), semantic cache wherever remote memory is
    available (else the SSD).
    """
    extension: tuple[TierDef, ...] = ()
    if config.bpext is not None:
        extension = (TierDef(medium=config.bpext),)
    return TierSpec(
        name=config.design.value,
        extension=extension,
        tempdb=config.tempdb,
        wal="hdd",
        semcache="remote" if config.protocol is not None else "ssd",
        protocol=config.protocol,
        sync_remote_io=config.sync_remote_io,
        extension_for_analytics=config.bpext_for_analytics,
        pool_absorbs_extension=pool_absorbs_extension,
    )
