"""TierStack: the extension hierarchy below the DRAM buffer pool.

Owns placement (new evictees land in the fastest tier), demotion (a
full tier pushes its coldest page down instead of dropping it) and
promotion (a hit at a slow tier can pull the page up), while each
level keeps its own eviction order, hit accounting and failure
handling — a level *is* a
:class:`~repro.engine.bufferpool.BufferPoolExtension` bound to one
:class:`~repro.tiers.Tier`.

The stack mirrors the single-extension interface exactly, so
:class:`~repro.engine.BufferPool` consumes either without branching:
hedged reads, quarantine routing, fault sweeps and priming all work
per tier.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..sim import LatencyRecorder, TimeSeries
from ..sim.kernel import ProcessGenerator
from .tier import Tier

__all__ = ["TierStack", "build_stack"]


class TierStack:
    """Ordered (fast -> slow) composition of extension levels."""

    def __init__(self, levels: list):
        if not levels:
            raise ValueError("a TierStack needs at least one level")
        self.levels = list(levels)
        for index, level in enumerate(self.levels):
            if level.tier is None:
                level.tier = Tier.wrap(level.store, name=f"bpext.{index}")
            below = self.levels[index + 1] if index + 1 < len(self.levels) else None
            if below is not None:
                level.demote_sink = self._demote_sink(level, below)
            # Failure events bubble to stack-level listeners (recovery
            # monitors subscribe once, whatever the topology).
            level.fault_listeners.append(self._on_level_fault)
        #: Stack-level observers (mirrors BufferPoolExtension's hook).
        self.fault_listeners: list[Callable[[Any], None]] = []
        #: Per-read latency across all tiers (hedge-delay input).
        self.read_latency = LatencyRecorder("bpext.read")
        #: Pages moved down because a tier overflowed.
        self.demotions = 0
        #: Pages pulled up after a hit at a slower tier.
        self.promotions = 0

    # -- composition helpers -------------------------------------------------

    def _demote_sink(self, level, below):
        def demote(page_id, slot) -> ProcessGenerator:
            # Best-effort: read the victim image (timed — demotion costs
            # a real read) and park it one tier down.  Any failure just
            # loses the cached copy; the base file stays authoritative.
            try:
                page = yield from level.store.read_page(slot, background=True)
            except Exception:
                return
            self.demotions += 1
            yield from below.put(page)

        return demote

    def _on_level_fault(self, page_id) -> None:
        for listener in self.fault_listeners:
            listener(page_id)

    def _sim(self):
        return self.levels[0]._sim()

    @property
    def tiers(self) -> list[Tier]:
        return [level.tier for level in self.levels]

    def level_for(self, medium: str):
        """First level on ``medium`` (e.g. the remote level to rebuild)."""
        for level in self.levels:
            if level.tier.medium == medium:
                return level
        return None

    # -- BufferPoolExtension-compatible surface ------------------------------

    @property
    def enabled(self) -> bool:
        return any(level.enabled for level in self.levels)

    @enabled.setter
    def enabled(self, value: bool) -> None:
        for level in self.levels:
            level.enabled = value

    @property
    def reliability(self):
        return self.levels[0].reliability

    @reliability.setter
    def reliability(self, layer) -> None:
        for level in self.levels:
            level.reliability = layer

    @property
    def capacity_pages(self) -> int:
        return sum(level.capacity_pages for level in self.levels)

    @property
    def parked_pages(self) -> int:
        return sum(level.parked_pages for level in self.levels)

    def _total(self, attr: str) -> int:
        return sum(getattr(level, attr) for level in self.levels)

    hits = property(lambda self: self._total("hits"))
    misses = property(lambda self: self._total("misses"))
    failures = property(lambda self: self._total("failures"))
    transient_failures = property(lambda self: self._total("transient_failures"))
    quarantine_skips = property(lambda self: self._total("quarantine_skips"))
    pages_lost_to_faults = property(lambda self: self._total("pages_lost_to_faults"))

    @property
    def bytes_series(self) -> Optional[TimeSeries]:
        return self.levels[0].bytes_series

    def track_throughput(self, bucket_us: float = 1e6) -> TimeSeries:
        """One shared bytes-moved series across every tier."""
        series = TimeSeries(bucket_us, name="bpext.bytes")
        for level in self.levels:
            level.bytes_series = series
        return series

    def contains(self, page_id) -> bool:
        return any(level.contains(page_id) for level in self.levels)

    def get(self, page_id, background: bool = False) -> ProcessGenerator:
        """Fetch from the fastest tier holding the page; promote if asked.

        Raises :class:`~repro.engine.PageNotFound` when no tier serves
        it (absent, quarantined, or lost mid-read) — the pool then falls
        back to the base file, exactly as with a single extension.
        """
        from ..engine.errors import PageNotFound

        sim = self._sim()
        for index, level in enumerate(self.levels):
            if not level.contains(page_id):
                continue
            start = sim.now
            try:
                page = yield from level.get(page_id, background=background)
            except PageNotFound:
                continue  # quarantined or lost: try a slower tier
            self.read_latency.record(sim.now - start)
            if index > 0 and level.tier.promote_on_hit:
                level.invalidate(page_id)
                self.promotions += 1
                yield from self.levels[index - 1].put(page)
            return page
        raise PageNotFound(f"tier stack: {page_id} not present at any tier")

    def put(self, page) -> ProcessGenerator:
        """Park a clean evictee in the fastest tier (demotion cascades).

        If a slower tier already holds the page its image is current
        (updates invalidate every level), so re-parking it up top would
        only double-cache the page and churn the demotion path.
        """
        for level in self.levels[1:]:
            if level.contains(page.page_id):
                return
        yield from self.levels[0].put(page)

    def adopt(self, page) -> bool:
        """Untimed priming: fill tiers in order, fastest first."""
        return any(level.adopt(page) for level in self.levels)

    def invalidate(self, page_id) -> None:
        for level in self.levels:
            level.invalidate(page_id)

    def on_fault(self, provider: Optional[str] = None) -> list:
        lost: list = []
        for level in self.levels:
            lost.extend(level.on_fault(provider))
        return lost

    def clear(self) -> None:
        for level in self.levels:
            level.clear()


def build_stack(tiers: Iterable[Tier]):
    """Extension for a resolved plan: one level per tier.

    Returns ``None`` (no tiers), a single
    :class:`~repro.engine.bufferpool.BufferPoolExtension` (the Table-5
    shape — byte-for-byte the classic path), or a :class:`TierStack`.
    """
    from ..engine.bufferpool import BufferPoolExtension

    levels = [BufferPoolExtension(tier) for tier in tiers]
    if not levels:
        return None
    if len(levels) == 1:
        return levels[0]
    return TierStack(levels)
