"""Declarative memory hierarchy: tiers, stacks and design specs.

The paper's six Table-5 design alternatives — and its Section-8
future-work three-tier hierarchy — are one idea: a page can live in
local DRAM, on the SSD, or in remote memory behind a protocol.  This
package makes that topology *configuration*:

* :class:`Tier` — a page store plus capacity/latency-class metadata;
* :class:`TierStack` — placement, promotion/demotion and per-tier
  eviction over an ordered list of tiers;
* :class:`TierSpec` / :class:`TierPlan` — the declarative grammar a
  design compiles to, consumed by the harness builder.
"""

from .spec import ResolvedTier, TierDef, TierPlan, TierSpec, spec_for
from .stack import TierStack, build_stack
from .tier import LATENCY_CLASSES, Tier, latency_class_for

__all__ = [
    "LATENCY_CLASSES",
    "ResolvedTier",
    "Tier",
    "TierDef",
    "TierPlan",
    "TierSpec",
    "TierStack",
    "build_stack",
    "latency_class_for",
    "spec_for",
]
