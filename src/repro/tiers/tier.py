"""One level of the memory hierarchy: a page store plus placement metadata.

A :class:`Tier` does not add behavior to the store it wraps — it names
the level, classifies its latency, and carries the placement knobs the
:class:`~repro.tiers.TierStack` consults (promotion policy, budget
share).  The buffer-pool extension, reliability routing and telemetry
all read tier identity from here instead of duck-typing the store.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Tier", "LATENCY_CLASSES", "latency_class_for"]

#: Medium/protocol -> latency class (coarse ordering, fast to slow).
LATENCY_CLASSES = {
    "dram": "dram",
    "ndspi": "rdma",
    "smbdirect": "rdma",
    "smb": "lan",
    "remote": "rdma",
    "ssd": "ssd",
    "hdd": "hdd",
}


def latency_class_for(medium: str, protocol: Optional[str] = None) -> str:
    """Latency class for a tier: the protocol refines a remote medium."""
    if medium == "remote" and protocol is not None:
        return LATENCY_CLASSES.get(protocol, "rdma")
    return LATENCY_CLASSES.get(medium, "unknown")


class Tier:
    """A :class:`~repro.engine.PageStore` with hierarchy metadata."""

    def __init__(
        self,
        name: str,
        store: Any,
        medium: str = "unknown",
        latency_class: Optional[str] = None,
        promote_on_hit: bool = False,
    ):
        self.name = name
        self.store = store
        self.medium = medium
        self.latency_class = (
            latency_class if latency_class is not None else latency_class_for(medium)
        )
        #: Pages hit at this tier are promoted into the tier above it.
        self.promote_on_hit = promote_on_hit

    @property
    def capacity_pages(self) -> Optional[int]:
        return self.store.capacity_pages

    def slot_provider(self, slot: int) -> Optional[str]:
        """Provider backing ``slot`` (quarantine routing, fault targeting)."""
        return self.store.slot_provider(slot)

    @classmethod
    def wrap(cls, store: Any, name: str = "bpext") -> "Tier":
        """Metadata-only wrapper for a bare store (legacy constructors)."""
        kind = type(store).__name__
        medium = {"RemotePageFile": "remote", "SmbPageFile": "remote"}.get(kind, "local")
        return cls(name, store, medium=medium)

    def __repr__(self) -> str:
        return (
            f"Tier({self.name!r}, medium={self.medium!r}, "
            f"latency={self.latency_class!r}, capacity={self.capacity_pages})"
        )
