"""RDMA verbs: memory regions, registration, queue pairs, one-sided ops.

This is the simulated equivalent of the NDSPI layer the paper's Custom
design uses (Section 4.2).  Faithfully modelled properties:

* **Registration is expensive**: registering an 8K page costs ~50 µs —
  the same order as transferring it — which is why the paper
  pre-registers staging buffers instead of registering buffer-pool pages
  on demand (Section 4.1.4).  NICs also cap the size (2 GB) and the
  number (~130 K) of registered regions (Appendix A).
* **One-sided data path**: an RDMA read/write moves data between the
  pinned regions using only the two NICs' DMA engines; the remote CPU is
  *never* involved.  Compare :mod:`repro.net.tcp`, which charges the
  remote server's cores per message — the root of Figure 13's result.
* **Memory regions carry real bytes** so integrity is testable
  end-to-end.  An object-extent overlay lets higher layers move Python
  objects with identical timing but without per-transfer serialization.
"""

from __future__ import annotations

import math
from typing import Any

from ..cluster import Server
from ..sim.kernel import ProcessGenerator
from ..storage import GB, KB
from .fabric import NicPort

__all__ = ["MemoryRegion", "RdmaRegistrar", "QueuePair", "RdmaError", "MR_REGISTER_BASE_US"]

#: Fixed cost of a registration call (kernel transition, pinning setup).
MR_REGISTER_BASE_US = 45.0
#: Incremental cost per 8K page (page-table entry install + pinning).
MR_REGISTER_PER_PAGE_US = 5.0
#: NIC limits (Appendix A: 2 GB per MR, ~130 K MRs on the ConnectX-3).
MR_MAX_SIZE = 2 * GB
MR_MAX_COUNT = 130_000
_PAGE = 8 * KB


class RdmaError(RuntimeError):
    """Registration-limit violations and invalid remote accesses."""


class MemoryRegion:
    """A pinned, NIC-registered block of a server's physical memory."""

    _next_id = 0

    def __init__(self, server: Server, size: int):
        MemoryRegion._next_id += 1
        self.mr_id = MemoryRegion._next_id
        self.server = server
        self.size = size
        self.registered = False
        #: One-sided verbs currently in flight against this region.
        self.inflight = 0
        #: Set when the region was deregistered out from under in-flight
        #: ops (``deregister(force=True)``): those ops must fail on
        #: resume rather than complete against the freed bytes.
        self.doomed = False
        self._data: bytearray | None = None
        #: Object-extent overlay: offset -> (length, payload object).
        self._objects: dict[int, tuple[int, Any]] = {}

    @property
    def data(self) -> bytearray:
        if self._data is None:
            self._data = bytearray(self.size)
        return self._data

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.size:
            raise RdmaError(
                f"access [{offset}, {offset + size}) outside MR of {self.size} bytes"
            )

    # Raw byte access (used by the NIC DMA path).

    def read_bytes(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        return bytes(self.data[offset : offset + size])

    def write_bytes(self, offset: int, payload: bytes) -> None:
        self._check_range(offset, len(payload))
        self.data[offset : offset + len(payload)] = payload

    # Object-extent overlay (same timing, no serialization).

    def put_object(self, offset: int, size: int, obj: Any) -> None:
        self._check_range(offset, size)
        self._objects[offset] = (size, obj)

    def get_object(self, offset: int) -> Any:
        if offset not in self._objects:
            raise RdmaError(f"no object stored at MR offset {offset}")
        return self._objects[offset][1]

    def drop_object(self, offset: int) -> None:
        self._objects.pop(offset, None)

    def clear(self) -> None:
        self._objects.clear()
        self._data = None


class RdmaRegistrar:
    """Per-server registration state: enforces NIC limits and costs.

    Registration pins the memory (commits it against the server) and
    installs page-table entries on the NIC, costing
    ``MR_REGISTER_BASE_US + pages * MR_REGISTER_PER_PAGE_US`` of the
    *registering server's* CPU.
    """

    def __init__(self, server: Server):
        self.server = server
        self.regions: dict[int, MemoryRegion] = {}

    def registration_cost_us(self, size: int) -> float:
        pages = max(1, math.ceil(size / _PAGE))
        return MR_REGISTER_BASE_US + pages * MR_REGISTER_PER_PAGE_US

    def register(self, size: int, commit: bool = True) -> ProcessGenerator:
        """Create, pin and register a region; returns the MemoryRegion."""
        if size <= 0:
            raise RdmaError("MR size must be positive")
        if size > MR_MAX_SIZE:
            raise RdmaError(f"MR size {size} exceeds NIC limit {MR_MAX_SIZE}")
        if len(self.regions) >= MR_MAX_COUNT:
            raise RdmaError("NIC MR count limit reached")
        if commit:
            self.server.commit_memory(size)
        region = MemoryRegion(self.server, size)
        yield from self.server.cpu.compute(self.registration_cost_us(size))
        region.registered = True
        self.regions[region.mr_id] = region
        return region

    def deregister(
        self, region: MemoryRegion, release: bool = True, force: bool = False
    ) -> ProcessGenerator:
        """Unpin and free a region.

        Deregistering while one-sided verbs are still in flight against
        the region is a use-after-free in waiting: the NIC would DMA
        into (or out of) memory the OS has already reclaimed.  The
        default is *assert* semantics — raise :class:`RdmaError` so the
        caller finds the race.  ``force=True`` selects *doom* semantics
        for paths that legitimately revoke memory out from under users
        (lease revocation under memory pressure): the region is freed
        immediately and every in-flight op fails deterministically with
        :class:`RdmaError` when it resumes, instead of silently
        completing against freed bytes.
        """
        if region.mr_id not in self.regions:
            raise RdmaError("region is not registered here")
        if region.inflight > 0 and not force:
            raise RdmaError(
                f"deregister with {region.inflight} ops in flight (use force=True to doom them)"
            )
        yield from self.server.cpu.compute(MR_REGISTER_BASE_US / 2)
        if region.inflight > 0:
            if not force:
                raise RdmaError(
                    f"deregister raced {region.inflight} in-flight ops"
                    " (use force=True to doom them)"
                )
            region.doomed = True
        del self.regions[region.mr_id]
        region.registered = False
        region.clear()
        if release:
            self.server.release_memory(region.size)


#: CPU cost on the initiator to post a work request and reap completion.
POST_CPU_US = 0.3


class QueuePair:
    """A reliable connection between two servers for one-sided verbs."""

    def __init__(self, initiator: Server, target: Server):
        if initiator.nic is None or target.nic is None:
            raise RdmaError("both servers must be attached to the network")
        self.initiator = initiator
        self.target = target
        self.connected = True
        self.reads = 0
        self.writes = 0
        #: Bumped by disconnect() so verbs in flight across the break
        #: can tell this connection's teardown from a later reconnect.
        self._epoch = 0

    def _require_connected(self, region: MemoryRegion) -> None:
        if not self.connected:
            raise RdmaError("queue pair is disconnected")
        if not self.initiator.alive or not self.target.alive:
            raise RdmaError("queue pair endpoint server is down")
        if not region.registered:
            raise RdmaError("remote region is not registered")
        if region.server is not self.target:
            raise RdmaError("region does not belong to the connected target")

    def _require_resumed(self, region: MemoryRegion, epoch: int) -> None:
        """Re-check on resume, *before* touching region data.

        The wire-time path suspends the caller for the full transfer;
        by completion the QP may have been torn down or the region
        deregistered (``deregister(force=True)`` dooms it).  A real NIC
        flushes such work requests with an error completion — model
        that as a deterministic :class:`RdmaError` instead of silently
        completing against stale or freed memory.
        """
        if self._epoch != epoch or not self.connected:
            raise RdmaError("queue pair disconnected while transfer in flight")
        if region.doomed or not region.registered:
            raise RdmaError("memory region deregistered while transfer in flight")

    def disconnect(self) -> None:
        self.connected = False
        self._epoch += 1

    # -- one-sided verbs --------------------------------------------------

    def read(
        self,
        region: MemoryRegion,
        offset: int,
        size: int,
        opaque: bool = False,
        nodata: bool = False,
    ) -> ProcessGenerator:
        """One-sided RDMA read; returns bytes (or the stored object).

        ``nodata=True`` performs the full timing path without touching
        the region's backing store (used by I/O micro-benchmarks that
        sweep spans far larger than host RAM).
        """
        self._require_connected(region)
        sim = self.initiator.sim
        src: NicPort = self.initiator.nic
        dst: NicPort = self.target.nic
        epoch = self._epoch
        region.inflight += 1
        try:
            if sim.tracer.enabled:
                with sim.tracer.span("rdma.read", provider=self.target.name, size=size):
                    yield from self._read_path(sim, src, dst, size)
            else:
                yield from self._read_path(sim, src, dst, size)
        finally:
            region.inflight -= 1
        # The transfer suspended us: the QP or region may be gone now.
        self._require_resumed(region, epoch)
        self.reads += 1
        if nodata:
            return None
        if opaque:
            return region.get_object(offset)
        return region.read_bytes(offset, size)

    def write(
        self,
        region: MemoryRegion,
        offset: int,
        payload: bytes | None = None,
        size: int | None = None,
        obj: Any = None,
        nodata: bool = False,
    ) -> ProcessGenerator:
        """One-sided RDMA write of ``payload`` bytes or an opaque object."""
        self._require_connected(region)
        if payload is None and size is None:
            raise RdmaError("write needs payload bytes or an explicit size")
        if payload is None and obj is None and not nodata:
            raise RdmaError("write needs payload bytes or (size, obj)")
        length = len(payload) if payload is not None else int(size)  # type: ignore[arg-type]
        sim = self.initiator.sim
        src: NicPort = self.initiator.nic
        dst: NicPort = self.target.nic
        epoch = self._epoch
        region.inflight += 1
        try:
            if sim.tracer.enabled:
                with sim.tracer.span("rdma.write", provider=self.target.name, size=length):
                    yield from self._write_path(sim, src, dst, length)
            else:
                yield from self._write_path(sim, src, dst, length)
        finally:
            region.inflight -= 1
        self._require_resumed(region, epoch)
        if not nodata:
            if payload is not None:
                region.write_bytes(offset, payload)
            else:
                region.put_object(offset, length, obj)
        self.writes += 1
        return length

    def _read_path(self, sim, src: NicPort, dst: NicPort, size: int) -> ProcessGenerator:
        # Post the read work request and send it to the target NIC.
        yield sim.timeout(POST_CPU_US)
        yield from src.send_control(dst)
        # Target NIC DMAs the data and streams it back — no target CPU.
        yield from dst.transfer(src, size)
        # Completion-queue entry processed at the initiator.
        yield sim.timeout(POST_CPU_US)

    def _write_path(self, sim, src: NicPort, dst: NicPort, length: int) -> ProcessGenerator:
        yield sim.timeout(POST_CPU_US)
        yield from src.transfer(dst, length)
        # Hardware ack from the target NIC.
        yield from dst.send_control(src)
        yield sim.timeout(POST_CPU_US)
