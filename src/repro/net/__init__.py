"""Network substrate: Infiniband fabric, RDMA verbs, TCP, SMB protocols."""

from .fabric import Network, NetworkDown, NicPort
from .rdma import (
    MR_MAX_COUNT,
    MR_MAX_SIZE,
    MR_REGISTER_BASE_US,
    MemoryRegion,
    QueuePair,
    RdmaError,
    RdmaRegistrar,
)
from .smb import SmbClient, SmbDirectClient, SmbFileServer
from .tcp import TcpChannel, TcpEndpoint, attach_tcp

__all__ = [
    "MR_MAX_COUNT",
    "MR_MAX_SIZE",
    "MR_REGISTER_BASE_US",
    "MemoryRegion",
    "Network",
    "NetworkDown",
    "NicPort",
    "QueuePair",
    "RdmaError",
    "RdmaRegistrar",
    "SmbClient",
    "SmbDirectClient",
    "SmbFileServer",
    "TcpChannel",
    "TcpEndpoint",
    "attach_tcp",
]
