"""Network fabric: the Infiniband switch and per-server NIC ports.

The paper's cluster uses Mellanox ConnectX-3 FDR adapters (56 Gbps) on a
non-blocking top-of-rack switch.  The raw wire is 7 GB/s, but the
achievable data rate through a NIC is DMA/PCIe-bound at ~5.4 GB/s (this
is what the 512K-sequential SQLIO numbers in Figure 3 show: ~5.1 GB/s
for both Custom and SMB Direct).

Each :class:`NicPort` has independent transmit and receive engines,
modelled as serialized pipes with a small fixed per-message cost.  A
transfer from A to B occupies A's TX engine, the (negligible) wire, and
B's RX engine in a pipeline — so saturation can occur at either side,
which is exactly what Figures 5 and 6 probe.

Fault hooks (used by :mod:`repro.faults`):

* :meth:`NicPort.fail` / :meth:`NicPort.restore` — the port goes dark
  when its server crashes; in-flight transfers registered through
  :meth:`NicPort.track_inflight` are aborted with the kernel's
  :class:`~repro.sim.Interrupt`.
* :meth:`NicPort.degrade` / :meth:`NicPort.restore_link` — transient
  link degradation: a latency multiplier plus a seeded packet-loss
  probability paid as retransmissions.
"""

from __future__ import annotations

from typing import Callable

from ..cluster import Server
from ..sim import Resource, Simulator
from ..sim.kernel import Process, ProcessGenerator
from ..storage import GB

__all__ = ["Network", "NetworkDown", "NicPort"]

#: Retransmission attempts are bounded: past this the message is
#: delivered anyway (link-layer retry exhaustion is modelled as success
#: after the worst-case number of tries, never as silent loss).
MAX_RETRIES = 8


class NetworkDown(RuntimeError):
    """An endpoint of the transfer is dark (server crash)."""


class NicProfile:
    """Timing characteristics of one RDMA-capable NIC port."""

    #: Effective DMA-bound data bandwidth per direction.
    bandwidth_bytes_per_us = 5.4 * GB / 1e6
    #: Serialized per-message engine cost (descriptor fetch, doorbell).
    per_message_us = 0.5
    #: Fixed processing latency per message, not serialized.
    processing_us = 1.5


class Network:
    """The switch: attach servers to get NIC ports; non-blocking core."""

    def __init__(self, sim: Simulator, propagation_us: float = 1.0):
        self.sim = sim
        self.propagation_us = propagation_us
        self.ports: dict[str, NicPort] = {}

    def attach(self, server: Server, profile: NicProfile | None = None) -> "NicPort":
        if server.name in self.ports:
            raise ValueError(f"server {server.name!r} already attached")
        port = NicPort(self, server, profile or NicProfile())
        self.ports[server.name] = port
        server.nic = port
        return port

    def port(self, server_name: str) -> "NicPort":
        return self.ports[server_name]


class NicPort:
    """One server's NIC: independent TX/RX engines plus a message pipe."""

    def __init__(self, network: Network, server: Server, profile: NicProfile):
        self.network = network
        self.server = server
        self.profile = profile
        sim = network.sim
        self.tx = Resource(sim, capacity=1, name=f"{server.name}.nic.tx")
        self.rx = Resource(sim, capacity=1, name=f"{server.name}.nic.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        #: Fault state: the port refuses traffic while False.
        self.alive = True
        #: Link degradation (fault injection): engine times scale by the
        #: multiplier; each message pays a seeded number of retransmits.
        self.latency_multiplier = 1.0
        self.drop_probability = 0.0
        self.retransmits = 0
        self._link_rng = None
        #: Transfer processes that touch this port, abortable on crash.
        #: Insertion-ordered so abort order (and hence replay) is
        #: deterministic — a set would iterate in address order.
        self._inflight: dict[Process, None] = {}

    # -- fault hooks -------------------------------------------------------

    def fail(self) -> None:
        """Port goes dark: abort every tracked in-flight transfer."""
        if not self.alive:
            return
        self.alive = False
        for process in list(self._inflight):
            process.interrupt(cause=f"{self.server.name}: NIC down")
        self._inflight.clear()

    def restore(self) -> None:
        self.alive = True

    def degrade(
        self,
        latency_multiplier: float = 1.0,
        drop_probability: float = 0.0,
        rng=None,
    ) -> None:
        """Apply transient link degradation (fault injection).

        ``rng`` must be a seeded generator (``random()`` method) when
        ``drop_probability`` is non-zero, so retransmission draws stay
        deterministic for a given experiment seed.
        """
        if latency_multiplier < 1.0:
            raise ValueError("latency multiplier must be >= 1")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if drop_probability > 0.0 and rng is None:
            raise ValueError("packet loss needs a seeded rng for determinism")
        self.latency_multiplier = latency_multiplier
        self.drop_probability = drop_probability
        self._link_rng = rng

    def restore_link(self) -> None:
        self.latency_multiplier = 1.0
        self.drop_probability = 0.0
        self._link_rng = None

    def track_inflight(self, process: Process) -> None:
        """Register a transfer process for abort-on-crash semantics."""
        self._inflight[process] = None
        process.add_callback(lambda _e: self._inflight.pop(process, None))

    # -- observability -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Transfers queued behind the TX and RX engines right now."""
        return self.tx.queue_length + self.rx.queue_length

    @property
    def healthy(self) -> bool:
        """Up and undegraded (no latency multiplier, no packet loss)."""
        return (
            self.alive
            and self.server.alive
            and self.latency_multiplier == 1.0
            and self.drop_probability == 0.0
        )

    # -- timing ------------------------------------------------------------

    def _engine_time(self, size: int) -> float:
        base = self.profile.per_message_us + size / self.profile.bandwidth_bytes_per_us
        base *= self.latency_multiplier
        if self.drop_probability > 0.0 and self._link_rng is not None:
            retries = 0
            while retries < MAX_RETRIES and self._link_rng.random() < self.drop_probability:
                retries += 1
            if retries:
                self.retransmits += retries
                base *= 1 + retries
        return base

    def _check_alive(self, peer: "NicPort") -> None:
        if not self.alive or not self.server.alive:
            raise NetworkDown(f"{self.server.name}: NIC is down")
        if not peer.alive or not peer.server.alive:
            raise NetworkDown(f"{peer.server.name}: NIC is down")

    def _engine(self, engine: Resource, timing: Callable[[], float]) -> ProcessGenerator:
        """Hold one engine slot, interrupt-safely.

        ``timing`` is evaluated when the slot is *granted*, not when the
        transfer enqueues: link degradation applies to transfers being
        serviced while the link is sick, and a backlog queued during a
        brown-out drains at healthy speed once the link restores.
        """
        sim = self.network.sim
        if engine.try_acquire():
            # Idle engine: granted inline, no scheduler round-trip.
            try:
                if not sim.tracer.enabled:
                    yield sim.timeout(timing())
                else:
                    with sim.tracer.span("nic.xmit", cat="net", engine=engine.name):
                        yield sim.timeout(timing())
            finally:
                engine.release()
            return
        request = engine.request()
        try:
            if not sim.tracer.enabled:
                yield request
                yield sim.timeout(timing())
            else:
                with sim.tracer.span("nic.queue", cat="queue", engine=engine.name):
                    yield request
                with sim.tracer.span("nic.xmit", cat="net", engine=engine.name):
                    yield sim.timeout(timing())
        finally:
            engine.cancel(request)

    def transfer(self, dst: "NicPort", size: int) -> ProcessGenerator:
        """Move ``size`` payload bytes from this port to ``dst``.

        Pipelined: TX engine, propagation, RX engine.  Returns total µs.
        """
        self._check_alive(dst)
        sim = self.network.sim
        start = sim.now
        if sim.tracer.enabled:
            with sim.tracer.span(
                "nic.transfer", cat="net", src=self.server.name, dst=dst.server.name, size=size
            ):
                yield from self._pipeline(dst, size, sim)
        else:
            yield from self._pipeline(dst, size, sim)
        self.bytes_sent += size
        self.messages_sent += 1
        dst.bytes_received += size
        return sim.now - start

    def _pipeline(self, dst: "NicPort", size: int, sim) -> ProcessGenerator:
        yield from self._engine(self.tx, lambda: self._engine_time(size))
        yield sim.timeout(self.network.propagation_us + self.profile.processing_us)
        self._check_alive(dst)
        yield from self._engine(dst.rx, lambda: dst._engine_time(size))

    def send_control(self, dst: "NicPort") -> ProcessGenerator:
        """A small control message (request packet, ack, doorbell)."""
        self._check_alive(dst)
        sim = self.network.sim
        delay = (
            self.profile.per_message_us * self.latency_multiplier
            + self.network.propagation_us
            + self.profile.processing_us
        )
        if sim.tracer.enabled:
            with sim.tracer.span("nic.control", cat="net", dst=dst.server.name):
                yield sim.timeout(delay)
        else:
            yield sim.timeout(delay)
        self.messages_sent += 1
