"""Network fabric: the Infiniband switch and per-server NIC ports.

The paper's cluster uses Mellanox ConnectX-3 FDR adapters (56 Gbps) on a
non-blocking top-of-rack switch.  The raw wire is 7 GB/s, but the
achievable data rate through a NIC is DMA/PCIe-bound at ~5.4 GB/s (this
is what the 512K-sequential SQLIO numbers in Figure 3 show: ~5.1 GB/s
for both Custom and SMB Direct).

Each :class:`NicPort` has independent transmit and receive engines,
modelled as serialized pipes with a small fixed per-message cost.  A
transfer from A to B occupies A's TX engine, the (negligible) wire, and
B's RX engine in a pipeline — so saturation can occur at either side,
which is exactly what Figures 5 and 6 probe.
"""

from __future__ import annotations

from ..cluster import Server
from ..sim import Resource, Simulator
from ..sim.kernel import ProcessGenerator
from ..storage import GB

__all__ = ["Network", "NicPort"]


class NicProfile:
    """Timing characteristics of one RDMA-capable NIC port."""

    #: Effective DMA-bound data bandwidth per direction.
    bandwidth_bytes_per_us = 5.4 * GB / 1e6
    #: Serialized per-message engine cost (descriptor fetch, doorbell).
    per_message_us = 0.5
    #: Fixed processing latency per message, not serialized.
    processing_us = 1.5


class Network:
    """The switch: attach servers to get NIC ports; non-blocking core."""

    def __init__(self, sim: Simulator, propagation_us: float = 1.0):
        self.sim = sim
        self.propagation_us = propagation_us
        self.ports: dict[str, NicPort] = {}

    def attach(self, server: Server, profile: NicProfile | None = None) -> "NicPort":
        if server.name in self.ports:
            raise ValueError(f"server {server.name!r} already attached")
        port = NicPort(self, server, profile or NicProfile())
        self.ports[server.name] = port
        server.nic = port
        return port

    def port(self, server_name: str) -> "NicPort":
        return self.ports[server_name]


class NicPort:
    """One server's NIC: independent TX/RX engines plus a message pipe."""

    def __init__(self, network: Network, server: Server, profile: NicProfile):
        self.network = network
        self.server = server
        self.profile = profile
        sim = network.sim
        self.tx = Resource(sim, capacity=1, name=f"{server.name}.nic.tx")
        self.rx = Resource(sim, capacity=1, name=f"{server.name}.nic.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def _engine_time(self, size: int) -> float:
        return self.profile.per_message_us + size / self.profile.bandwidth_bytes_per_us

    def transfer(self, dst: "NicPort", size: int) -> ProcessGenerator:
        """Move ``size`` payload bytes from this port to ``dst``.

        Pipelined: TX engine, propagation, RX engine.  Returns total µs.
        """
        sim = self.network.sim
        start = sim.now
        yield self.tx.request()
        try:
            yield sim.timeout(self._engine_time(size))
        finally:
            self.tx.release()
        yield sim.timeout(self.network.propagation_us + self.profile.processing_us)
        yield dst.rx.request()
        try:
            yield sim.timeout(dst._engine_time(size))
        finally:
            dst.rx.release()
        self.bytes_sent += size
        self.messages_sent += 1
        dst.bytes_received += size
        return sim.now - start

    def send_control(self, dst: "NicPort") -> ProcessGenerator:
        """A small control message (request packet, ack, doorbell)."""
        sim = self.network.sim
        yield sim.timeout(
            self.profile.per_message_us
            + self.network.propagation_us
            + self.profile.processing_us
        )
        self.messages_sent += 1
