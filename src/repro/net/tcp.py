"""TCP/IP transport model.

In contrast to the one-sided RDMA path, every TCP message:

* crosses the kernel on both ends (syscall, interrupt, wakeup),
* copies the payload between user and kernel buffers, charging the CPU
  on *both* the sender and the receiver, and
* achieves a lower effective data rate (~3.5 GB/s on this hardware —
  the SMB+RamDrive sequential result in Figure 3).

The remote-CPU cost is what degrades a busy memory server by ~10 %
(20 % at the 99th percentile) when its memory is accessed over TCP
(Figure 13); the RDMA path has no equivalent term.
"""

from __future__ import annotations

from ..cluster import Server
from ..sim import Resource
from ..sim.kernel import ProcessGenerator
from ..storage import GB

__all__ = ["TcpEndpoint", "TcpChannel", "attach_tcp"]


class TcpProfile:
    #: Effective streaming bandwidth of one direction (protocol-bound).
    bandwidth_bytes_per_us = 3.5 * GB / 1e6
    #: Kernel CPU per message on each side (syscall / interrupt / wakeup).
    per_message_cpu_us = 8.0
    #: CPU copy cost between user and kernel space (both sides pay it).
    copy_bytes_per_us = 3.0 * GB / 1e6
    #: One-way latency through the kernel network stack (not serialized).
    stack_latency_us = 15.0


class TcpEndpoint:
    """Per-server TCP state: effective-bandwidth pipes for each direction."""

    def __init__(self, server: Server, profile: TcpProfile | None = None):
        self.server = server
        self.profile = profile or TcpProfile()
        sim = server.sim
        self.tx = Resource(sim, capacity=1, name=f"{server.name}.tcp.tx")
        self.rx = Resource(sim, capacity=1, name=f"{server.name}.tcp.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Link degradation (fault injection): wire times scale by this.
        self.latency_multiplier = 1.0
        server.tcp = self

    def degrade(self, latency_multiplier: float = 1.0) -> None:
        """Apply transient link degradation (fault injection)."""
        if latency_multiplier < 1.0:
            raise ValueError("latency multiplier must be >= 1")
        self.latency_multiplier = latency_multiplier

    def restore_link(self) -> None:
        self.latency_multiplier = 1.0


def attach_tcp(server: Server, profile: TcpProfile | None = None) -> TcpEndpoint:
    """Give ``server`` a TCP endpoint (idempotent)."""
    if server.tcp is None:
        TcpEndpoint(server, profile)
    return server.tcp


class TcpChannel:
    """A connection between two servers; ``send`` moves payload bytes."""

    def __init__(self, src: Server, dst: Server):
        self.src = attach_tcp(src)
        self.dst = attach_tcp(dst)
        self.sim = src.sim

    def send(self, size: int) -> ProcessGenerator:
        """Transmit ``size`` bytes src -> dst, charging both CPUs."""
        with self.sim.tracer.span(
            "tcp.send", cat="net", src=self.src.server.name,
            dst=self.dst.server.name, size=size,
        ):
            return (yield from self._send(size))

    def _send(self, size: int) -> ProcessGenerator:
        profile = self.src.profile
        src_server = self.src.server
        dst_server = self.dst.server
        # Sender: syscall plus copy into kernel buffers.
        yield from src_server.cpu.compute(
            profile.per_message_cpu_us + size / profile.copy_bytes_per_us
        )
        # Wire/protocol pipe, sender side.
        yield self.src.tx.request()
        try:
            yield self.sim.timeout(
                self.src.latency_multiplier * size / profile.bandwidth_bytes_per_us
            )
        finally:
            self.src.tx.release()
        yield self.sim.timeout(profile.stack_latency_us)
        # Receiver pipe.
        yield self.dst.rx.request()
        try:
            yield self.sim.timeout(
                self.dst.latency_multiplier * size / self.dst.profile.bandwidth_bytes_per_us
            )
        finally:
            self.dst.rx.release()
        # Receiver: interrupt handling plus copy out to user space —
        # this is the remote-CPU involvement RDMA avoids.
        yield from dst_server.cpu.compute(
            profile.per_message_cpu_us + size / profile.copy_bytes_per_us
        )
        self.src.bytes_sent += size
        self.dst.bytes_received += size
        return size
