"""SMB network file protocol over TCP or over RDMA (SMB Direct).

These are the two off-the-shelf baselines of Table 5:

* **SMB+RamDrive** — the classic SMB file protocol over TCP/IP against
  a RAM drive on the memory server.  Every request is parsed and served
  by a worker on the *remote* server's CPU, and the payload rides the
  TCP path with its kernel copies.
* **SMBDirect+RamDrive** — SMB 3.0 with RDMA transport.  Payload moves
  via NIC DMA (no remote-CPU per-byte cost), but each request still
  traverses the client SMB/file-system stack and a thin server-side
  dispatch, which caps small-I/O rates well below raw verbs — the
  ~3.4x random-I/O gap between SMB Direct and Custom in Figure 3.

Both serve a :class:`~repro.storage.BlockDevice` (the RamDrive); the
client object exposes the same read/write generator interface as a local
device so the engine can mount either transparently.
"""

from __future__ import annotations

from ..cluster import Server
from ..sim import Resource
from ..sim.kernel import ProcessGenerator
from ..storage import BlockDevice, IoOp
from .tcp import TcpChannel

__all__ = ["SmbFileServer", "SmbClient", "SmbDirectClient"]

#: Request message size on the wire (SMB header + file handle + range).
_REQUEST_BYTES = 256


class SmbFileServer:
    """The server half: a worker pool fronting a local block device."""

    def __init__(self, server: Server, device: BlockDevice, workers: int = 4):
        self.server = server
        self.device = device
        self.workers = Resource(server.sim, capacity=workers, name=f"{server.name}.smb.workers")
        self.requests_served = 0

    def serve(self, op: IoOp, offset: int, size: int, request_cpu_us: float) -> ProcessGenerator:
        """Parse + dispatch + device access, on a pool worker."""
        with self.server.sim.tracer.span("smb.serve", cat="rpc", op=op.value, size=size):
            yield self.workers.request()
            try:
                yield from self.server.cpu.compute(request_cpu_us)
                yield from self.device.io(op, offset, size)
            finally:
                self.workers.release()
        self.requests_served += 1


class SmbClient:
    """SMB over TCP: client half, one connection per (client, server)."""

    #: Client-side SMB/file-system stack CPU per request.
    CLIENT_STACK_CPU_US = 10.0
    #: Server-side request parsing/dispatch CPU per request (on top of
    #: the TCP per-message and copy costs).
    SERVER_REQUEST_CPU_US = 45.0

    def __init__(self, client: Server, file_server: SmbFileServer):
        self.client = client
        self.file_server = file_server
        self._to_server = TcpChannel(client, file_server.server)
        self._from_server = TcpChannel(file_server.server, client)

    def io(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        with self.client.sim.tracer.span("smb.io", op=op.value, size=size):
            yield from self._io(op, offset, size)

    def _io(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        yield from self.client.cpu.compute(self.CLIENT_STACK_CPU_US)
        if op is IoOp.WRITE:
            # Payload travels with the request.
            yield from self._to_server.send(_REQUEST_BYTES + size)
            yield from self.file_server.serve(op, offset, size, self.SERVER_REQUEST_CPU_US)
            yield from self._from_server.send(_REQUEST_BYTES)
        else:
            yield from self._to_server.send(_REQUEST_BYTES)
            yield from self.file_server.serve(op, offset, size, self.SERVER_REQUEST_CPU_US)
            yield from self._from_server.send(_REQUEST_BYTES + size)

    def read(self, offset: int, size: int) -> ProcessGenerator:
        yield from self.io(IoOp.READ, offset, size)

    def write(self, offset: int, size: int) -> ProcessGenerator:
        yield from self.io(IoOp.WRITE, offset, size)


class SmbDirectClient:
    """SMB 3.0 over RDMA: DMA data path, but still a file protocol.

    The serialized client-stack cost (`PER_MESSAGE_US`) models the SMB
    credit machinery, I/O manager and file-system layers that remain on
    the request path even when payload moves by RDMA.
    """

    #: Serialized client SMB/FS stack occupancy per request.
    PER_MESSAGE_US = 5.5
    #: Client CPU per request (IRP setup, completion processing).
    CLIENT_CPU_US = 3.0
    #: Server-side dispatch CPU per request (RDMA placement is cheap).
    SERVER_REQUEST_CPU_US = 3.0

    def __init__(self, client: Server, file_server: SmbFileServer):
        if client.nic is None or file_server.server.nic is None:
            raise ValueError("SMB Direct requires RDMA-attached servers")
        self.client = client
        self.file_server = file_server
        self._stack = Resource(client.sim, capacity=1, name=f"{client.name}.smbd.stack")

    def io(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        with self.client.sim.tracer.span("smbd.io", op=op.value, size=size):
            yield from self._io(op, offset, size)

    def _io(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        sim = self.client.sim
        server = self.file_server.server
        yield from self.client.cpu.compute(self.CLIENT_CPU_US)
        # Request passes through the serialized client stack, then the
        # RDMA-transported request reaches the server.
        yield self._stack.request()
        try:
            yield sim.timeout(self.PER_MESSAGE_US)
        finally:
            self._stack.release()
        yield from self.client.nic.send_control(server.nic)
        yield from self.file_server.serve(op, offset, size, self.SERVER_REQUEST_CPU_US)
        # Payload rides NIC DMA engines: no per-byte CPU on either side.
        if op is IoOp.WRITE:
            yield from self.client.nic.transfer(server.nic, size)
        else:
            yield from server.nic.transfer(self.client.nic, size)

    def read(self, offset: int, size: int) -> ProcessGenerator:
        yield from self.io(IoOp.READ, offset, size)

    def write(self, offset: int, size: int) -> ProcessGenerator:
        yield from self.io(IoOp.WRITE, offset, size)
