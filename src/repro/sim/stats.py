"""Measurement helpers: latency recorders, counters and time series.

These are the simulation-side equivalents of the performance counters
the paper reads off Windows perfmon (I/O throughput, CPU utilization,
I/O latency drill-downs in Figures 11 and 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyRecorder", "Counter", "TimeSeries", "summarize"]


class _SampleList(list):
    """A list that stamps a version on every mutation.

    The percentile cache keys on the version, so *any* mutation —
    including in-place edits that keep the length unchanged, which a
    bare length check cannot see — invalidates the sorted view.
    """

    __slots__ = ("version",)

    def __init__(self, *args):
        super().__init__(*args)
        self.version = 0

    def _bump(method):  # noqa: N805 - decorator over list methods
        def wrapped(self, *args, **kwargs):
            self.version += 1
            return method(self, *args, **kwargs)

        wrapped.__name__ = method.__name__
        return wrapped

    append = _bump(list.append)
    extend = _bump(list.extend)
    insert = _bump(list.insert)
    remove = _bump(list.remove)
    pop = _bump(list.pop)
    clear = _bump(list.clear)
    sort = _bump(list.sort)
    reverse = _bump(list.reverse)
    __setitem__ = _bump(list.__setitem__)
    __delitem__ = _bump(list.__delitem__)
    __iadd__ = _bump(list.__iadd__)
    __imul__ = _bump(list.__imul__)

    del _bump


class LatencyRecorder:
    """Collects latency samples (µs) and reports percentile statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = _SampleList()
        # Sorted-view cache so repeated percentile reads (p50/p95/p99 on
        # the same recorder) don't re-sort O(n log n) each call.
        self._sorted: list[float] | None = None
        self._sorted_version = -1

    def record(self, latency_us: float) -> None:
        self.samples.append(latency_us)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        samples = self.samples
        if not samples:
            return 0.0
        # Any mutation through the ``_SampleList`` API bumps ``version``
        # (including same-length in-place edits); the length check is a
        # fallback for callers that replace ``samples`` with a bare list.
        version = getattr(samples, "version", -1)
        ordered = self._sorted
        if ordered is None or version != self._sorted_version or len(ordered) != len(samples):
            ordered = self._sorted = sorted(samples)
            self._sorted_version = version
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def reset(self) -> None:
        self.samples.clear()
        self._sorted = None


class Counter:
    """Monotonic counter with a helper for rates over virtual time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def rate_per_second(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return self.value / (elapsed_us / 1e6)

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class TimeSeries:
    """Bucketed time series: value accumulated per fixed-width window.

    Used for the drill-down figures (I/O MB/s and CPU% over time).
    """

    bucket_us: float
    name: str = ""
    buckets: dict[int, float] = field(default_factory=dict)

    def add(self, at_us: float, amount: float) -> None:
        self.buckets[int(at_us // self.bucket_us)] = (
            self.buckets.get(int(at_us // self.bucket_us), 0.0) + amount
        )

    def series(self, until_us: float | None = None) -> list[tuple[float, float]]:
        """Return ``(bucket_start_seconds, value)`` pairs, zero-filled.

        ``until_us`` extends the zero-filled tail; it never *drops*
        data — populated buckets beyond ``until_us`` are still included
        (silent truncation would under-report whatever accumulated after
        the caller's nominal window).
        """
        if not self.buckets and until_us is None:
            return []
        last = max(self.buckets) if self.buckets else 0
        if until_us is not None:
            last = max(last, int(until_us // self.bucket_us))
        return [
            (index * self.bucket_us / 1e6, self.buckets.get(index, 0.0))
            for index in range(last + 1)
        ]

    def reset(self) -> None:
        self.buckets.clear()


def summarize(recorder: LatencyRecorder) -> dict[str, float]:
    """A compact dict of the statistics benchmarks print."""
    return {
        "count": float(recorder.count),
        "mean_us": recorder.mean,
        "p50_us": recorder.p50,
        "p95_us": recorder.p95,
        "p99_us": recorder.p99,
        "max_us": recorder.maximum,
    }
