"""Measurement helpers: latency recorders, counters and time series.

These are the simulation-side equivalents of the performance counters
the paper reads off Windows perfmon (I/O throughput, CPU utilization,
I/O latency drill-downs in Figures 11 and 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["LatencyRecorder", "Counter", "TimeSeries", "summarize"]


class LatencyRecorder:
    """Collects latency samples (µs) and reports percentile statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: list[float] = []
        # Sorted-view cache so repeated percentile reads (p50/p95/p99 on
        # the same recorder) don't re-sort O(n log n) each call.
        self._sorted: list[float] | None = None

    def record(self, latency_us: float) -> None:
        self.samples.append(latency_us)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = self._sorted
        if ordered is None or len(ordered) != len(self.samples):
            # Length check guards callers that append to ``samples``
            # directly instead of going through ``record``.
            ordered = self._sorted = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def reset(self) -> None:
        self.samples.clear()
        self._sorted = None


class Counter:
    """Monotonic counter with a helper for rates over virtual time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def rate_per_second(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return self.value / (elapsed_us / 1e6)

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class TimeSeries:
    """Bucketed time series: value accumulated per fixed-width window.

    Used for the drill-down figures (I/O MB/s and CPU% over time).
    """

    bucket_us: float
    name: str = ""
    buckets: dict[int, float] = field(default_factory=dict)

    def add(self, at_us: float, amount: float) -> None:
        self.buckets[int(at_us // self.bucket_us)] = (
            self.buckets.get(int(at_us // self.bucket_us), 0.0) + amount
        )

    def series(self, until_us: float | None = None) -> list[tuple[float, float]]:
        """Return ``(bucket_start_seconds, value)`` pairs, zero-filled."""
        if not self.buckets and until_us is None:
            return []
        last = int(until_us // self.bucket_us) if until_us is not None else max(self.buckets)
        return [
            (index * self.bucket_us / 1e6, self.buckets.get(index, 0.0))
            for index in range(last + 1)
        ]

    def reset(self) -> None:
        self.buckets.clear()


def summarize(recorder: LatencyRecorder) -> dict[str, float]:
    """A compact dict of the statistics benchmarks print."""
    return {
        "count": float(recorder.count),
        "mean_us": recorder.mean,
        "p50_us": recorder.p50,
        "p95_us": recorder.p95,
        "p99_us": recorder.p99,
        "max_us": recorder.maximum,
    }
