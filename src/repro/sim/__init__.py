"""Discrete-event simulation substrate (virtual clock in microseconds)."""

from .cpu import Cpu
from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
)
from .rng import RngRegistry
from .stats import Counter, LatencyRecorder, TimeSeries, summarize

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Cpu",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "summarize",
]
