"""Deterministic named random streams.

Every stochastic component (disk seek jitter, workload key choice, ...)
draws from its own named stream so that adding a new consumer never
perturbs the draws seen by existing ones.  Streams are derived from a
single experiment seed with stable hashing.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent ``numpy`` generators keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def reset(self) -> None:
        """Forget all streams; next use re-derives them from the seed."""
        self._streams.clear()
