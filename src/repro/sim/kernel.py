"""Discrete-event simulation kernel.

Everything in this reproduction runs on virtual time measured in
*microseconds*.  The kernel is a small, SimPy-flavoured engine:

* a :class:`Simulator` owns the virtual clock and the event heap,
* a :class:`Process` wraps a generator that ``yield``\\ s :class:`Event`
  objects and is resumed when they fire,
* a :class:`Resource` models a server with fixed capacity and a FIFO
  queue (a disk spindle, a NIC DMA engine, a CPU core, ...).

The kernel is deterministic: events scheduled for the same instant fire
in scheduling order, so simulations are exactly reproducible for a
given RNG seed.

Scheduling discipline (see DESIGN.md §10 for the determinism argument):

* Future events (timers) live in a binary heap keyed ``(when, seq)``.
* Events triggered *at the current instant* go to a FIFO **now-queue**
  instead of the heap.  ``seq`` is still assigned globally, so the
  now-queue is in ``seq`` order by construction and the loop merely
  merges the two structures by ``(when, seq)`` — the firing order is
  bit-identical to the all-heap discipline, but the common case
  (trigger now, fire now) costs two deque operations instead of two
  ``O(log n)`` heap operations.
* :class:`Timeout`\\ s support **lazy cancellation**: ``cancel()``
  tombstones the timer in place and the loop skips it when its heap
  entry surfaces.  Abandoned deadline/hedge timers therefore cost one
  skipped pop instead of a callback cascade.
* A failed event processed with *no callbacks* raises
  :class:`SimulationError` — failures must be observed, not silently
  dropped.  Attach a no-op callback to deliberately discard one.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry.tracer import NOOP_TRACER

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Store",
    "Simulator",
    "SimulationError",
]

#: Type alias for the generator coroutines driven by the kernel.
ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yield of a non-event, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and all registered callbacks run at the
    simulation instant it fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    #: Tombstone flag.  Plain events are never cancelled, so this is a
    #: class attribute (no per-instance storage); subclasses that support
    #: cancellation (:class:`Timeout`, the store's getter) shadow it
    #: with a real slot.
    _cancelled = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def ok(self) -> bool:
        return self._triggered and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        sim = self.sim
        sim._seq += 1
        sim._nowq.append((sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters.

        A failed event must be *observed*: if it is processed with no
        callbacks attached, the loop raises instead of dropping the
        exception.  Attach a no-op callback to discard one on purpose.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        sim = self.sim
        sim._seq += 1
        sim._nowq.append((sim._seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._cancelled:
            raise SimulationError("cannot wait on a cancelled event")
        if self._processed:
            # Late subscription: run at the current instant.
            self.sim.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class _Soon:
    """A bare ``call_soon`` entry: a function, not a full event."""

    __slots__ = ("fn",)
    _cancelled = False

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation.

    Supports **lazy cancellation**: :meth:`cancel` tombstones the timer;
    its heap entry is skipped (no callbacks run, ``processed`` stays
    false) when the loop reaches it.  :class:`AnyOf` cancels losing
    timers automatically, so abandoned deadline/hedge timers do not
    cascade through the callback machinery when they expire.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Inlined Event.__init__ plus scheduling: Timeout construction is
        # one of the hottest kernel paths (one per modelled service time).
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._triggered = True  # scheduled immediately; fires at now+delay
        self._processed = False
        self._cancelled = False
        self.delay = delay
        sim._seq += 1
        heapq.heappush(sim._heap, (sim.now + delay, sim._seq, self))

    def cancel(self) -> None:
        """Tombstone the timer: it will never fire.

        Idempotent; a no-op once the timer has already fired.  Waiting
        on a cancelled timer is a kernel error (the wait could never
        end), so ``add_callback`` raises on tombstoned events.
        """
        if self._processed or self._cancelled:
            return
        self._cancelled = True
        self.callbacks.clear()


class Process(Event):
    """A running coroutine; as an event, fires when the coroutine returns."""

    __slots__ = ("generator", "name", "_target", "_interrupts", "_send", "_throw")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        # Bound methods cached once: _resume is the single hottest
        # call site in the kernel (one invocation per event fired).
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: deque[Interrupt] = deque()
        # Causal link for tracing: the child inherits the spawner's
        # innermost open span (short-circuited under the no-op tracer).
        if sim.tracer.enabled:
            sim.tracer.on_spawn(self)
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and not target._processed:
            # Detach from the event we were waiting on and wake up now.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
            wake = Event(self.sim)
            wake.callbacks.append(self._resume)
            wake.succeed()

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._target = None
        # Expose the stepping process so the tracer can keep one span
        # stack per process (processes interleave arbitrarily).
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                if self._interrupts:
                    step = self._throw(self._interrupts.popleft())
                elif event._exception is not None:
                    step = self._throw(event._exception)
                else:
                    step = self._send(event._value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except Interrupt:
                # Process chose not to handle the interrupt: dies silently.
                self._finish(None)
                return
        finally:
            sim._active_process = previous
        if not isinstance(step, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(step).__name__}, expected Event"
            )
        if self._interrupts:
            # An interrupt arrived while we were stepping: wake immediately.
            wake = Event(sim)
            wake.callbacks.append(self._resume)
            wake.succeed()
            return
        if step._cancelled:
            raise SimulationError(
                f"process {self.name!r} yielded a cancelled event (it would never fire)"
            )
        self._target = step
        if step._processed:
            step.add_callback(self._resume)  # rare: already-fired event
        else:
            step.callbacks.append(self._resume)

    def _finish(self, value: Any) -> None:
        self._triggered = True
        self._value = value
        sim = self.sim
        if sim.tracer.enabled:
            sim.tracer.on_finish(self)
        sim._seq += 1
        sim._nowq.append((sim._seq, self))


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is (index, value).

    On the first firing the composite *detaches* its callbacks from the
    losing children: a later ``fail()`` on a loser is then processed
    with no observers and escalates through the loop's unobserved-
    failure check instead of being silently swallowed by the
    ``_triggered`` guard.  Losing :class:`Timeout`\\ s with no other
    waiters are tombstoned outright, so abandoned race timers (deadline
    budgets, hedge delays, adaptive spin budgets) expire as skipped heap
    pops rather than callback cascades.
    """

    __slots__ = ("_events", "_waits")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        self._waits: list[Callable[[Event], None]] = []
        for index, event in enumerate(self._events):
            callback = (lambda e, i=index: self._child_done(i, e))
            self._waits.append(callback)
            event.add_callback(callback)

    def _child_done(self, index: int, event: Event) -> None:
        if self._triggered:
            return
        # Detach from every loser so their eventual outcomes are not
        # swallowed by the guard above; tombstone bare losing timers.
        for loser, callback in zip(self._events, self._waits):
            if loser is event or loser._processed:
                continue
            try:
                loser.callbacks.remove(callback)
            except ValueError:
                pass
            if isinstance(loser, Timeout) and not loser.callbacks:
                loser.cancel()
        self._waits = []
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((index, event._value))


class _Request(Event):
    __slots__ = ("resource", "amount")

    def __init__(self, sim: "Simulator", resource: "Resource", amount: int):
        # Inlined Event.__init__ (request issue is a kernel hot path).
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._exception = None
        self._triggered = False
        self._processed = False
        self.resource = resource
        self.amount = amount


class Resource:
    """Capacity-limited server with a FIFO wait queue.

    ``request()`` returns an event that fires when capacity is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[_Request] = deque()
        # Busy-time accounting for utilization reporting.
        self._busy_area = 0.0
        self._last_change = sim.now
        # Busy-area snapshots for *windowed* utilization queries:
        # (time, busy_area-at-that-time), appended by mark_utilization().
        # The creation snapshot makes utilization(since=creation) exact.
        self._busy_marks: list[tuple[float, float]] = [(sim.now, 0.0)]

    def try_acquire(self, amount: int = 1) -> bool:
        """Grant ``amount`` units inline, without an event, when possible.

        Returns True and takes the capacity if no one is queued and the
        units are free — the caller proceeds immediately (same virtual
        instant as an immediately-granted ``request()``, minus the
        scheduler round-trip) and must ``release(amount)`` exactly once.
        Returns False without side effects when the caller must queue
        via ``request()``.
        """
        if self._queue or self.in_use + amount > self.capacity:
            return False
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now
        self.in_use += amount
        return True

    def request(self, amount: int = 1) -> Event:
        if amount > self.capacity:
            raise SimulationError("request exceeds resource capacity")
        sim = self.sim
        req = _Request(sim, self, amount)
        if not self._queue and self.in_use + amount <= self.capacity:
            # Fast path: immediately grantable (the queue head is never
            # grantable while queued, so a non-empty queue means wait).
            now = sim.now
            self._busy_area += self.in_use * (now - self._last_change)
            self._last_change = now
            self.in_use += amount
            req._triggered = True
            sim._seq += 1
            sim._nowq.append((sim._seq, req))
        else:
            self._queue.append(req)
        return req

    def release(self, amount: int = 1) -> None:
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now
        self.in_use -= amount
        if self.in_use < 0:
            raise SimulationError(f"resource {self.name!r} over-released")
        if self._queue:
            self._grant()

    def cancel(self, request: Event) -> None:
        """Abandon a grant request (interrupt-safe teardown).

        If the request was already granted, the capacity is released; if
        it is still queued, it is forgotten.  Processes that can be
        interrupted while waiting for a grant must use this instead of a
        bare ``release`` so capacity is never leaked either way.
        """
        if not isinstance(request, _Request) or request.resource is not self:
            raise SimulationError("cancel() takes a request issued by this resource")
        if request._triggered:
            self.release(request.amount)
            return
        try:
            self._queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        """Grant every queue-head request that fits, in one batch.

        Accounting is settled once up front: all grants in the batch
        happen at the same instant, so per-grant accounting would add
        zero-width slices.  ``succeed`` only *schedules* the waiters
        (callbacks run when the loop pops them), so no release can
        interleave with the batch.
        """
        queue = self._queue
        if not queue or self.in_use + queue[0].amount > self.capacity:
            return
        sim = self.sim
        now = sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now
        in_use = self.in_use
        capacity = self.capacity
        nowq = sim._nowq
        while queue and in_use + queue[0].amount <= capacity:
            req = queue.popleft()
            in_use += req.amount
            req._triggered = True
            sim._seq += 1
            nowq.append((sim._seq, req))
        self.in_use = in_use

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def mark_utilization(self) -> float:
        """Snapshot the busy-area now; returns the snapshot time.

        ``utilization(since=<returned time>)`` is then exact for the
        window between the mark and any later instant.
        """
        self._account()
        now = self.sim.now
        marks = self._busy_marks
        if marks[-1][0] != now:
            marks.append((now, self._busy_area))
        return now

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use between ``since`` and now.

        ``since`` must be 0, at-or-before the resource's creation, or a
        time previously snapshotted with :meth:`mark_utilization` —
        otherwise the busy area consumed before ``since`` is unknown and
        the quotient would overestimate, so the query raises instead of
        silently returning a wrong number.
        """
        self._account()
        now = self.sim.now
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        area = self._busy_area
        if since > 0.0:
            area -= self._area_at(since)
        return area / (elapsed * self.capacity)

    def _area_at(self, when: float) -> float:
        """Busy area accumulated by ``when`` (needs a snapshot there)."""
        marks = self._busy_marks
        if when <= marks[0][0]:
            return 0.0  # before the resource existed: nothing accumulated
        lo, hi = 0, len(marks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if marks[mid][0] <= when:
                lo = mid
            else:
                hi = mid - 1
        time, area = marks[lo]
        if time != when:
            raise SimulationError(
                f"windowed utilization needs a mark_utilization() snapshot at "
                f"t={when:g}us (nearest earlier mark: t={time:g}us)"
            )
        return area

    def acquire(self, amount: int = 1) -> ProcessGenerator:
        """``yield from`` helper: waits for the grant."""
        yield self.request(amount)

    def use(self, duration: float, amount: int = 1) -> ProcessGenerator:
        """Hold ``amount`` units for ``duration`` microseconds."""
        yield self.request(amount)
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(amount)


class _Get(Event):
    """A pending ``Store.get()``; cancellable so interrupts don't eat items."""

    __slots__ = ("store", "_cancelled")

    def __init__(self, sim: "Simulator", store: "Store"):
        super().__init__(sim)
        self.store = store
        self._cancelled = False


class Store:
    """An unbounded FIFO channel of items between processes.

    Interrupt safety: a process interrupted while waiting on ``get()``
    detaches from its getter event, but the event would still sit in
    the waiter queue — and a ``put()`` succeeding it would hand the item
    to a process that never consumes it.  ``put()`` therefore skips
    getters that are cancelled or have no remaining observers, and
    :meth:`cancel` provides the explicit teardown path (mirroring
    :meth:`Resource.cancel`), returning an already-delivered item to the
    head of the queue.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[_Get] = deque()

    def put(self, item: Any) -> None:
        getters = self._getters
        while getters:
            getter = getters.popleft()
            if getter._cancelled or not getter.callbacks:
                # Dead getter: cancelled, or its waiter was interrupted
                # and detached.  Succeeding it would vanish the item.
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = _Get(self.sim, self)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Abandon a ``get()`` (interrupt-safe teardown).

        If the getter already received an item that was never consumed,
        the item is returned to the *head* of the queue (it was the
        oldest); a still-pending getter is tombstoned and purged.
        """
        if not isinstance(event, _Get) or event.store is not self:
            raise SimulationError("cancel() takes a get() event issued by this store")
        if event._cancelled:
            return
        if event._triggered:
            self._items.appendleft(event._value)
            event._cancelled = True
            return
        event._cancelled = True
        event.callbacks.clear()
        try:
            self._getters.remove(event)
        except ValueError:
            pass  # already purged by put()

    def __len__(self) -> int:
        return len(self._items)


class Simulator:
    """Owns the virtual clock (microseconds) and runs the event loop."""

    def __init__(self):
        self.now: float = 0.0
        #: Future events: a heap of ``(when, seq, event)``.
        self._heap: list[tuple[float, int, Event]] = []
        #: Events triggered at the current instant: ``(seq, event)`` in
        #: FIFO (= seq) order.  Always drained before the clock advances.
        self._nowq: deque[tuple[int, Any]] = deque()
        self._seq = 0
        self._running = False
        #: Total events popped by the loop (perf accounting; includes
        #: skipped tombstones and ``call_soon`` thunks).
        self.events_processed = 0
        #: Span tracer; :data:`~repro.telemetry.NOOP_TRACER` unless a
        #: :class:`~repro.telemetry.TraceRecorder` is installed.
        self.tracer = NOOP_TRACER
        #: The process currently being stepped (tracing context).
        self._active_process: Optional[Process] = None

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))

    def _push_triggered(self, event: Event) -> None:
        self._seq += 1
        self._nowq.append((self._seq, event))

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the current instant, after already-queued events."""
        self._seq += 1
        self._nowq.append((self._seq, _Soon(fn)))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def store(self, name: str = "") -> Store:
        return Store(self, name)

    # -- main loop -------------------------------------------------------
    #
    # The loop bodies in ``step``/``run``/``run_until_complete`` are
    # deliberately inlined copies of one another: the kernel spends the
    # whole simulation inside them, and a shared per-event helper call
    # costs ~10 % of the loop.  Keep the three in sync.

    def step(self) -> None:
        """Pop and process exactly one event (public single-step API)."""
        nowq = self._nowq
        heap = self._heap
        if nowq and not (heap and heap[0][0] <= self.now and heap[0][1] < nowq[0][0]):
            _seq, event = nowq.popleft()
        else:
            when, _seq, event = heapq.heappop(heap)
            if when < self.now:
                raise SimulationError("time ran backwards")
            self.now = when
        self.events_processed += 1
        if event._cancelled:
            return
        if event.__class__ is _Soon:
            event.fn()
            return
        event._processed = True
        callbacks = event.callbacks
        if callbacks:
            event.callbacks = []
            for callback in callbacks:
                callback(event)
        elif event._exception is not None:
            raise SimulationError(
                f"failed event died unobserved: {event._exception!r}"
            ) from event._exception

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or the clock passes ``until``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heappop = heapq.heappop
        nowq = self._nowq
        heap = self._heap
        events = 0
        try:
            while nowq or heap:
                if nowq and not (heap and heap[0][0] <= self.now and heap[0][1] < nowq[0][0]):
                    _seq, event = nowq.popleft()
                else:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        return
                    when, _seq, event = heappop(heap)
                    if when < self.now:
                        raise SimulationError("time ran backwards")
                    self.now = when
                events += 1
                if event._cancelled:
                    continue
                if event.__class__ is _Soon:
                    event.fn()
                    continue
                event._processed = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None:
                    raise SimulationError(
                        f"failed event died unobserved: {event._exception!r}"
                    ) from event._exception
            if until is not None and until > self.now:
                self.now = until
        finally:
            self.events_processed += events
            self._running = False

    def run_until_complete(self, process: Process, limit: float = 1e15) -> Any:
        """Run until ``process`` finishes and return its value."""
        heappop = heapq.heappop
        nowq = self._nowq
        heap = self._heap
        events = 0
        try:
            while not process._triggered:
                if nowq and not (heap and heap[0][0] <= self.now and heap[0][1] < nowq[0][0]):
                    _seq, event = nowq.popleft()
                elif heap:
                    if heap[0][0] > limit:
                        raise SimulationError(
                            f"process {process.name!r} exceeded time limit"
                        )
                    when, _seq, event = heappop(heap)
                    if when < self.now:
                        raise SimulationError("time ran backwards")
                    self.now = when
                else:
                    raise SimulationError(
                        f"deadlock: process {process.name!r} cannot complete"
                    )
                events += 1
                if event._cancelled:
                    continue
                if event.__class__ is _Soon:
                    event.fn()
                    continue
                event._processed = True
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                elif event._exception is not None:
                    raise SimulationError(
                        f"failed event died unobserved: {event._exception!r}"
                    ) from event._exception
        finally:
            self.events_processed += events
        return process.value
