"""Discrete-event simulation kernel.

Everything in this reproduction runs on virtual time measured in
*microseconds*.  The kernel is a small, SimPy-flavoured engine:

* a :class:`Simulator` owns the virtual clock and the event heap,
* a :class:`Process` wraps a generator that ``yield``\\ s :class:`Event`
  objects and is resumed when they fire,
* a :class:`Resource` models a server with fixed capacity and a FIFO
  queue (a disk spindle, a NIC DMA engine, a CPU core, ...).

The kernel is deterministic: events scheduled for the same instant fire
in scheduling order, so simulations are exactly reproducible for a
given RNG seed.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry.tracer import NOOP_TRACER

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Store",
    "Simulator",
    "SimulationError",
]

#: Type alias for the generator coroutines driven by the kernel.
ProcessGenerator = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (double-trigger, yield of a non-event, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and all registered callbacks run at the
    simulation instant it fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def ok(self) -> bool:
        return self._triggered and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._push_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception delivered to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        self.sim._push_triggered(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            # Late subscription: run at the current instant.
            self.sim.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._triggered = True  # scheduled immediately; fires at now+delay
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running coroutine; as an event, fires when the coroutine returns."""

    __slots__ = ("generator", "name", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: deque[Interrupt] = deque()
        # Causal link for tracing: the child inherits the spawner's
        # innermost open span (no-op on the default tracer).
        sim.tracer.on_spawn(self)
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and not target._processed:
            # Detach from the event we were waiting on and wake up now.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
            wake = Event(self.sim)
            wake.callbacks.append(self._resume)
            wake.succeed()

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        self._target = None
        # Expose the stepping process so the tracer can keep one span
        # stack per process (processes interleave arbitrarily).
        sim = self.sim
        previous = sim._active_process
        sim._active_process = self
        try:
            try:
                if self._interrupts:
                    step = self.generator.throw(self._interrupts.popleft())
                elif event._exception is not None:
                    step = self.generator.throw(event._exception)
                else:
                    step = self.generator.send(event._value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
            except Interrupt:
                # Process chose not to handle the interrupt: dies silently.
                self._finish(None)
                return
        finally:
            sim._active_process = previous
        if not isinstance(step, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(step).__name__}, expected Event"
            )
        if self._interrupts:
            # An interrupt arrived while we were stepping: wake immediately.
            wake = Event(self.sim)
            wake.callbacks.append(self._resume)
            wake.succeed()
            return
        self._target = step
        step.add_callback(self._resume)

    def _finish(self, value: Any) -> None:
        self._triggered = True
        self._value = value
        self.sim.tracer.on_finish(self)
        self.sim._push_triggered(self)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Fires when the first child event fires; value is (index, value)."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf needs at least one event")
        for index, event in enumerate(self._events):
            event.add_callback(lambda e, i=index: self._child_done(i, e))

    def _child_done(self, index: int, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((index, event._value))


class _Request(Event):
    __slots__ = ("resource", "amount")

    def __init__(self, sim: "Simulator", resource: "Resource", amount: int):
        super().__init__(sim)
        self.resource = resource
        self.amount = amount


class Resource:
    """Capacity-limited server with a FIFO wait queue.

    ``request()`` returns an event that fires when capacity is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque[_Request] = deque()
        # Busy-time accounting for utilization reporting.
        self._busy_area = 0.0
        self._last_change = sim.now

    def request(self, amount: int = 1) -> Event:
        if amount > self.capacity:
            raise SimulationError("request exceeds resource capacity")
        req = _Request(self.sim, self, amount)
        self._queue.append(req)
        self._grant()
        return req

    def release(self, amount: int = 1) -> None:
        self._account()
        self.in_use -= amount
        if self.in_use < 0:
            raise SimulationError(f"resource {self.name!r} over-released")
        self._grant()

    def cancel(self, request: Event) -> None:
        """Abandon a grant request (interrupt-safe teardown).

        If the request was already granted, the capacity is released; if
        it is still queued, it is forgotten.  Processes that can be
        interrupted while waiting for a grant must use this instead of a
        bare ``release`` so capacity is never leaked either way.
        """
        if not isinstance(request, _Request) or request.resource is not self:
            raise SimulationError("cancel() takes a request issued by this resource")
        if request.triggered:
            self.release(request.amount)
            return
        try:
            self._queue.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._queue and self.in_use + self._queue[0].amount <= self.capacity:
            req = self._queue.popleft()
            self._account()
            self.in_use += req.amount
            req.succeed()

    def _account(self) -> None:
        now = self.sim.now
        self._busy_area += self.in_use * (now - self._last_change)
        self._last_change = now

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use between ``since`` and now."""
        self._account()
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self._busy_area / (elapsed * self.capacity)

    def acquire(self, amount: int = 1) -> ProcessGenerator:
        """``yield from`` helper: waits for the grant."""
        yield self.request(amount)

    def use(self, duration: float, amount: int = 1) -> ProcessGenerator:
        """Hold ``amount`` units for ``duration`` microseconds."""
        yield self.request(amount)
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(amount)


class Store:
    """An unbounded FIFO channel of items between processes."""

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Simulator:
    """Owns the virtual clock (microseconds) and runs the event loop."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        #: Span tracer; :data:`~repro.telemetry.NOOP_TRACER` unless a
        #: :class:`~repro.telemetry.TraceRecorder` is installed.
        self.tracer = NOOP_TRACER
        #: The process currently being stepped (tracing context).
        self._active_process: Optional[Process] = None

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))

    def _push_triggered(self, event: Event) -> None:
        self._schedule_at(self.now, event)

    def call_soon(self, fn: Callable[[], None]) -> None:
        event = Event(self)
        event.callbacks.append(lambda _e: fn())
        event.succeed()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def store(self, name: str = "") -> Store:
        return Store(self, name)

    # -- main loop -------------------------------------------------------

    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time ran backwards")
        self.now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock passes ``until``."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    return
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until_complete(self, process: Process, limit: float = 1e15) -> Any:
        """Run until ``process`` finishes and return its value."""
        while not process.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {process.name!r} cannot complete"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(f"process {process.name!r} exceeded time limit")
            self.step()
        return process.value
