"""CPU model: cores, context switches, spin-versus-yield I/O waits.

The paper's key scheduling insight (Section 4.1.3) is that a remote
memory access completes in ~10 µs, which is comparable to the cost of a
context switch, so treating RDMA as a classic asynchronous I/O wastes
most of the benefit.  This module gives simulation threads the two
options the paper contrasts:

* :meth:`Cpu.sync_wait` — keep the core and spin until the transfer
  completes (the paper's *Custom* design),
* :meth:`Cpu.async_wait` — yield the core, and on completion pay the
  context-switch and re-scheduling penalty (what stock SQL Server does
  for any I/O, including *SMBDirect+RamDrive*).
"""

from __future__ import annotations

from .kernel import Event, ProcessGenerator, Resource, Simulator, Timeout
from .stats import TimeSeries

__all__ = ["Cpu"]

#: Direct cost of a context switch (register/state swap), microseconds.
CONTEXT_SWITCH_US = 2.0
#: Extra penalty after switch-in: processor cache pollution plus the lag
#: between I/O completion and the thread being scheduled back in.
RESCHEDULE_DELAY_US = 8.0


class Cpu:
    """A server's processor: ``cores`` identical cores with a run queue."""

    def __init__(
        self,
        sim: Simulator,
        cores: int,
        name: str = "",
        context_switch_us: float = CONTEXT_SWITCH_US,
        reschedule_delay_us: float = RESCHEDULE_DELAY_US,
    ):
        self.sim = sim
        self.cores = Resource(sim, capacity=cores, name=f"{name}.cores")
        self.name = name
        self.context_switch_us = context_switch_us
        self.reschedule_delay_us = reschedule_delay_us
        self.busy_series: TimeSeries | None = None
        self.context_switches = 0

    # -- measurement ----------------------------------------------------

    def track_utilization(self, bucket_us: float = 1e6) -> TimeSeries:
        """Start bucketing busy core-microseconds for drill-down figures."""
        self.busy_series = TimeSeries(bucket_us, name=f"{self.name}.busy_us")
        return self.busy_series

    def _record_busy(self, start_us: float, duration: float) -> None:
        if self.busy_series is None or duration <= 0:
            return
        # Split the busy interval across buckets so long computations do
        # not all land in the bucket where they finish.
        series = self.busy_series
        remaining = duration
        cursor = start_us
        while remaining > 0:
            bucket_end = (int(cursor // series.bucket_us) + 1) * series.bucket_us
            chunk = min(remaining, bucket_end - cursor)
            series.add(cursor, chunk)
            cursor += chunk
            remaining -= chunk

    def utilization(self, since: float = 0.0) -> float:
        """Mean core utilization since ``since`` (see Resource.utilization).

        Windowed queries (``since > 0``) are exact only for times
        snapshotted with :meth:`mark_utilization` — the busy-area
        integral starts at core creation, so an unanchored window would
        overestimate.
        """
        return self.cores.utilization(since)

    def mark_utilization(self) -> float:
        """Snapshot busy-area now; returns the time to pass as ``since``."""
        return self.cores.mark_utilization()

    # -- execution primitives -------------------------------------------

    def acquire_core(self) -> ProcessGenerator:
        """Wait for a core grant, interrupt-safely.

        A process interrupted while *queued* for a core (e.g. a
        reliability deadline expiring under CPU contention) must not
        leave its request behind — the eventual grant would go to a dead
        process and leak the core forever.
        """
        if self.cores.try_acquire():
            return  # free core: granted inline, no scheduler round-trip
        request = self.cores.request()
        try:
            if not self.sim.tracer.enabled:
                yield request
            else:
                # Only an actual wait gets a span — an immediate grant
                # would just litter the trace with zero-width events.
                with self.sim.tracer.span("cpu.runq", cat="queue"):
                    yield request
        except BaseException:
            self.cores.cancel(request)
            raise

    def compute(self, duration_us: float) -> ProcessGenerator:
        """Occupy one core for ``duration_us`` of pure computation.

        This is the kernel's hottest instrumentation site (one call per
        modelled CPU slice), so ``acquire_core`` is inlined and the
        span machinery is bypassed entirely under the no-op tracer.
        """
        if duration_us <= 0:
            return
        sim = self.sim
        cores = self.cores
        tracer = sim.tracer
        if not cores.try_acquire():
            request = cores.request()
            try:
                if not tracer.enabled:
                    yield request
                else:
                    # Only an actual wait gets a span — an immediate
                    # grant would just litter the trace with
                    # zero-width events.
                    with tracer.span("cpu.runq", cat="queue"):
                        yield request
            except BaseException:
                cores.cancel(request)
                raise
        start = sim.now
        try:
            if tracer.enabled:
                with tracer.span("cpu.compute", cat="cpu"):
                    yield Timeout(sim, duration_us)
            else:
                yield Timeout(sim, duration_us)
        finally:
            if self.busy_series is not None:
                self._record_busy(start, sim.now - start)
            cores.release()

    def sync_wait(self, event: Event) -> ProcessGenerator:
        """Spin on a core until ``event`` fires (no context switch).

        The core is *busy* for the whole wait — this is what makes the
        synchronous model cheap in latency but expensive in CPU, exactly
        the trade-off in Section 4.1.3.
        """
        yield from self.acquire_core()
        sim = self.sim
        start = sim.now
        try:
            if sim.tracer.enabled:
                with sim.tracer.span("cpu.spin", cat="cpu"):
                    yield event
            else:
                yield event
        finally:
            self._record_busy(start, sim.now - start)
            self.cores.release()
        return event.value

    def async_wait(self, event: Event) -> ProcessGenerator:
        """Yield the core, wait for ``event``, pay the switch-in penalty."""
        yield event
        self.context_switches += 1
        sim = self.sim
        if sim.tracer.enabled:
            with sim.tracer.span("cpu.switchin", cat="cpu"):
                yield from self._switch_in(sim)
        else:
            yield from self._switch_in(sim)
        return event.value

    def _switch_in(self, sim: Simulator) -> ProcessGenerator:
        """Reschedule lag, then a core slice for the switch-in itself."""
        yield sim.timeout(self.reschedule_delay_us)
        # Switch-in consumes a slice of CPU (and may queue behind others).
        yield from self.acquire_core()
        start = sim.now
        try:
            yield sim.timeout(self.context_switch_us)
        finally:
            self._record_busy(start, sim.now - start)
            self.cores.release()

    def background_load(self, per_event_us: float, event_stream_period_us: float):
        """Generator simulating kernel work (e.g. TCP interrupt handling).

        Spawn with ``sim.spawn`` to steal ``per_event_us`` of CPU every
        ``event_stream_period_us``; used to model protocol processing on
        the remote server.
        """
        while True:
            yield self.sim.timeout(event_stream_period_us)
            yield from self.compute(per_event_us)
