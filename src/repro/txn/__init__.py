"""Transactions for the simulated engine: strict 2PL, deadlock
detection with deterministic victim selection, before-image undo,
WAL-integrated commit/abort with seeded retry, and an offline
conflict-serializability checker.

The entry point is :meth:`repro.engine.Database.transactions`, which
returns the database's (lazily created) :class:`TransactionManager`;
``manager.run(body)`` executes ``body(txn)`` with automatic
rollback-and-retry on deadlock or fault-doom.  See DESIGN.md §12.
"""

from .checker import (
    CheckResult,
    CommittedTxn,
    TxnHistory,
    check_serializable,
    committed_row_images,
)
from .errors import (
    DeadlockAbort,
    TransactionAborted,
    TransactionDoomed,
    TxnRetriesExhausted,
)
from .locks import LockManager, LockMode
from .transaction import DEFAULT_TXN_POLICY, Transaction, TransactionManager, TxnState

__all__ = [
    "CheckResult",
    "CommittedTxn",
    "DEFAULT_TXN_POLICY",
    "DeadlockAbort",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionAborted",
    "TransactionDoomed",
    "TransactionManager",
    "TxnHistory",
    "TxnRetriesExhausted",
    "TxnState",
    "check_serializable",
    "committed_row_images",
]
