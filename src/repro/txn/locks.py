"""Strict two-phase locking with wait-for-graph deadlock detection.

The lock table maps arbitrary hashable resources (row keys, districts,
whole tables) to shared/exclusive lock state.  Waiters park on kernel
:class:`~repro.sim.kernel.Event`\\ s in FIFO queues — the same wait
semantics as :class:`~repro.sim.kernel.Resource`, generalized to lock
*modes*: shared requests at the queue head are granted in batches,
exclusive requests wait for an empty holder set, and an upgrade
(S → X by an existing holder) jumps to the queue front.

Deadlocks are detected *at wait time*: every blocked request triggers a
DFS over the wait-for graph (waiter → conflicting holders and
conflicting requests queued ahead of it).  Victim selection is
deterministic — the cycle member with the **largest seniority rank**
(the youngest *intent*, which has done the least work) is aborted by
failing its wait event with :class:`~repro.txn.errors.DeadlockAbort`.
Seniority is assigned by :meth:`LockManager.set_seniority` (the
transaction manager reuses the first attempt's rank across retries, so
a repeatedly victimized transaction ages into seniority and cannot
starve); unranked transactions fall back to their id.  Determinism
matters: a seeded run must pick the same victims every replay.

Nothing here draws randomness or time beyond the waits themselves, so
the lock manager adds no perturbation to seeded experiments.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional

from ..sim.kernel import Event, ProcessGenerator, Simulator
from .errors import DeadlockAbort

__all__ = ["LockManager", "LockMode"]


class LockMode(enum.IntEnum):
    """Lock modes, ordered by strength (X subsumes S)."""

    SHARED = 1
    EXCLUSIVE = 2


@dataclass
class _LockRequest:
    txn_id: int
    mode: LockMode
    event: Event
    #: True when an S holder asks for X: queued at the front, grantable
    #: once every *other* holder has released.
    upgrade: bool = False


class _Lock:
    """Per-resource state: current holders plus the FIFO wait queue."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: dict[int, LockMode] = {}
        self.queue: deque[_LockRequest] = deque()


def _conflicts(a: LockMode, b: LockMode) -> bool:
    return a is LockMode.EXCLUSIVE or b is LockMode.EXCLUSIVE


class LockManager:
    """2PL lock table shared by every transaction of one database."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._locks: dict[Hashable, _Lock] = {}
        #: txn_id -> {resource: mode} for everything currently held.
        self._held: dict[int, dict[Hashable, LockMode]] = {}
        #: txn_id -> (request, resource) while blocked (one wait at a time).
        self._waiting: dict[int, tuple[_LockRequest, Hashable]] = {}
        #: txn_id -> seniority rank for victim selection (lower = older
        #: intent; retries keep their first attempt's rank).
        self._seniority: dict[int, int] = {}
        self.acquires = 0
        self.waits = 0
        self.upgrades = 0
        #: Deadlock victims chosen (one per broken cycle).
        self.deadlocks = 0
        #: Total virtual time spent blocked on lock waits.
        self.lock_wait_us = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when no locks are held and nobody waits (leak check)."""
        return not self._locks and not self._waiting

    def held_by(self, txn_id: int) -> dict[Hashable, LockMode]:
        return dict(self._held.get(txn_id, {}))

    def holders_of(self, resource: Hashable) -> dict[int, LockMode]:
        lock = self._locks.get(resource)
        return dict(lock.holders) if lock is not None else {}

    def set_seniority(self, txn_id: int, rank: int) -> None:
        """Rank ``txn_id`` for victim selection (lower = more senior).

        A retried transaction registered with its first attempt's rank
        outranks everything that started after that first attempt —
        without this, fresh-id-per-retry would re-victimize the same
        intent forever against a long-running senior holder.
        """
        self._seniority[txn_id] = rank

    # -- acquire / release -------------------------------------------------

    def acquire(
        self, txn_id: int, resource: Hashable, mode: LockMode
    ) -> ProcessGenerator:
        """Take ``resource`` in ``mode``; blocks (FIFO) on conflict.

        Reentrant: holding a mode at least as strong is a no-op; holding
        S and asking for X is an upgrade.  Raises
        :class:`~repro.txn.errors.DeadlockAbort` if this wait closes a
        cycle and the caller is chosen as victim; other victims have the
        exception thrown at their own wait site.
        """
        self.acquires += 1
        lock = self._locks.setdefault(resource, _Lock())
        held = self._held.setdefault(txn_id, {}).get(resource)
        if held is not None and held >= mode:
            return  # reentrant
        if held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            self.upgrades += 1
            if set(lock.holders) == {txn_id}:
                lock.holders[txn_id] = mode
                self._held[txn_id][resource] = mode
                return
            request = _LockRequest(txn_id, mode, self.sim.event(), upgrade=True)
            lock.queue.appendleft(request)
        else:
            if not lock.queue and self._grantable_now(lock, txn_id, mode):
                lock.holders[txn_id] = mode
                self._held[txn_id][resource] = mode
                return
            request = _LockRequest(txn_id, mode, self.sim.event())
            lock.queue.append(request)
        self.waits += 1
        self._waiting[txn_id] = (request, resource)
        try:
            # May raise DeadlockAbort right here if *we* are the victim.
            self._resolve_deadlocks(txn_id)
        except BaseException:
            self._waiting.pop(txn_id, None)
            raise
        start = self.sim.now
        try:
            yield request.event
        except BaseException:
            # Interrupted (or failed) while queued: unlink; if the grant
            # already happened the held-set cleanup falls to release_all.
            self._unlink(resource, request)
            raise
        finally:
            self.lock_wait_us += self.sim.now - start
            self._waiting.pop(txn_id, None)

    def release_all(self, txn_id: int) -> None:
        """Drop every lock of ``txn_id`` (commit/abort), granting waiters."""
        self._seniority.pop(txn_id, None)
        held = self._held.pop(txn_id, None) or {}
        for resource in held:
            lock = self._locks.get(resource)
            if lock is None:
                continue
            lock.holders.pop(txn_id, None)
            self._grant_waiters(resource, lock)
            self._gc(resource, lock)

    # -- grant machinery ---------------------------------------------------

    def _grantable_now(self, lock: _Lock, txn_id: int, mode: LockMode) -> bool:
        if mode is LockMode.SHARED:
            return all(
                held is LockMode.SHARED
                for holder, held in lock.holders.items()
                if holder != txn_id
            )
        return all(holder == txn_id for holder in lock.holders)

    def _grant_waiters(self, resource: Hashable, lock: _Lock) -> None:
        """Grant from the queue head; consecutive S requests batch."""
        while lock.queue:
            head = lock.queue[0]
            if head.upgrade:
                ok = set(lock.holders) <= {head.txn_id}
            elif head.mode is LockMode.EXCLUSIVE:
                ok = not lock.holders
            else:
                ok = all(held is LockMode.SHARED for held in lock.holders.values())
            if not ok:
                return
            lock.queue.popleft()
            lock.holders[head.txn_id] = head.mode
            self._held.setdefault(head.txn_id, {})[resource] = head.mode
            head.event.succeed()

    def _unlink(self, resource: Hashable, request: _LockRequest) -> None:
        lock = self._locks.get(resource)
        if lock is None:
            return
        try:
            lock.queue.remove(request)
        except ValueError:
            return  # already granted (or already unlinked)
        # Removing a queued request can unblock everything behind it
        # (e.g. a doomed X waiter ahead of compatible S requests).
        self._grant_waiters(resource, lock)
        self._gc(resource, lock)

    def _gc(self, resource: Hashable, lock: _Lock) -> None:
        if not lock.holders and not lock.queue:
            del self._locks[resource]

    # -- deadlock detection ------------------------------------------------

    def _blockers(self, request: _LockRequest, resource: Hashable) -> set[int]:
        """Who must finish before ``request`` can be granted."""
        lock = self._locks.get(resource)
        if lock is None:
            return set()
        blockers: set[int] = set()
        for holder, held in lock.holders.items():
            if holder != request.txn_id and _conflicts(request.mode, held):
                blockers.add(holder)
        for queued in lock.queue:
            if queued is request:
                break
            if queued.txn_id != request.txn_id and _conflicts(request.mode, queued.mode):
                blockers.add(queued.txn_id)
        return blockers

    def wait_for_edges(self) -> dict[int, set[int]]:
        """Snapshot of the wait-for graph (waiting txn -> blockers)."""
        edges: dict[int, set[int]] = {}
        for txn_id, (request, resource) in self._waiting.items():
            if request.event.triggered:
                continue  # granted, just not resumed yet
            edges[txn_id] = self._blockers(request, resource)
        return edges

    def _resolve_deadlocks(self, requester: int) -> None:
        """Break every cycle reachable from ``requester``'s new edge.

        Victim = the least senior cycle member (deterministic; falls
        back to txn id — youngest first — when nothing is ranked).  If
        the requester itself is the victim the abort is raised
        synchronously, before it ever parks.
        """
        while True:
            cycle = self._find_cycle(requester)
            if cycle is None:
                return
            victim = max(
                cycle, key=lambda txn: (self._seniority.get(txn, txn), txn)
            )
            self.deadlocks += 1
            request, resource = self._waiting.pop(victim)
            self._unlink(resource, request)
            abort = DeadlockAbort(victim, tuple(cycle))
            if victim == requester:
                raise abort
            request.event.fail(abort)

    def _find_cycle(self, start: int) -> Optional[list[int]]:
        edges = self.wait_for_edges()
        if start not in edges:
            return None
        path: list[int] = [start]
        on_path: set[int] = {start}
        done: set[int] = set()
        stack: list[Iterator[int]] = [iter(sorted(edges[start]))]
        while stack:
            advanced = False
            for node in stack[-1]:
                if node in on_path:
                    return path[path.index(node):]
                if node in done or node not in edges:
                    continue  # finished subtree, or a non-waiting holder
                path.append(node)
                on_path.add(node)
                stack.append(iter(sorted(edges[node])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                finished = path.pop()
                on_path.discard(finished)
                done.add(finished)
        return None
