"""Transaction-layer exceptions.

Everything retryable derives from :class:`TransactionAborted`, so the
retry loop in :class:`~repro.txn.TransactionManager` can catch one type
and still distinguish deadlock victims from fault-doomed transactions
for its counters.
"""

from __future__ import annotations

__all__ = [
    "DeadlockAbort",
    "TransactionAborted",
    "TransactionDoomed",
    "TxnRetriesExhausted",
]


class TransactionAborted(RuntimeError):
    """The transaction cannot commit and must be rolled back.

    Retryable: the retry loop rolls back, waits a seeded backoff and
    runs the body again under a fresh transaction id.
    """


class DeadlockAbort(TransactionAborted):
    """Chosen as the victim of a wait-for cycle by the lock manager."""

    def __init__(self, txn_id: int, cycle: tuple[int, ...]):
        super().__init__(f"txn {txn_id} chosen as deadlock victim (cycle {list(cycle)})")
        self.txn_id = txn_id
        self.cycle = cycle


class TransactionDoomed(TransactionAborted):
    """A fault invalidated remote memory the transaction may depend on.

    Raised at the transaction's next safe point (operation entry or
    commit entry) after a provider crash or lease revocation swept pages
    out of the buffer-pool extension mid-flight.  The write-ahead log is
    on local disk and unaffected, so rollback and retry are always
    possible.
    """

    def __init__(self, txn_id: int, reason: str):
        super().__init__(f"txn {txn_id} doomed: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class TxnRetriesExhausted(RuntimeError):
    """The retry budget ran out without a successful commit."""

    def __init__(self, attempts: int, last: TransactionAborted):
        super().__init__(f"transaction failed after {attempts} attempts: {last}")
        self.attempts = attempts
        self.last = last
