"""Transactions: strict 2PL + undo + WAL + seeded abort/retry.

A :class:`Transaction` brackets reads and writes of one database under
strict two-phase locking (all locks held to commit/abort), keeps
before-images for rollback, and logs through the write-ahead log with
its transaction id:

* lazily a ``BEGIN`` record before the first data record,
* one ``append_nowait`` data record per write — only the ``COMMIT``
  waits for durability, which is sufficient because group-commit
  batches acknowledge strictly in LSN order,
* an ``ABORT`` record plus reverse-order before-image restore on
  rollback.

:meth:`TransactionManager.run` is the retry loop: aborts (deadlock
victims, fault-doomed transactions) roll back, wait a seeded
exponential backoff (:class:`~repro.reliability.RetrySchedule` — the
same policy machinery the remote-read path uses) and re-run the body
under a **fresh transaction id**, so every id has at most one outcome
record in the log and recovery's commit-filtering stays unambiguous.

Fault coupling: the manager subscribes to the buffer-pool extension's
``loss_listeners``.  When a provider crash or lease revocation sweeps
pages out of remote memory mid-flight, every active transaction is
*doomed* — conservatively, since cheap row-level provenance does not
exist — and raises :class:`~repro.txn.errors.TransactionDoomed` at its
next safe point (operation entry or commit entry).  Once the COMMIT
record's flush has started the transaction commits regardless: the log
lives on local disk, which remote faults cannot touch.  Plain lease
expiry (renewal storms) never fires the listener — leases are renewed
or re-acquired under the data, so transactions *survive* lease expiry
mid-flight; only actual media loss dooms them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Hashable, Optional

import numpy as np

from ..engine.errors import EngineError
from ..engine.wal import RECORD_CPU_US, LogRecord, LogRecordKind
from ..reliability.policy import ReliabilityPolicy
from ..reliability.retry import RetrySchedule
from ..sim.kernel import ProcessGenerator
from .checker import TxnHistory
from .errors import DeadlockAbort, TransactionAborted, TransactionDoomed, TxnRetriesExhausted
from .locks import LockManager, LockMode

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.catalog import Table
    from ..engine.database import Database

__all__ = ["Transaction", "TransactionManager", "TxnState", "DEFAULT_TXN_POLICY"]

#: Backoff tuning for transaction retry: first retry almost immediate,
#: doubling with jitter, capped low — OLTP retries should not dawdle.
DEFAULT_TXN_POLICY = ReliabilityPolicy(
    retry_attempts=8,
    retry_base_us=100.0,
    retry_multiplier=2.0,
    retry_max_us=5_000.0,
    retry_jitter=0.5,
)

#: Cap on lock-and-rescan rounds for range reads (phantom chasing).
SCAN_VALIDATE_ROUNDS = 8


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work under strict 2PL.  Use via ``manager.run``."""

    def __init__(self, manager: "TransactionManager", txn_id: int, name: str = ""):
        self.manager = manager
        self.db = manager.db
        self.sim = manager.sim
        self.txn_id = txn_id
        self.name = name
        self.state = TxnState.ACTIVE
        self.doomed_reason: Optional[str] = None
        self._began_logged = False
        self._wrote = False
        #: Reverse-order undo entries: (kind, table, key, before_rows).
        self._undo: list[tuple[str, "Table", Any, Optional[list[tuple]]]] = []
        #: (item, previous_version) stamps to restore on rollback.
        self._undo_versions: list[tuple[Hashable, int]] = []
        self._on_commit: list[Callable[[], None]] = []
        #: (item, observed_version) — only with ``record_history``.
        self.reads: list[tuple[Hashable, int]] = []
        #: (item, after_image) — only with ``record_history``.
        self.writes: list[tuple[Hashable, Any]] = []

    # -- bookkeeping -------------------------------------------------------

    def doom(self, reason: str) -> bool:
        """Mark for abort-at-next-safe-point; True if newly doomed."""
        if self.state is TxnState.ACTIVE and self.doomed_reason is None:
            self.doomed_reason = reason
            return True
        return False

    def _check(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise EngineError(f"txn {self.txn_id} is {self.state.value}, not active")
        if self.doomed_reason is not None:
            raise TransactionDoomed(self.txn_id, self.doomed_reason)

    def on_commit(self, fn: Callable[[], None]) -> None:
        """Defer side-effect-free bookkeeping until the commit point."""
        self._on_commit.append(fn)

    @staticmethod
    def row_item(table: "Table", key: Any) -> Hashable:
        """Canonical lock/history item for one row."""
        return ("row", table.name, key)

    def _record_read(self, item: Hashable) -> None:
        if self.manager.record_history:
            self.reads.append((item, self.manager._versions.get(item, 0)))

    def _record_write(self, item: Hashable, after: Any) -> None:
        versions = self.manager._versions
        self._undo_versions.append((item, versions.get(item, 0)))
        versions[item] = self.txn_id
        if self.manager.record_history:
            self.writes.append((item, after))

    def _log(self, kind: LogRecordKind, table: str = "", key: Any = None,
             row: Any = None) -> ProcessGenerator:
        wal = self.db.wal
        cpu = self.db.server.cpu
        if not self._began_logged:
            self._began_logged = True
            self._wrote = True
            wal.append_nowait(
                LogRecord(lsn=wal.next_lsn(), kind=LogRecordKind.BEGIN, txn_id=self.txn_id)
            )
            yield from cpu.compute(RECORD_CPU_US)
        record = LogRecord(
            lsn=wal.next_lsn(), kind=kind, table=table, key=key, row=row,
            txn_id=self.txn_id,
        )
        wal.append_nowait(record)
        yield from cpu.compute(RECORD_CPU_US)
        return record

    # -- operations --------------------------------------------------------

    def lock(self, resource: Hashable, mode: LockMode = LockMode.EXCLUSIVE) -> ProcessGenerator:
        """Explicitly lock an application-level resource (e.g. a district)."""
        self._check()
        yield from self.manager.locks.acquire(self.txn_id, resource, mode)

    def read(self, table: "Table", key: Any, lock: bool = True) -> ProcessGenerator:
        """Point read; S-locks the row first (strict 2PL) unless opted out."""
        self._check()
        item = self.row_item(table, key)
        if lock:
            yield from self.manager.locks.acquire(self.txn_id, item, LockMode.SHARED)
        rows = yield from table.clustered.search(key)
        self._record_read(item)
        return rows

    def update(
        self, table: "Table", key: Any, mutate: Callable[[tuple], tuple],
        lock: bool = True,
    ) -> ProcessGenerator:
        """X-lock, log the after-image, apply; keeps the before-image.

        ``lock=False`` skips the row lock — only valid when the caller
        already holds a coarser lock covering this row (e.g. TPC-C's
        district-granularity mode).
        """
        self._check()
        item = self.row_item(table, key)
        if lock:
            yield from self.manager.locks.acquire(self.txn_id, item, LockMode.EXCLUSIVE)
        before = yield from table.clustered.search(key)
        if not before:
            raise EngineError(f"txn {self.txn_id}: update of missing key {key!r} in {table.name}")
        afters = [mutate(row) for row in before]
        after = afters[0] if len(afters) == 1 else tuple(afters)
        record = yield from self._log(LogRecordKind.UPDATE, table.name, key, after)
        replacement = iter(afters)
        yield from table.clustered.update_where(key, lambda _row: next(replacement), lsn=record.lsn)
        self._undo.append(("update", table, key, before))
        self._record_write(item, after)
        return after

    def insert(self, table: "Table", row: tuple, lock: bool = True) -> ProcessGenerator:
        """X-lock the new key, log, insert."""
        self._check()
        key = table.key_of(row)
        item = self.row_item(table, key)
        if lock:
            yield from self.manager.locks.acquire(self.txn_id, item, LockMode.EXCLUSIVE)
        record = yield from self._log(LogRecordKind.INSERT, table.name, key, row)
        yield from table.clustered.insert(row, lsn=record.lsn)
        table.stats.row_count += 1
        self._undo.append(("insert", table, key, None))
        self._record_write(item, row)
        return row

    def delete(self, table: "Table", key: Any, lock: bool = True) -> ProcessGenerator:
        """X-lock, log, delete; before-images allow re-insert on abort."""
        self._check()
        item = self.row_item(table, key)
        if lock:
            yield from self.manager.locks.acquire(self.txn_id, item, LockMode.EXCLUSIVE)
        before = yield from table.clustered.search(key)
        record = yield from self._log(LogRecordKind.DELETE, table.name, key, None)
        removed = yield from table.clustered.delete(key, lsn=record.lsn)
        table.stats.row_count -= removed
        self._undo.append(("delete", table, key, before))
        self._record_write(item, None)
        return removed

    def scan(
        self, table: "Table", low: Any, high: Any, limit: Optional[int] = None,
        lock: bool = True,
    ) -> ProcessGenerator:
        """Range read with lock-and-rescan validation.

        Scans, S-locks every returned key in ascending order, then
        rescans; once a pass returns only already-locked keys its rows
        are stable (every key was locked *before* the pass began).
        Block- or range-level locks are deliberately avoided: TPC-C
        order-line keys are globally sequential, so locking blocks
        would serialize every new-order on the rightmost leaf.
        """
        self._check()
        key_fn = table.clustered.key_fn
        rows = yield from table.clustered.range_scan(low, high, limit)
        if lock:
            locked: set = set()
            for _round in range(SCAN_VALIDATE_ROUNDS):
                pending = sorted({key_fn(row) for row in rows} - locked)
                if not pending:
                    break
                for key in pending:
                    yield from self.manager.locks.acquire(
                        self.txn_id, self.row_item(table, key), LockMode.SHARED
                    )
                    locked.add(key)
                rows = yield from table.clustered.range_scan(low, high, limit)
        for row in rows:
            self._record_read(self.row_item(table, key_fn(row)))
        return rows

    # -- outcome -----------------------------------------------------------

    def commit(self) -> ProcessGenerator:
        """Harden (group commit) and release.  Doom is checked once, at
        entry: after the COMMIT record's flush starts the transaction
        commits regardless — the log device is local."""
        self._check()
        if self._wrote:
            record = LogRecord(
                lsn=self.db.wal.next_lsn(), kind=LogRecordKind.COMMIT, txn_id=self.txn_id
            )
            yield from self.db.wal.append(record)
        self.state = TxnState.COMMITTED
        self.manager._finish_commit(self)

    def rollback(self) -> ProcessGenerator:
        """Log ABORT, restore before-images in reverse, release locks."""
        if self.state is not TxnState.ACTIVE:
            return
        undo_lsn = 0
        if self._wrote:
            record = LogRecord(
                lsn=self.db.wal.next_lsn(), kind=LogRecordKind.ABORT, txn_id=self.txn_id
            )
            self.db.wal.append_nowait(record)
            yield from self.db.server.cpu.compute(RECORD_CPU_US)
            undo_lsn = record.lsn
        for kind, table, key, before in reversed(self._undo):
            if kind == "update":
                replacement = iter(before)
                yield from table.clustered.update_where(
                    key, lambda _row: next(replacement), lsn=undo_lsn
                )
            elif kind == "insert":
                removed = yield from table.clustered.delete(key, lsn=undo_lsn)
                table.stats.row_count -= removed
            else:  # delete
                for row in before or ():
                    yield from table.clustered.insert(row, lsn=undo_lsn)
                table.stats.row_count += len(before or ())
        versions = self.manager._versions
        for item, stamp in reversed(self._undo_versions):
            if stamp == 0:
                versions.pop(item, None)
            else:
                versions[item] = stamp
        self.state = TxnState.ABORTED
        self.manager._finish_abort(self)


class TransactionManager:
    """Per-database transaction service: ids, locks, retry, history.

    Obtain via :meth:`repro.engine.Database.transactions` so every
    session of one database shares the same lock table.
    """

    def __init__(
        self,
        db: "Database",
        policy: Optional[ReliabilityPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        record_history: bool = False,
    ):
        self.db = db
        self.sim = db.sim
        self.locks = LockManager(self.sim)
        self.policy = policy if policy is not None else DEFAULT_TXN_POLICY
        self.rng = rng if rng is not None else np.random.default_rng(0x7C17C1)
        self.schedule = RetrySchedule(self.policy, self.rng)
        self.record_history = record_history
        self.history = TxnHistory()
        #: item -> txn_id of the last writer (0 / absent = initial load).
        self._versions: dict[Hashable, int] = {}
        self._active: dict[int, Transaction] = {}
        self._next_txn_id = 1
        self.begins = 0
        self.commits = 0
        self.aborts = 0
        self.deadlock_aborts = 0
        self.doom_aborts = 0
        #: Distinct doom events delivered to active transactions.
        self.dooms = 0
        self.retries = 0
        self.exhausted = 0
        self._subscribe_loss(db.pool.extension)

    # -- fault coupling ----------------------------------------------------

    def _subscribe_loss(self, extension: Optional[object]) -> None:
        if extension is None:
            return
        levels = getattr(extension, "levels", None)
        for level in levels if levels is not None else [extension]:
            listeners = getattr(level, "loss_listeners", None)
            if listeners is not None:
                listeners.append(self._on_media_loss)

    def _on_media_loss(self, provider: Optional[str], lost: list) -> None:
        """Extension pages evaporated: doom every in-flight transaction."""
        if not lost:
            return
        reason = f"provider {provider or '<all>'} lost {len(lost)} extension page(s)"
        for txn in list(self._active.values()):
            if txn.doom(reason):
                self.dooms += 1

    # -- lifecycle ---------------------------------------------------------

    def begin(self, name: str = "", seniority: Optional[int] = None) -> Transaction:
        """Open a transaction.  ``seniority`` ranks it for deadlock
        victim selection; retries pass their first attempt's id so the
        intent ages instead of staying forever-youngest."""
        txn = Transaction(self, self._next_txn_id, name)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.locks.set_seniority(
            txn.txn_id, txn.txn_id if seniority is None else seniority
        )
        self.begins += 1
        return txn

    def _finish_commit(self, txn: Transaction) -> None:
        if self.record_history:
            self.history.install(txn.txn_id, txn.reads, txn.writes)
        for fn in txn._on_commit:
            fn()
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self.commits += 1

    def _finish_abort(self, txn: Transaction) -> None:
        self.locks.release_all(txn.txn_id)
        self._active.pop(txn.txn_id, None)
        self.aborts += 1

    def run(
        self, body: Callable[[Transaction], ProcessGenerator], name: str = ""
    ) -> ProcessGenerator:
        """Run ``body(txn)`` to commit, retrying aborts with backoff.

        Each attempt gets a fresh transaction (fresh id), so the log
        never holds two outcome records for one id, but every attempt
        keeps the first attempt's deadlock seniority so the retried
        intent cannot be re-victimized indefinitely.  Non-abort
        exceptions roll back and propagate.
        """
        attempt = 0
        seniority: Optional[int] = None
        while True:
            txn = self.begin(name, seniority=seniority)
            if seniority is None:
                seniority = txn.txn_id
            try:
                result = yield from body(txn)
                yield from txn.commit()
                return result
            except TransactionAborted as abort:
                if isinstance(abort, DeadlockAbort):
                    self.deadlock_aborts += 1
                elif isinstance(abort, TransactionDoomed):
                    self.doom_aborts += 1
                yield from txn.rollback()
                attempt += 1
                if not self.schedule.allows(attempt):
                    self.exhausted += 1
                    raise TxnRetriesExhausted(attempt, abort) from abort
                self.retries += 1
                backoff = self.schedule.backoff_us(attempt)
                if backoff > 0:
                    yield self.sim.timeout(backoff)
            except BaseException:
                yield from txn.rollback()
                raise

    # -- reporting ---------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def stats(self) -> dict[str, float]:
        """Counter snapshot (exact, virtual-time deterministic)."""
        return {
            "begins": self.begins,
            "commits": self.commits,
            "aborts": self.aborts,
            "deadlock_aborts": self.deadlock_aborts,
            "doom_aborts": self.doom_aborts,
            "dooms": self.dooms,
            "retries": self.retries,
            "exhausted": self.exhausted,
            "deadlocks_detected": self.locks.deadlocks,
            "lock_waits": self.locks.waits,
            "lock_wait_us": round(self.locks.lock_wait_us, 6),
        }
