"""Offline conflict-serializability checking over committed history.

While a seeded run executes with ``record_history`` enabled, every
committed transaction contributes:

* its **reads** as ``(item, version)`` pairs, where the version is the
  transaction id of the writer whose value was observed (0 = initial
  database load), and
* its **writes** as ``(item, after_image)`` pairs, appended to the
  per-item committed version chain in commit order.

Items are row-granular (``("row", table, key)``), matching the lock
manager's default granularity.  After the run,
:func:`check_serializable` rebuilds the conflict graph — write-read,
write-write and read-write (anti-dependency) edges between committed
transactions — and demands it be acyclic.  Reads of versions that never
committed are flagged as dirty reads.  With ``final_rows`` (built by
:func:`committed_row_images` from an *untimed* walk of the real B-tree
leaves), the last committed after-image of every item must equal the
actual row on storage: aborted work must have left no trace and
committed work must have survived — the "zero committed-data loss on
real row data" criterion of the fault scenarios.

Scope: this is *conflict* serializability at item granularity.  Range
predicates are validated by lock-and-rescan in
:meth:`~repro.txn.Transaction.scan`, but phantom inserts are not
modelled as conflicts (no next-key locking), matching classic
row-locking engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.database import Database

__all__ = [
    "CheckResult",
    "CommittedTxn",
    "TxnHistory",
    "check_serializable",
    "committed_row_images",
]


@dataclass
class CommittedTxn:
    """One committed transaction's reads and writes, in commit order."""

    txn_id: int
    commit_seq: int
    reads: list[tuple[Hashable, int]] = field(default_factory=list)
    writes: list[tuple[Hashable, Any]] = field(default_factory=list)


class TxnHistory:
    """Committed-transaction log plus per-item version chains."""

    def __init__(self) -> None:
        self.committed: list[CommittedTxn] = []
        #: item -> [(writer_txn_id, after_image)] in commit order.
        self.item_chain: dict[Hashable, list[tuple[int, Any]]] = {}

    def install(
        self,
        txn_id: int,
        reads: Iterable[tuple[Hashable, int]],
        writes: Iterable[tuple[Hashable, Any]],
    ) -> int:
        """Record a commit; returns its sequence number."""
        seq = len(self.committed)
        txn = CommittedTxn(txn_id, seq, list(reads), list(writes))
        self.committed.append(txn)
        for item, after in txn.writes:
            self.item_chain.setdefault(item, []).append((txn_id, after))
        return seq


@dataclass
class CheckResult:
    ok: bool
    violations: list[str]
    txns: int
    items: int
    edges: int

    def summary(self) -> str:
        status = "serializable" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{status}: {self.txns} txns, {self.items} items, {self.edges} edges"


def _find_cycle(edges: dict[int, set[int]]) -> Optional[list[int]]:
    """Deterministic iterative DFS; returns one cycle or None."""
    done: set[int] = set()
    for root in sorted(edges):
        if root in done:
            continue
        path = [root]
        on_path = {root}
        stack = [iter(sorted(edges.get(root, ())))]
        while stack:
            advanced = False
            for node in stack[-1]:
                if node in on_path:
                    return path[path.index(node):]
                if node in done:
                    continue
                path.append(node)
                on_path.add(node)
                stack.append(iter(sorted(edges.get(node, ()))))
                advanced = True
                break
            if not advanced:
                stack.pop()
                finished = path.pop()
                on_path.discard(finished)
                done.add(finished)
    return None


def check_serializable(
    history: TxnHistory, final_rows: Optional[dict[Hashable, Any]] = None
) -> CheckResult:
    """Verify conflict serializability (and optionally the final state)."""
    violations: list[str] = []
    committed_ids = {txn.txn_id for txn in history.committed}
    chains = history.item_chain
    edges: dict[int, set[int]] = {txn.txn_id: set() for txn in history.committed}

    # ww edges: consecutive writers of the same item.
    for chain in chains.values():
        for (earlier, _a), (later, _b) in zip(chain, chain[1:]):
            if earlier != later:
                edges[earlier].add(later)

    # wr and rw edges from each committed read.
    for txn in history.committed:
        for item, version in txn.reads:
            if version == txn.txn_id:
                continue  # read-your-own-write
            chain = chains.get(item, [])
            if version == 0:
                # Initial-load read: rw edge to the first committed
                # writer (the read observed the pre-write version, so it
                # must serialize before every writer).
                first = next(
                    (writer for writer, _v in chain if writer != txn.txn_id), None
                )
                if first is not None:
                    edges[txn.txn_id].add(first)
                continue
            positions = [i for i, (writer, _v) in enumerate(chain) if writer == version]
            if version not in committed_ids or not positions:
                violations.append(
                    f"txn {txn.txn_id} read version {version} of {item!r}, "
                    "which never committed (dirty read)"
                )
                continue
            edges[version].add(txn.txn_id)  # wr
            after = next(
                (writer for writer, _v in chain[positions[-1] + 1:]), None
            )
            if after is not None and after != txn.txn_id:
                edges[txn.txn_id].add(after)  # rw anti-dependency

    cycle = _find_cycle(edges)
    if cycle is not None:
        violations.append(f"conflict cycle among committed txns: {cycle}")

    if final_rows is not None:
        for item in sorted(chains, key=repr):
            writer, expected = chains[item][-1]
            actual = final_rows.get(item)
            if expected is None:
                if actual is not None:
                    violations.append(
                        f"{item!r}: deleted by txn {writer} but still present: {actual!r}"
                    )
            elif actual != expected:
                violations.append(
                    f"{item!r}: committed image from txn {writer} lost "
                    f"(expected {expected!r}, found {actual!r})"
                )

    return CheckResult(
        ok=not violations,
        violations=violations,
        txns=len(history.committed),
        items=len(chains),
        edges=sum(len(out) for out in edges.values()),
    )


def committed_row_images(
    db: "Database", tables: Iterable[Any]
) -> dict[Hashable, Any]:
    """Actual rows on real pages, keyed like lock/history items.

    Untimed (no simulated I/O), so it can run after the simulation
    finished.  The newest image of each page is whichever is fresher:
    the resident buffer-pool frame (dirty frames have not reached the
    store yet) or the store's authoritative snapshot.  Assumes unique
    keys per table — true for every workload schema in this repo.
    """
    from ..engine.page import PageKind

    images: dict[Hashable, Any] = {}
    for table in tables:
        key_of = table.schema.key_of
        tree = table.clustered
        store = tree.store
        resident = {
            page.page_no: page
            for page in db.pool.cached_pages()
            if page.file_id == store.file_id
        }

        def newest(page_no: int):
            page = resident.get(page_no)
            return page if page is not None else store.peek(page_no)

        page = newest(tree.root_page_no)
        while page.kind is PageKind.BTREE_INTERNAL:
            page = newest(page.meta["children"][0])
        while page is not None:
            for row in page.rows:
                images[("row", table.name, key_of(row))] = row
            next_no = page.meta.get("next")
            page = newest(next_no) if next_no is not None else None
    return images
