"""Parallel data loading with remote CPU brokering (Appendix C).

Loading flat files into an RDBMS is CPU-intensive: parsing, conversion
to native format, compression.  With idle remote servers available, the
splits can be loaded *there* into in-memory files, and the destination
server then pulls the loaded partitions over RDMA — a copy that is
negligible next to the load itself, yielding near-linear speedup
(Figure 27: 6919 s on one server vs 894 s on eight, ~7.7x).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Server
from ..sim import Resource
from ..sim.kernel import AllOf, ProcessGenerator
from ..storage import KB

__all__ = ["LoadSplit", "LoadReport", "load_splits", "parallel_load"]

#: Core-microseconds to parse/convert one KB of raw input (parsing,
#: type conversion, compression — bulk load is CPU-bound).
PARSE_CPU_US_PER_KB = 340.0
#: Concurrent load streams per server (bulk-load tools bound this).
LOAD_STREAMS_PER_SERVER = 8


@dataclass(frozen=True)
class LoadSplit:
    """One input flat file."""

    split_id: int
    size_bytes: int


@dataclass
class LoadReport:
    servers: int
    load_us: float = 0.0
    copy_us: float = 0.0
    bytes_loaded: int = 0

    @property
    def total_us(self) -> float:
        return self.load_us + self.copy_us


def _load_on_server(server: Server, splits: list[LoadSplit], streams: Resource) -> ProcessGenerator:
    """Parse/convert the splits on ``server`` using its cores."""
    def one(split: LoadSplit) -> ProcessGenerator:
        yield streams.request()
        try:
            yield from server.cpu.compute(split.size_bytes / KB * PARSE_CPU_US_PER_KB)
        finally:
            streams.release()

    # Longest-splits-first keeps the streams balanced (LPT scheduling,
    # what parallel bulk-load tools do with variable input files).
    ordered = sorted(splits, key=lambda split: -split.size_bytes)
    jobs = [server.sim.spawn(one(split)) for split in ordered]
    yield AllOf(server.sim, jobs)


def load_splits(server: Server, splits: list[LoadSplit]) -> ProcessGenerator:
    """Single-server load (the 1-server bar of Figure 27)."""
    sim = server.sim
    start = sim.now
    streams = Resource(sim, capacity=LOAD_STREAMS_PER_SERVER, name=f"{server.name}.load")
    yield from _load_on_server(server, splits, streams)
    return LoadReport(
        servers=1,
        load_us=sim.now - start,
        copy_us=0.0,
        bytes_loaded=sum(split.size_bytes for split in splits),
    )


def parallel_load(
    destination: Server,
    helpers: list[Server],
    splits: list[LoadSplit],
) -> ProcessGenerator:
    """Load splits across helper servers, then pull results over RDMA.

    Splits are round-robined over the helpers; each helper loads into a
    local in-memory file; the destination then reads every partition
    through its NIC (timed via the NIC DMA pipes).
    """
    if not helpers:
        return (yield from load_splits(destination, splits))
    sim = destination.sim
    start = sim.now
    assignments: dict[str, list[LoadSplit]] = {server.name: [] for server in helpers}
    for index, split in enumerate(splits):
        assignments[helpers[index % len(helpers)].name].append(split)
    jobs = []
    for server in helpers:
        streams = Resource(sim, capacity=LOAD_STREAMS_PER_SERVER, name=f"{server.name}.load")
        jobs.append(
            sim.spawn(_load_on_server(server, assignments[server.name], streams))
        )
    yield AllOf(sim, jobs)
    load_us = sim.now - start
    # Copy phase: pull each helper's loaded partition over RDMA.  The
    # native format is ~60% of the raw size after conversion/compression.
    copy_start = sim.now
    copy_jobs = []
    for server in helpers:
        loaded_bytes = int(sum(s.size_bytes for s in assignments[server.name]) * 0.6)
        if loaded_bytes:
            copy_jobs.append(
                sim.spawn(server.nic.transfer(destination.nic, loaded_bytes))
            )
    if copy_jobs:
        yield AllOf(sim, copy_jobs)
    return LoadReport(
        servers=len(helpers),
        load_us=load_us,
        copy_us=sim.now - copy_start,
        bytes_loaded=sum(split.size_bytes for split in splits),
    )
