"""Schemas, tables and the database catalog."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Optional

from .errors import EngineError
from .page import rows_per_page

__all__ = ["Column", "Schema", "TableStats", "Table", "Catalog"]


@dataclass(frozen=True)
class Column:
    name: str
    kind: str = "int"  # "int" | "float" | "str"
    width: int = 8


@dataclass(frozen=True)
class Schema:
    """Fixed-width row layout; column order matches row tuple order."""

    columns: tuple[Column, ...]
    key: str  # clustering key column name

    @property
    def row_bytes(self) -> int:
        return sum(column.width for column in self.columns) + 8  # row header

    @property
    def rows_per_page(self) -> int:
        return rows_per_page(self.row_bytes)

    def index_of(self, name: str) -> int:
        for position, column in enumerate(self.columns):
            if column.name == name:
                return position
        raise EngineError(f"no column {name!r}")

    @cached_property
    def key_index(self) -> int:
        # Cached: key extraction runs once per row on every B-tree
        # probe, and the column scan in index_of would dominate it.
        # (cached_property writes the instance __dict__ directly, which
        # is fine on a frozen dataclass — the value is derived, not a
        # field, so equality and hashing are unaffected.)
        return self.index_of(self.key)

    def key_of(self, row: tuple) -> Any:
        return row[self.key_index]

    def extractor(self, name: str) -> Callable[[tuple], Any]:
        position = self.index_of(name)
        return lambda row: row[position]


@dataclass
class TableStats:
    row_count: int = 0
    page_count: int = 0
    min_key: Any = None
    max_key: Any = None

    @property
    def rows_per_page(self) -> float:
        return self.row_count / self.page_count if self.page_count else 0.0


@dataclass
class Table:
    name: str
    schema: Schema
    file_id: int
    #: Clustered B-tree (set after load); None for pure heaps.
    clustered: Any = None
    stats: TableStats = field(default_factory=TableStats)
    #: Secondary indexes by name.
    indexes: dict[str, Any] = field(default_factory=dict)

    def key_of(self, row: tuple) -> Any:
        return self.schema.key_of(row)


class Catalog:
    """Names -> tables, plus file-id allocation for the whole database."""

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self._next_file_id = 1

    def allocate_file_id(self) -> int:
        file_id = self._next_file_id
        self._next_file_id += 1
        return file_id

    def add_table(self, name: str, schema: Schema) -> Table:
        if name in self.tables:
            raise EngineError(f"table {name!r} already exists")
        table = Table(name=name, schema=schema, file_id=self.allocate_file_id())
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise EngineError(f"no table {name!r}")
        return self.tables[name]

    def drop_table(self, name: str) -> Optional[Table]:
        return self.tables.pop(name, None)
