"""Page-based B-tree.

Every node is an 8K :class:`~repro.engine.page.Page` living in the
table's file, accessed through the buffer pool — so index traversals
exercise exactly the memory-hierarchy path the paper studies: hot upper
levels stay in the local pool, cold leaves fall to BPExt (remote memory
or SSD) or the data file on the HDD array.

Used both as a clustered index (leaf rows are full table rows) and as a
secondary index (leaf rows are ``(key, primary_key)`` pairs).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Optional

from ..sim.kernel import ProcessGenerator
from .bufferpool import BufferPool
from .errors import EngineError
from .files import PageStore
from .page import Page, PageKind

__all__ = ["BTree"]

#: Fanout of internal nodes (separator key + child pointer = 16 bytes,
#: 8 KB page => ~500; kept lower to model header/slot overheads).
INTERNAL_FANOUT = 256
#: CPU cost of a binary search / leaf scan step.
NODE_SEARCH_CPU_US = 0.6


class BTree:
    """B-tree over (key-sorted) rows with page-granular storage."""

    def __init__(
        self,
        name: str,
        pool: BufferPool,
        store: PageStore,
        key_fn: Callable[[tuple], Any],
        leaf_capacity: int,
    ):
        if leaf_capacity < 2:
            raise EngineError("leaf capacity must be at least 2")
        self.name = name
        self.pool = pool
        self.store = store
        self.key_fn = key_fn
        self.leaf_capacity = leaf_capacity
        self.root_page_no: Optional[int] = None
        self.height = 0
        self.leaf_count = 0
        self._next_page_no = 0
        # Writer latch: concurrent structural changes (splits) interleave
        # across simulation yields and would corrupt the tree; readers
        # proceed latch-free as in real engines' optimistic descent.
        self._write_latch = self.pool.server.sim.resource(1, name=f"{name}.wlatch")

    # -- construction ------------------------------------------------------

    def _new_page_no(self) -> int:
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def bulk_build(self, rows: Iterable[tuple]) -> None:
        """Build bottom-up from rows already sorted by key.

        Pages are written straight into the store (initial load happens
        before measurement windows, so no simulated I/O is charged —
        experiments that care about load cost use the loader module).
        """
        ordered = list(rows)
        for earlier, later in zip(ordered, ordered[1:]):
            if self.key_fn(earlier) > self.key_fn(later):
                raise EngineError("bulk_build requires key-sorted rows")
        file_id = self.store.file_id
        leaves: list[Page] = []
        for start in range(0, len(ordered), self.leaf_capacity):
            chunk = ordered[start : start + self.leaf_capacity]
            page = Page(
                page_id=(file_id, self._new_page_no()),
                kind=PageKind.BTREE_LEAF,
                rows=list(chunk),
                meta={"next": None},
            )
            leaves.append(page)
        if not leaves:
            root = Page(
                page_id=(file_id, self._new_page_no()),
                kind=PageKind.BTREE_LEAF,
                rows=[],
                meta={"next": None},
            )
            leaves.append(root)
        for left, right in zip(leaves, leaves[1:]):
            left.meta["next"] = right.page_no
        self.leaf_count = len(leaves)
        # Build internal levels bottom-up; track the low key of every
        # node so parents get correct separator keys.
        def low_key(page: Page) -> Any:
            if page.kind is PageKind.BTREE_LEAF:
                return self.key_fn(page.rows[0]) if page.rows else None
            return page.meta["low_key"]

        internals: list[Page] = []
        level = leaves
        self.height = 1
        while len(level) > 1:
            parents: list[Page] = []
            for start in range(0, len(level), INTERNAL_FANOUT):
                children = level[start : start + INTERNAL_FANOUT]
                parent = Page(
                    page_id=(file_id, self._new_page_no()),
                    kind=PageKind.BTREE_INTERNAL,
                    rows=[],
                    meta={
                        "keys": [low_key(child) for child in children[1:]],
                        "children": [child.page_no for child in children],
                        "low_key": low_key(children[0]),
                    },
                )
                parents.append(parent)
            internals.extend(parents)
            level = parents
            self.height += 1
        self.root_page_no = level[0].page_no
        if not hasattr(self.store, "preload"):
            raise EngineError("bulk_build requires a preloadable store")
        self.store.preload(leaves + internals)

    # -- traversal -------------------------------------------------------------

    def _descend(self, key: Any) -> ProcessGenerator:
        """Walk root -> leftmost leaf that can contain ``key``.

        Uses ``bisect_left`` so duplicate keys spanning several leaves
        are all reachable by following ``next`` pointers from here.
        """
        if self.root_page_no is None:
            raise EngineError(f"index {self.name} is empty/unbuilt")
        page = yield from self.pool.get_page(self.store.file_id, self.root_page_no)
        while page.kind is PageKind.BTREE_INTERNAL:
            yield from self.pool.server.cpu.compute(NODE_SEARCH_CPU_US)
            keys = page.meta["keys"]
            child_index = bisect.bisect_left(keys, key)
            child_no = page.meta["children"][child_index]
            page = yield from self.pool.get_page(self.store.file_id, child_no)
        yield from self.pool.server.cpu.compute(NODE_SEARCH_CPU_US)
        return page

    def search(self, key: Any) -> ProcessGenerator:
        """Point lookup: all rows with exactly ``key`` (across leaves)."""
        leaf = yield from self._descend(key)
        result: list[tuple] = []
        key_fn = self.key_fn
        while leaf is not None:
            # Leaf rows are kept in key order, so bisect to the first
            # candidate instead of scanning the leaf from the left.
            rows = leaf.rows
            exhausted = False
            for row in rows[bisect.bisect_left(rows, key, key=key_fn):]:
                if key_fn(row) == key:
                    result.append(row)
                else:
                    exhausted = True
                    break
            if exhausted:
                break
            next_no = leaf.meta.get("next")
            if next_no is None:
                break
            leaf = yield from self.pool.get_page(self.store.file_id, next_no)
        return result

    def range_scan(self, low: Any, high: Any, limit: Optional[int] = None) -> ProcessGenerator:
        """All rows with ``low <= key < high`` (optionally first ``limit``)."""
        leaf = yield from self._descend(low)
        result: list[tuple] = []
        while leaf is not None:
            keys = [self.key_fn(row) for row in leaf.rows]
            start = bisect.bisect_left(keys, low)
            for row in leaf.rows[start:]:
                key = self.key_fn(row)
                if key >= high:
                    return result
                result.append(row)
                if limit is not None and len(result) >= limit:
                    return result
            next_no = leaf.meta.get("next")
            if next_no is None:
                break
            leaf = yield from self.pool.get_page(self.store.file_id, next_no)
        return result

    def leaf_page_numbers(self) -> ProcessGenerator:
        """Page numbers of every leaf, left to right (no pool churn)."""
        if self.root_page_no is None:
            return []
        page = yield from self.pool.get_page(self.store.file_id, self.root_page_no)
        while page.kind is PageKind.BTREE_INTERNAL:
            first_child = page.meta["children"][0]
            page = yield from self.pool.get_page(self.store.file_id, first_child)
        numbers = []
        while page is not None:
            numbers.append(page.page_no)
            next_no = page.meta.get("next")
            if next_no is None:
                break
            page = yield from self.pool.get_page(self.store.file_id, next_no)
        return numbers

    # -- mutation ----------------------------------------------------------------

    def update_where(self, key: Any, mutate: Callable[[tuple], tuple], lsn: int = 0) -> ProcessGenerator:
        """Replace every row with ``key`` by ``mutate(row)``; returns count."""
        leaf = yield from self._descend(key)
        changed = 0
        while leaf is not None:
            leaf_changed = 0
            exhausted = False
            new_rows = []
            for row in leaf.rows:
                row_key = self.key_fn(row)
                if row_key == key:
                    new_rows.append(mutate(row))
                    leaf_changed += 1
                else:
                    new_rows.append(row)
                    if row_key > key:
                        exhausted = True
            if leaf_changed:
                leaf.rows[:] = new_rows
                yield from self.pool.mark_dirty(leaf, lsn=lsn)
                changed += leaf_changed
            if exhausted:
                break
            next_no = leaf.meta.get("next")
            if next_no is None:
                break
            leaf = yield from self.pool.get_page(self.store.file_id, next_no)
        return changed

    def insert(self, row: tuple, lsn: int = 0) -> ProcessGenerator:
        """Insert one row, splitting leaves (and parents) as needed."""
        key = self.key_fn(row)
        yield self._write_latch.request()
        try:
            path = yield from self._descend_with_path(key)
            leaf = path[-1]
            keys = [self.key_fn(r) for r in leaf.rows]
            position = bisect.bisect_right(keys, key)
            leaf.rows.insert(position, row)
            yield from self.pool.mark_dirty(leaf, lsn=lsn)
            if len(leaf.rows) > self.leaf_capacity:
                yield from self._split(path, lsn)
        finally:
            self._write_latch.release()

    def delete(self, key: Any, lsn: int = 0) -> ProcessGenerator:
        """Delete all rows with ``key`` (no rebalancing, like many engines)."""
        yield self._write_latch.request()
        try:
            removed = yield from self._delete_locked(key, lsn)
        finally:
            self._write_latch.release()
        return removed

    def _delete_locked(self, key: Any, lsn: int) -> ProcessGenerator:
        leaf = yield from self._descend(key)
        removed = 0
        while leaf is not None:
            before = len(leaf.rows)
            exhausted = any(self.key_fn(row) > key for row in leaf.rows)
            leaf.rows[:] = [row for row in leaf.rows if self.key_fn(row) != key]
            if len(leaf.rows) != before:
                yield from self.pool.mark_dirty(leaf, lsn=lsn)
                removed += before - len(leaf.rows)
            if exhausted:
                break
            next_no = leaf.meta.get("next")
            if next_no is None:
                break
            leaf = yield from self.pool.get_page(self.store.file_id, next_no)
        return removed

    def _descend_with_path(self, key: Any) -> ProcessGenerator:
        if self.root_page_no is None:
            raise EngineError(f"index {self.name} is empty/unbuilt")
        path = []
        page = yield from self.pool.get_page(self.store.file_id, self.root_page_no)
        path.append(page)
        while page.kind is PageKind.BTREE_INTERNAL:
            yield from self.pool.server.cpu.compute(NODE_SEARCH_CPU_US)
            child_index = bisect.bisect_right(page.meta["keys"], key)
            child_no = page.meta["children"][child_index]
            page = yield from self.pool.get_page(self.store.file_id, child_no)
            path.append(page)
        return path

    def _split(self, path: list[Page], lsn: int) -> ProcessGenerator:
        """Split the overflowing tail node of ``path`` upward."""
        node = path[-1]
        parents = path[:-1]
        while True:
            if node.kind is PageKind.BTREE_LEAF:
                mid = len(node.rows) // 2
                right = Page(
                    page_id=(self.store.file_id, self._new_page_no()),
                    kind=PageKind.BTREE_LEAF,
                    rows=node.rows[mid:],
                    meta={"next": node.meta.get("next")},
                )
                separator = self.key_fn(right.rows[0])
                node.rows[:] = node.rows[:mid]
                node.meta["next"] = right.page_no
                self.leaf_count += 1
            else:
                mid = len(node.meta["children"]) // 2
                separator = node.meta["keys"][mid - 1]
                right = Page(
                    page_id=(self.store.file_id, self._new_page_no()),
                    kind=PageKind.BTREE_INTERNAL,
                    rows=[],
                    meta={
                        "keys": node.meta["keys"][mid:],
                        "children": node.meta["children"][mid:],
                    },
                )
                node.meta["keys"] = node.meta["keys"][: mid - 1]
                node.meta["children"] = node.meta["children"][:mid]
            yield from self.pool.put_page(right, dirty=True)
            yield from self.pool.mark_dirty(node, lsn=lsn)
            if parents:
                parent = parents.pop()
                child_index = parent.meta["children"].index(node.page_no)
                parent.meta["keys"].insert(child_index, separator)
                parent.meta["children"].insert(child_index + 1, right.page_no)
                yield from self.pool.mark_dirty(parent, lsn=lsn)
                overflow = len(parent.meta["children"]) > INTERNAL_FANOUT
                if not overflow:
                    return
                node = parent
            else:
                new_root = Page(
                    page_id=(self.store.file_id, self._new_page_no()),
                    kind=PageKind.BTREE_INTERNAL,
                    rows=[],
                    meta={"keys": [separator], "children": [node.page_no, right.page_no]},
                )
                yield from self.pool.put_page(new_root, dirty=True)
                self.root_page_no = new_root.page_no
                self.height += 1
                return
