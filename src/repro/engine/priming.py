"""Buffer-pool priming for planned primary-secondary swaps (Section 3.4).

With physical replication the databases are page-identical, so when a
secondary S2 is promoted, the old primary S1 can push its warm buffer
pool over RDMA instead of letting the workload warm S2 up from disk:

1. *serialize*: S1 scans its buffer pool and serializes the resident
   pages into an in-memory file (the same serialization SQL Server uses
   for BPExt),
2. *transfer*: S2 pulls the pages from the in-memory file at wire speed
   and installs them into its pool.

Figure 16 shows priming is ~two orders of magnitude faster than
workload-driven warm-up and cuts p95 latency 4-10x after the swap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..remotefile import RemoteFile
from ..sim.kernel import ProcessGenerator
from ..storage import MB
from .database import Database
from .page import PAGE_SIZE

__all__ = [
    "PrimingResult",
    "ReactivePrimer",
    "prime_pool_from_file",
    "prime_push",
    "serialize_pool_to_file",
]

#: Pages serialized per in-memory-file extent (1 MB batches).
_BATCH_PAGES = 128
#: CPU to serialize/deserialize one page (memcpy-class).
_SERIALIZE_CPU_US = 2.0


@dataclass
class PrimingResult:
    pages: int
    serialize_us: float = 0.0
    transfer_us: float = 0.0


def serialize_pool_to_file(db: Database, file: RemoteFile) -> ProcessGenerator:
    """S1 side: scan the pool, serialize resident pages into ``file``."""
    sim = db.sim
    start = sim.now
    pages = db.pool.cached_pages()
    offset = 0
    for begin in range(0, len(pages), _BATCH_PAGES):
        batch = pages[begin : begin + _BATCH_PAGES]
        yield from db.server.cpu.compute(len(batch) * _SERIALIZE_CPU_US)
        yield from file.write_object(offset, len(batch) * PAGE_SIZE, [p.copy() for p in batch])
        offset += len(batch) * PAGE_SIZE
    return PrimingResult(pages=len(pages), serialize_us=sim.now - start)


def prime_pool_from_file(db: Database, file: RemoteFile, page_count: int) -> ProcessGenerator:
    """S2 side: pull serialized pages and install them into the pool."""
    sim = db.sim
    start = sim.now
    offset = 0
    installed = 0
    while installed < page_count:
        batch_pages = min(_BATCH_PAGES, page_count - installed)
        batch = yield from file.read_object(offset, batch_pages * PAGE_SIZE)
        yield from db.server.cpu.compute(len(batch) * _SERIALIZE_CPU_US)
        for page in batch:
            yield from db.pool.put_page(page.copy())
        offset += batch_pages * PAGE_SIZE
        installed += len(batch)
    return PrimingResult(pages=installed, transfer_us=sim.now - start)


def prime_push(src: Database, dst: Database, batch_bytes: int = 1 * MB) -> ProcessGenerator:
    """Proactive push variant: S1 streams pages straight to S2's NIC."""
    sim = src.sim
    start = sim.now
    pages = src.pool.cached_pages()
    batch_pages = max(1, batch_bytes // PAGE_SIZE)
    for begin in range(0, len(pages), batch_pages):
        batch = pages[begin : begin + batch_pages]
        yield from src.server.cpu.compute(len(batch) * _SERIALIZE_CPU_US)
        yield from src.server.nic.transfer(dst.server.nic, len(batch) * PAGE_SIZE)
        yield from dst.server.cpu.compute(len(batch) * _SERIALIZE_CPU_US)
        for page in batch:
            yield from dst.pool.put_page(page.copy())
    return PrimingResult(pages=len(pages), transfer_us=sim.now - start)


class ReactivePrimer:
    """Reactive priming: S2 fetches pages from S1's serialized pool
    on demand, as the workload touches them (Section 3.4's second
    variant — "similar to the cache extension scenario").

    Wraps the in-memory file as a read-through tier: ``lookup`` is
    called by the miss path before going to the data file.
    """

    def __init__(self, db: Database, file: RemoteFile, pages: list):
        self.db = db
        self.file = file
        #: page_id -> file offset of the serialized page.
        self.directory = {
            page.page_id: index * PAGE_SIZE for index, page in enumerate(pages)
        }
        #: batch start offset -> serialized batch size in bytes.
        self.batch_sizes = {}
        for begin in range(0, len(pages), _BATCH_PAGES):
            count = min(_BATCH_PAGES, len(pages) - begin)
            self.batch_sizes[begin * PAGE_SIZE] = count * PAGE_SIZE
        self.hits = 0
        self.misses = 0

    @classmethod
    def build(cls, source: Database, target: Database, file: RemoteFile) -> ProcessGenerator:
        """Serialize the source pool and return a primer for the target."""
        pages = source.pool.cached_pages()
        offset = 0
        for begin in range(0, len(pages), _BATCH_PAGES):
            batch = pages[begin : begin + _BATCH_PAGES]
            yield from source.server.cpu.compute(len(batch) * _SERIALIZE_CPU_US)
            yield from file.write_object(
                offset, len(batch) * PAGE_SIZE, [p.copy() for p in batch]
            )
            offset += len(batch) * PAGE_SIZE
        primer = cls(target, file, pages)
        return primer

    def lookup(self, page_id) -> ProcessGenerator:
        """Fetch one page on demand; returns None when not present."""
        offset = self.directory.get(page_id)
        if offset is None:
            self.misses += 1
            return None
        batch_start = (offset // (_BATCH_PAGES * PAGE_SIZE)) * _BATCH_PAGES * PAGE_SIZE
        batch = yield from self.file.read_object(
            batch_start, self.batch_sizes[batch_start]
        )
        index = (offset - batch_start) // PAGE_SIZE
        if index >= len(batch):
            self.misses += 1
            return None
        self.hits += 1
        page = batch[index].copy()
        yield from self.db.pool.put_page(page)
        return page
