"""Buffer pool with an optional extension tier (BPExt).

Scenario (i) of the paper (Section 3.1): when a page is evicted from
the in-memory pool, its *clean* image is parked in the extension — an
SSD file in the stock design, or a remote-memory file in the paper's
Custom design — so a later access is a fast extension read instead of a
data-file read from the HDD array.

Faithfully modelled details:

* **Clean-only extension.**  Dirty victims are handed to a background
  lazy writer that flushes them to the data file; the evicting worker
  does not wait (checkpoint-style write-behind with backpressure).
* **Best-effort remote memory.**  If the extension lives in remote
  memory and a lease is lost, the pool transparently falls back to the
  data file: queries keep answering correctly, just slower
  (Section 4.1.5).
* **Hit accounting** at every tier, which the drill-down figures use.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Iterable, Optional

from ..cluster import Server
from ..reliability import DeadlineExceeded, ReliabilityLayer
from ..sim import LatencyRecorder, TimeSeries
from ..sim.kernel import ProcessGenerator
from ..telemetry.tracer import NOOP_SPAN as _NOOP_SPAN
from typing import TYPE_CHECKING

from ..tiers.tier import Tier

if TYPE_CHECKING:
    from ..tiers.stack import TierStack
from .errors import EngineError, PageNotFound
from .files import PageStore, RemoteMemoryUnavailable
from .page import Page, PageId

__all__ = ["BufferPool", "BufferPoolExtension", "Frame"]

#: CPU cost of a buffer-pool lookup (hash probe + latch).
LATCH_CPU_US = 0.8
#: Lazy-writer backpressure threshold (pending dirty pages).
WRITE_QUEUE_LIMIT = 256
#: Max concurrent read-ahead I/Os per pool (per-scan windows share it).
PREFETCH_CONCURRENCY = 256


class Frame:
    __slots__ = ("page", "dirty", "pin_count")

    def __init__(self, page: Page):
        self.page = page
        self.dirty = False
        self.pin_count = 0


class BufferPoolExtension:
    """Maps evicted page ids to slots of an extension page store.

    One extension is one *tier* of the memory hierarchy: construct it
    from a :class:`~repro.tiers.Tier` to carry medium/latency metadata
    (a bare :class:`~repro.engine.PageStore` still works and is wrapped
    in an anonymous tier).  A :class:`~repro.tiers.TierStack` composes
    several of these into a DRAM -> SSD -> remote hierarchy.
    """

    def __init__(self, store: PageStore | Tier):
        tier = store if isinstance(store, Tier) else None
        if tier is not None:
            store = tier.store
        if store.capacity_pages is None:
            raise EngineError("extension store needs a fixed capacity")
        self.store = store
        self.tier = tier if tier is not None else Tier.wrap(store)
        self.capacity_pages = store.capacity_pages
        self._slots: OrderedDict[PageId, int] = OrderedDict()
        self._free: list[int] = list(range(self.capacity_pages - 1, -1, -1))
        self.enabled = True
        #: Optional reliability layer (set via BufferPool.attach_reliability):
        #: routes around quarantined providers and classifies deadline
        #: expiries as transient instead of data loss.
        self.reliability: ReliabilityLayer | None = None
        #: Set by a :class:`~repro.tiers.TierStack`: called with
        #: ``(page_id, slot)`` when a full tier must make room, to move
        #: the victim one tier down instead of dropping it.
        self.demote_sink: Callable[[PageId, int], ProcessGenerator] | None = None
        self.hits = 0
        self.misses = 0
        self.failures = 0
        #: Accesses skipped because the backing provider is quarantined.
        self.quarantine_skips = 0
        #: Deadline expiries — the parked image is presumed intact.
        self.transient_failures = 0
        #: Pages invalidated by provider faults (``on_fault`` sweeps).
        self.pages_lost_to_faults = 0
        #: Observers called with the page id whenever a remote failure is
        #: detected on the access path (fault-detection latency probes).
        self.fault_listeners: list[Callable[[PageId], None]] = []
        #: Observers called with ``(provider, lost_page_ids)`` after an
        #: ``on_fault`` sweep — the media-loss signal transaction
        #: managers use to doom in-flight transactions whose working set
        #: may have evaporated with the provider.
        self.loss_listeners: list[Callable[[str | None, list[PageId]], None]] = []
        #: Per-read latency of extension fetches (Figure 11c drill-down).
        self.read_latency = LatencyRecorder("bpext.read")
        #: Optional bytes-moved series (Figure 11a drill-down).
        self.bytes_series: TimeSeries | None = None

    def track_throughput(self, bucket_us: float = 1e6) -> TimeSeries:
        self.bytes_series = TimeSeries(bucket_us, name="bpext.bytes")
        return self.bytes_series

    @property
    def parked_pages(self) -> int:
        """Number of page images currently parked in this extension."""
        return len(self._slots)

    def contains(self, page_id: PageId) -> bool:
        return self.enabled and page_id in self._slots

    def put(self, page: Page) -> ProcessGenerator:
        """Park a clean page image; evicts the oldest entry when full."""
        if not self.enabled:
            return
        if page.page_id in self._slots:
            # Already parked and never dirtied since (updates invalidate
            # the mapping), so the extension copy is current: no I/O.
            self._slots.move_to_end(page.page_id)
            return
        if self._free:
            slot = self._free.pop()
        else:
            _old_id, slot = self._slots.popitem(last=False)
            if self.demote_sink is not None:
                # Hand the victim to the tier below before its slot is
                # reused (the sink reads the image and re-parks it).
                yield from self.demote_sink(_old_id, slot)
            self.store.discard(slot)
        layer = self.reliability
        if layer is not None:
            provider = self._slot_provider(slot)
            if provider is not None and not layer.breakers.routable(provider):
                # Don't park pages at a quarantined provider: give the
                # slot back and let the page age out of the pool.
                self.quarantine_skips += 1
                self._free.append(slot)
                return
        page_id = page.page_id

        def _write_aborted(page_id=page_id, slot=slot):
            # The write-behind transfer died after put() returned (the
            # provider crashed or a write deadline cut it short): the
            # remote bytes are unknown, so the mapping made below must
            # not survive.  The store already discarded its slot state.
            self.transient_failures += 1
            if self._slots.get(page_id) == slot:
                del self._slots[page_id]
                self._free.append(slot)

        sim = self._sim()
        try:
            if sim.tracer.enabled:
                with sim.tracer.span("bpext.put", slot=slot, tier=self.tier.name):
                    yield from self.store.write_page(
                        page, slot=slot, background=True, on_abort=_write_aborted
                    )
            else:
                yield from self.store.write_page(
                    page, slot=slot, background=True, on_abort=_write_aborted
                )
            if self.bytes_series is not None:
                self.bytes_series.add(sim.now, 8192)
        except DeadlineExceeded:
            # The write may not have completed: the slot's remote bytes
            # are unknown, so never map it — but the *slot* is reusable.
            self.transient_failures += 1
            self.store.discard(slot)
            self._free.append(slot)
            return
        except RemoteMemoryUnavailable:
            self._on_failure(page.page_id, slot)
            return
        # Map only once the slot actually holds the page; readers that
        # race the write simply miss to the base file (correct, slower).
        self._slots[page.page_id] = slot

    def get(self, page_id: PageId, background: bool = False) -> ProcessGenerator:
        """Fetch a parked page; raises PageNotFound when absent."""
        if not self.contains(page_id):
            self.misses += 1
            raise PageNotFound(f"extension: {page_id} not present")
        slot = self._slots[page_id]
        layer = self.reliability
        if layer is not None:
            provider = self._slot_provider(slot)
            if provider is not None and not layer.breakers.routable(provider):
                # Quarantined provider: go straight to the base file.
                # The mapping is kept — the parked image is presumed
                # intact and becomes reachable again once the breaker
                # re-admits the provider (crashes are swept separately
                # by on_fault).
                self.quarantine_skips += 1
                self.misses += 1
                raise PageNotFound(
                    f"extension: {page_id} parked at quarantined provider {provider}"
                )
        # Touch the LRU position first so a concurrent put is unlikely
        # to evict the slot we are about to read.
        self._slots.move_to_end(page_id)
        sim = self._sim()
        start = sim.now
        try:
            if sim.tracer.enabled:
                with sim.tracer.span("bpext.read", slot=slot, tier=self.tier.name):
                    page = yield from self.store.read_page(slot, background=background)
            else:
                page = yield from self.store.read_page(slot, background=background)
        except DeadlineExceeded:
            # Transient: the remote image is still there, only slow.
            # Keep the slot mapped and let the caller fall back to disk.
            self.transient_failures += 1
            self.misses += 1
            raise PageNotFound(f"extension: {page_id} read exceeded its deadline")
        except RemoteMemoryUnavailable:
            self._on_failure(page_id, slot)
            self.misses += 1
            raise PageNotFound(f"extension: {page_id} lost with remote memory")
        self.read_latency.record(sim.now - start)
        if self.bytes_series is not None:
            self.bytes_series.add(sim.now, 8192)
        self._slots.move_to_end(page_id)
        self.hits += 1
        return page

    def _sim(self):
        # All stores carry either a server or a remote file with an owner.
        owner = getattr(self.store, "server", None)
        if owner is None:
            owner = self.store.remote_file.owner  # type: ignore[attr-defined]
        return owner.sim

    def _now(self) -> float:
        return self._sim().now

    def _slot_provider(self, slot: int) -> str | None:
        """Memory server backing ``slot``, if the store can tell."""
        try:
            return self.store.slot_provider(slot)
        except Exception:
            return None  # e.g. the backing lease is already gone

    def adopt(self, page: Page) -> bool:
        """Park a clean page image without simulated I/O (pool priming).

        Steady-state benchmarks use this instead of replaying hours of
        warm-up traffic.  Returns ``False`` when the extension is
        disabled, full, or already holds the page.
        """
        if not self.enabled or page.page_id in self._slots or not self._free:
            return False
        slot = self._free.pop()
        self._slots[page.page_id] = slot
        self.store.install(page.copy(), slot=slot)
        return True

    def invalidate(self, page_id: PageId) -> None:
        slot = self._slots.pop(page_id, None)
        if slot is not None:
            self.store.discard(slot)
            self._free.append(slot)

    def _on_failure(self, page_id: PageId, slot: int) -> None:
        """A lease/provider vanished: drop the mapping, free the slot.

        The page image is lost, but the *slot* is not: once the store
        recovers (lease re-acquired, provider restored) the slot can
        hold a fresh page, so it goes back on the free list instead of
        leaking capacity.  The caller re-faults the page from the local
        store, so correctness is never affected.
        """
        self.failures += 1
        for listener in self.fault_listeners:
            listener(page_id)
        if self._slots.pop(page_id, None) is None and slot in self._free:
            # A concurrent access already reclaimed this slot.
            return
        self.store.discard(slot)
        self._free.append(slot)

    def on_fault(self, provider: str | None = None) -> list[PageId]:
        """Drop every slot backed by ``provider`` (``None`` = all slots).

        Called by fault injectors when a memory server crashes, instead
        of waiting for each page to fail on access.  Returns the page
        ids that were lost (they will re-fault from the base file).
        """
        lost: list[PageId] = []
        for page_id, slot in list(self._slots.items()):
            # A store that cannot name a provider loses everything on any
            # fault sweep (conservative: local media are never swept by
            # provider-targeted injectors in practice).
            known = self.store.slot_provider(slot)
            if provider is None or known is None or known == provider:
                self.invalidate(page_id)
                lost.append(page_id)
        self.pages_lost_to_faults += len(lost)
        for listener in self.loss_listeners:
            listener(provider, lost)
        return lost

    def replace_store(self, store: PageStore) -> None:
        """Point the extension at a fresh store (post-crash re-acquisition).

        All slot mappings are dropped (the new store starts empty) and
        the slot free list is rebuilt to the new capacity; the extension
        then re-warms organically as clean pages are evicted into it.
        """
        if store.capacity_pages is None:
            raise EngineError("extension store needs a fixed capacity")
        self.store = store
        self.tier.store = store
        self.capacity_pages = store.capacity_pages
        self._slots.clear()
        self._free = list(range(self.capacity_pages - 1, -1, -1))
        self.enabled = True

    def clear(self) -> None:
        for page_id in list(self._slots):
            self.invalidate(page_id)


class BufferPool:
    """Fixed-capacity page cache with LRU eviction and write-behind."""

    def __init__(
        self,
        server: Server,
        capacity_pages: int,
        extension: "Optional[BufferPoolExtension | TierStack]" = None,
        lazy_writers: int = 4,
    ):
        if capacity_pages < 2:
            raise EngineError("buffer pool needs at least two pages")
        self.server = server
        self.capacity_pages = capacity_pages
        self.extension = extension
        self.files: dict[int, PageStore] = {}
        self._frames: OrderedDict[PageId, Frame] = OrderedDict()
        #: Reads in flight: page_id -> completion event (dedup + prefetch).
        self._inflight: dict[PageId, object] = {}
        #: Dirty pages awaiting background flush: page_id -> snapshot.
        self._pending_writes: dict[PageId, Page] = {}
        self._write_queue: deque[PageId] = deque()
        self._queue_waiters: deque = deque()
        self._writer_signal = server.sim.store(name="bp.writer")
        for _ in range(lazy_writers):
            server.sim.spawn(self._lazy_writer(), name="bp.lazywriter")
        self.hits = 0
        self.misses = 0
        self.ext_hits = 0
        self.base_reads = 0
        self.prefetches = 0
        self._prefetch_active = 0
        #: Optional reliability layer: hedged reads + quarantine routing.
        self.reliability: ReliabilityLayer | None = None
        #: End-to-end latency of demand page faults (whatever medium
        #: served them) — the metric hedging is meant to bound.
        self.fault_latency = LatencyRecorder("bp.fault")

    def attach_reliability(self, layer: ReliabilityLayer) -> ReliabilityLayer:
        """Enable hedged reads here and quarantine routing in the extension."""
        self.reliability = layer
        if self.extension is not None:
            self.extension.reliability = layer
        return layer

    # -- file registry -----------------------------------------------------

    def register_file(self, store: PageStore) -> PageStore:
        if store.file_id in self.files:
            raise EngineError(f"file id {store.file_id} already registered")
        self.files[store.file_id] = store
        return store

    # -- accounting helpers --------------------------------------------------

    @property
    def in_memory_pages(self) -> int:
        return len(self._frames)

    def is_cached(self, page_id: PageId) -> bool:
        return page_id in self._frames or page_id in self._pending_writes

    # -- main access path ------------------------------------------------------

    def get_page(self, file_id: int, page_no: int) -> ProcessGenerator:
        """Return the current image of a page, faulting it in if needed."""
        yield from self.server.cpu.compute(LATCH_CPU_US)
        page_id: PageId = (file_id, page_no)
        while True:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                self.hits += 1
                return frame.page
            # A dirty page may be in flight to the data file.
            pending = self._pending_writes.get(page_id)
            if pending is not None:
                self.hits += 1
                page = pending.copy()
                yield from self._insert(page)
                return page
            # Someone else (a peer worker or the prefetcher) is already
            # reading this page: wait for them instead of re-reading.
            inflight = self._inflight.get(page_id)
            if inflight is not None:
                yield inflight  # type: ignore[misc]
                continue  # re-check the frame table
            self.misses += 1
            page = yield from self._fault(page_id)
            return page

    def _fault(self, page_id: PageId, done=None, background: bool = False) -> ProcessGenerator:
        """Read a page from extension or base file and install it.

        ``done`` is the pre-registered in-flight event when the caller
        (the prefetcher) already claimed the page id; ``background``
        marks read-ahead I/O (waited asynchronously, never spinning).
        """
        if done is None:
            done = self.server.sim.event()
            self._inflight[page_id] = done
        start = self.server.sim.now
        layer = self.reliability
        tracer = self.server.sim.tracer
        span = tracer.span(
            "bp.fault", cat="fault",
            page=f"{page_id[0]}:{page_id[1]}", background=background,
        ) if tracer.enabled else _NOOP_SPAN
        try:
            page = None
            if self.extension is not None and self.extension.contains(page_id):
                if layer is not None and layer.policy.hedge_enabled and not background:
                    page, source = yield from self._hedged_ext_fetch(page_id)
                    if source == "ext":
                        self.ext_hits += 1
                    elif source == "base":
                        self.base_reads += 1
                else:
                    try:
                        page = yield from self.extension.get(page_id, background=background)
                        self.ext_hits += 1
                    except PageNotFound:
                        page = None  # lost to remote failure: fall back to base
            if page is None:
                store = self.files.get(page_id[0])
                if store is None:
                    raise PageNotFound(f"no file registered with id {page_id[0]}")
                page = yield from store.read_page(page_id[1], background=background)
                self.base_reads += 1
            yield from self._insert(page)
            if not background:
                self.fault_latency.record(self.server.sim.now - start)
            return page
        finally:
            span.close()
            del self._inflight[page_id]
            done.succeed()

    def _hedged_ext_fetch(self, page_id: PageId) -> ProcessGenerator:
        """Race the extension read against a delayed base-file read.

        The extension read is issued immediately; once it has been
        outstanding for the tail-derived hedge delay, a backup read of
        the same page from the base file is issued and whichever
        completes first supplies the page.  During a brown-out this
        bounds the fault latency at roughly *hedge delay + one disk
        read* instead of however long the degraded link takes — and
        when the primary fails outright the already-running backup
        doubles as the fallback.  Returns ``(page | None, source)``
        with ``source`` in ``{"ext", "base", None}``.
        """
        sim = self.server.sim
        layer = self.reliability
        extension = self.extension

        def absorb(generator) -> ProcessGenerator:
            # Spawned racers must not leak PageNotFound into the sim loop.
            try:
                page = yield from generator
            except PageNotFound:
                return None
            return page

        primary = sim.spawn(absorb(extension.get(page_id)), name="bp.hedge.primary")
        delay = layer.hedge_delay_us(extension.read_latency)
        index, value = yield sim.any_of([primary, sim.timeout(delay)])
        if index == 0:
            return value, "ext" if value is not None else None
        store = self.files.get(page_id[0])
        if store is None or not store.contains(page_id[1]):
            value = yield primary  # nothing to hedge with: sit it out
            return value, "ext" if value is not None else None
        layer.hedge.issued += 1
        hedge_span = (
            sim.tracer.span("bp.hedge", delay_us=delay)
            if sim.tracer.enabled
            else _NOOP_SPAN
        )
        backup = sim.spawn(
            absorb(store.read_page(page_id[1], background=True)),
            name="bp.hedge.backup",
        )
        try:
            index, value = yield sim.any_of([primary, backup])
            if index == 0:
                if value is not None:
                    layer.hedge.primary_wins += 1
                    return value, "ext"
                # Primary failed after the hedge fired: the backup read,
                # already in flight, doubles as the disk fallback.
                value = yield backup
                if value is not None:
                    layer.hedge.record_backup_win(rescued=True)
                    return value, "base"
                return None, None
            if value is not None:
                layer.hedge.record_backup_win(rescued=False)
                # Cancel the losing primary: a read parked on a browned-out
                # link would otherwise hold the provider's NIC engine for
                # its whole degraded service time, starving later traffic.
                primary.interrupt(cause="hedged read: backup won")
                return value, "base"
            value = yield primary  # backup lost the page mid-race: rare
            return value, "ext" if value is not None else None
        finally:
            hedge_span.close()

    def prefetch(self, file_id: int, page_nos: Iterable[int]) -> None:
        """Issue background read-ahead for ``page_nos`` (scan path).

        Pages already resident or in flight are skipped; missing pages
        are ignored silently (the scan simply faults them on demand).
        """

        def fetch(page_id: PageId, done) -> ProcessGenerator:
            try:
                yield from self._fault(page_id, done, background=True)
            except PageNotFound:
                pass
            finally:
                self._prefetch_active -= 1

        def fetch_group(store, start: int, claims: list) -> ProcessGenerator:
            # One large read for a contiguous group: engines issue
            # 256K+ read-ahead I/Os, which is what lets the HDD array
            # stream during scans.
            try:
                pages = yield from store.read_batch(start, len(claims))
                for page in pages:
                    yield from self._insert(page)
            except PageNotFound:
                pass
            finally:
                for page_id, done in claims:
                    if self._inflight.get(page_id) is done:
                        del self._inflight[page_id]
                    done.succeed()
                self._prefetch_active -= len(claims)

        store = self.files.get(file_id)
        if store is None:
            return
        # This runs once per scanned leaf over a full read-ahead window
        # (the window slides by one page per leaf, so nearly every probe
        # is a repeat): keep the filter loop tight.
        budget = PREFETCH_CONCURRENCY - self._prefetch_active
        if budget <= 0:
            return
        frames = self._frames
        inflight = self._inflight
        pending = self._pending_writes
        contains = store.contains
        wanted: list[int] = []
        for page_no in page_nos:
            page_id = (file_id, page_no)
            if page_id in frames or page_id in inflight or page_id in pending:
                continue
            if not contains(page_no):
                continue
            wanted.append(page_no)
            if len(wanted) >= budget:
                break
        if not wanted:
            return
        # Split into extension-resident pages (fetched individually —
        # their extension slots are not contiguous) and contiguous
        # base-file groups (fetched as one large read each).
        groups: list[list[int]] = []
        ext_spawned = 0
        for page_no in wanted:
            page_id = (file_id, page_no)
            ext_resident = self.extension is not None and self.extension.contains(page_id)
            if ext_resident:
                # Extension reads complete in tens of microseconds; a
                # short pipeline suffices and avoids flooding the NIC.
                if ext_spawned >= 16:
                    continue
                ext_spawned += 1
                done = self.server.sim.event()
                self._inflight[page_id] = done
                self._prefetch_active += 1
                self.prefetches += 1
                self.server.sim.spawn(fetch(page_id, done), name="bp.prefetch")
            elif groups and groups[-1][-1] == page_no - 1:
                groups[-1].append(page_no)
            else:
                groups.append([page_no])
        for group in groups:
            claims = []
            for page_no in group:
                done = self.server.sim.event()
                self._inflight[(file_id, page_no)] = done
                claims.append(((file_id, page_no), done))
            self._prefetch_active += len(claims)
            self.prefetches += len(claims)
            self.server.sim.spawn(
                fetch_group(store, group[0], claims), name="bp.prefetch"
            )

    def update_page(self, file_id: int, page_no: int, mutate, lsn: int = 0) -> ProcessGenerator:
        """Fault in a page, apply ``mutate(page)``, mark it dirty.

        The mutation happens atomically (no simulation yield between the
        lookup and the dirty marking).
        """
        page = yield from self.get_page(file_id, page_no)
        mutate(page)
        if lsn:
            page.lsn = max(page.lsn, lsn)
        frame = self._frames.get((file_id, page_no))
        if frame is None:  # evicted during fault-in by a concurrent worker
            yield from self._insert(page, dirty=True)
            frame = self._frames.get((file_id, page_no))
            if frame is not None:
                frame.page = page
        else:
            frame.dirty = True
        # The extension copy (if any) is now stale.
        if self.extension is not None:
            self.extension.invalidate((file_id, page_no))
        return page

    def mark_dirty(self, page: Page, lsn: int = 0) -> ProcessGenerator:
        """Flag an already-fetched page as modified.

        Safe in cooperative simulation code as long as no simulation
        yield happened between the ``get_page`` and this call; if the
        frame was concurrently evicted the image is re-installed.
        """
        if lsn:
            page.lsn = max(page.lsn, lsn)
        frame = self._frames.get(page.page_id)
        if frame is None or frame.page is not page:
            yield from self._insert(page, dirty=True)
            frame = self._frames.get(page.page_id)
            if frame is not None:
                frame.page = page
        else:
            frame.dirty = True
        if self.extension is not None:
            self.extension.invalidate(page.page_id)

    def adopt(self, page: Page) -> bool:
        """Install a clean frame without I/O or eviction (pool priming).

        The caller bounds how many frames it adopts (the pool does not
        evict here); returns ``False`` when the page is already resident.
        """
        if page.page_id in self._frames:
            return False
        self._frames[page.page_id] = Frame(page.copy())
        return True

    def put_page(self, page: Page, dirty: bool = False) -> ProcessGenerator:
        """Install a page image directly (loader / split / priming path).

        ``dirty`` is applied atomically with the insertion so a newly
        created page can never be evicted as clean before the flag
        lands."""
        yield from self._insert(page, dirty=dirty)

    # -- eviction & write-behind -------------------------------------------------

    def _insert(self, page: Page, dirty: bool = False) -> ProcessGenerator:
        if page.page_id in self._frames:
            frame = self._frames[page.page_id]
            frame.page = page
            if dirty:
                frame.dirty = True
            self._frames.move_to_end(page.page_id)
            return
        # Reserve the frame *before* evicting: eviction can yield, and a
        # dirty page must never be observable as missing meanwhile.
        frame = Frame(page)
        frame.dirty = dirty
        self._frames[page.page_id] = frame
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.capacity_pages:
            yield from self._evict_one()

    def _evict_one(self) -> ProcessGenerator:
        victim_id = None
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                victim_id = page_id
                break
        if victim_id is None:
            raise EngineError("all frames pinned; cannot evict")
        frame = self._frames.pop(victim_id)
        if frame.dirty:
            # Park the image in pending_writes *before* any yield so the
            # page stays visible to readers throughout the hand-off.
            self._pending_writes[victim_id] = frame.page.copy()
            # Lazy-writer backpressure when flooded.
            while len(self._write_queue) >= WRITE_QUEUE_LIMIT:
                waiter = self.server.sim.event()
                self._queue_waiters.append(waiter)
                yield waiter
            self._write_queue.append(victim_id)
            self._writer_signal.put(victim_id)
        if self.extension is not None and not frame.dirty:
            yield from self.extension.put(frame.page)

    def _lazy_writer(self) -> ProcessGenerator:
        while True:
            yield self._writer_signal.get()
            if not self._write_queue:
                continue
            # Drain a batch and write it elevator-style per file.
            batch: list[PageId] = []
            while self._write_queue and len(batch) < 64:
                batch.append(self._write_queue.popleft())
            by_file: dict[int, list] = {}
            for page_id in batch:
                page = self._pending_writes.get(page_id)
                if page is not None:
                    by_file.setdefault(page_id[0], []).append(page)
            with self.server.sim.tracer.span("bp.writeback", pages=len(batch)):
                for file_id, pages in by_file.items():
                    store = self.files.get(file_id)
                    if store is None:
                        continue
                    if hasattr(store, "write_scattered"):
                        yield from store.write_scattered(pages)
                    else:
                        for page in pages:
                            yield from store.write_page(page)
            # After the flush, the clean images can go to the extension.
            for file_id, pages in by_file.items():
                for page in pages:
                    if self.extension is not None:
                        yield from self.extension.put(page)
                    self._pending_writes.pop(page.page_id, None)
            while self._queue_waiters and len(self._write_queue) < WRITE_QUEUE_LIMIT:
                self._queue_waiters.popleft().succeed()

    def flush_all(self) -> ProcessGenerator:
        """Write every dirty frame through to its file (checkpoint)."""
        for page_id, frame in list(self._frames.items()):
            if frame.dirty:
                store = self.files.get(page_id[0])
                if store is not None:
                    yield from store.write_page(frame.page)
                frame.dirty = False
        while self._pending_writes:
            yield self.server.sim.timeout(100.0)

    def drop_all(self) -> None:
        """Empty the pool without I/O (cold restart, priming target)."""
        self._frames.clear()

    def cached_pages(self) -> list[Page]:
        """Snapshot of resident pages, hottest last (priming source)."""
        return [frame.page for frame in self._frames.values()]

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
