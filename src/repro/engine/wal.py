"""Write-ahead log with group commit, checkpoints and REDO recovery.

The transaction log lives on the HDD array in every design (Table 5 —
only data-file caching and spills move to remote memory), which is why
update throughput in Figures 7/8 improves with spindle count: commits
are bounded by sequential log writes.

REDO recovery is what rebuilds semantic-cache structures after a remote
node failure (Appendix B.4, Figure 26): replay the tail of the log from
the last checkpoint and re-apply every change whose LSN is newer than
the recovered page image.

Transactional records (``txn_id != 0``) follow the usual protocol:
``BEGIN`` opens a transaction, data records carry its id, and exactly
one ``COMMIT`` or ``ABORT`` closes it.  REDO replays a transactional
record only when its transaction has a *durable* COMMIT — records of
in-flight or aborted transactions are skipped (their in-memory effects
were never promised, or were already undone before the abort record).
``txn_id == 0`` marks legacy single-statement autocommit, where each
record is made durable before the statement proceeds and is therefore
replayed unconditionally.

Durability is strictly in LSN order: group-commit batches may have
several flushes in flight (``OUTSTANDING_FLUSHES``), but a batch only
*acknowledges* its commits — and appends to the durable record image —
after every earlier batch has acknowledged.  Without that ordering a
later batch landing on a fast spindle could report commits durable
while an earlier-LSN batch is still in the air, and a crash would tear
a hole in the log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..cluster import Server
from ..sim.kernel import Event, ProcessGenerator
from ..storage import KB, BlockDevice, IoOp

__all__ = ["LogRecordKind", "LogRecord", "WriteAheadLog", "redo_replay"]

#: On-disk size of one log record (header + row image), bytes.
LOG_RECORD_BYTES = 128
#: Max records bundled into one group-commit flush.
GROUP_COMMIT_BATCH = 64
#: Concurrent outstanding log flushes (SQL Server allows several).
OUTSTANDING_FLUSHES = 8
#: CPU to format/apply one record.
RECORD_CPU_US = 0.5


class LogRecordKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


#: Kinds that change data and are therefore candidates for REDO.
REDO_KINDS = (LogRecordKind.INSERT, LogRecordKind.UPDATE, LogRecordKind.DELETE)


@dataclass
class LogRecord:
    lsn: int
    kind: LogRecordKind
    table: str = ""
    index: str = ""
    key: Any = None
    #: Row image (after-image for REDO).
    row: Any = None
    txn_id: int = 0
    payload_bytes: int = LOG_RECORD_BYTES


class WriteAheadLog:
    """Append-only log on a block device with group commit."""

    def __init__(self, server: Server, device: BlockDevice):
        self.server = server
        self.device = device
        self.sim = server.sim
        self._next_lsn = 1
        self._tail_offset = 0
        #: Durable record history (the log image, used by recovery).
        self.records: list[LogRecord] = []
        self.checkpoint_lsn = 0
        self._pending: list[tuple[LogRecord, Any]] = []
        self._flush_slots = self.sim.resource(capacity=OUTSTANDING_FLUSHES, name="wal.flush")
        self._signal = self.sim.store(name="wal.signal")
        #: Tail of the in-order acknowledgement chain: the ``done`` event
        #: of the most recently dispatched batch (None before the first).
        self._ack_chain: Optional[Event] = None
        self.flushes = 0
        self.sim.spawn(self._flusher(), name="wal.flusher")

    def next_lsn(self) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    # -- append path -------------------------------------------------------

    def append(self, record: LogRecord) -> ProcessGenerator:
        """Append and wait until the record is durable (group commit)."""
        yield from self.server.cpu.compute(RECORD_CPU_US)
        durable = self.sim.event()
        self._pending.append((record, durable))
        self._signal.put(None)
        yield durable
        return record.lsn

    def append_nowait(self, record: LogRecord) -> LogRecord:
        """Enqueue a record for the next group-commit flush, no waiting.

        Used for intra-transaction records (BEGIN, data records): only
        the COMMIT needs to be awaited, and because batches acknowledge
        in LSN order, a durable COMMIT implies every earlier record of
        the transaction is durable too.
        """
        durable = self.sim.event()
        self._pending.append((record, durable))
        self._signal.put(None)
        return record

    def log_update(
        self, table: str, key: Any, row: Any, kind: LogRecordKind = LogRecordKind.UPDATE,
        index: str = "", txn_id: int = 0,
    ) -> ProcessGenerator:
        record = LogRecord(
            lsn=self.next_lsn(), kind=kind, table=table, index=index,
            key=key, row=row, txn_id=txn_id,
        )
        yield from self.append(record)
        return record

    def _flusher(self) -> ProcessGenerator:
        while True:
            yield self._signal.get()
            if not self._pending:
                continue
            batch, self._pending = (
                self._pending[:GROUP_COMMIT_BATCH],
                self._pending[GROUP_COMMIT_BATCH:],
            )
            yield self._flush_slots.request()
            previous, done = self._ack_chain, self.sim.event()
            self._ack_chain = done
            self.sim.spawn(
                self._flush_batch(batch, previous, done), name="wal.flush_batch"
            )
            # Re-arm if more work queued behind the batch limit.
            if self._pending:
                self._signal.put(None)

    def _flush_batch(
        self, batch: list[tuple[LogRecord, Any]], previous: Optional[Event], done: Event
    ) -> ProcessGenerator:
        size = max(4 * KB, sum(record.payload_bytes for record, _e in batch))
        offset = self._tail_offset
        self._tail_offset += size
        try:
            try:
                yield from self.device.io(IoOp.WRITE, offset, size)
            finally:
                self._flush_slots.release()
            # In-order completion: even if this batch's write finished
            # first, earlier-LSN batches must acknowledge before us.
            if previous is not None and not previous.processed:
                yield previous
            for record, event in batch:
                self.records.append(record)
                event.succeed(record.lsn)
            self.flushes += 1
        finally:
            # Unblock successors even on a failed write, or the chain
            # (and every later committer) would stall forever.
            if not done.triggered:
                done.succeed()

    # -- checkpointing / recovery ---------------------------------------------

    def checkpoint(self) -> ProcessGenerator:
        """Record a checkpoint; REDO starts from here."""
        record = LogRecord(lsn=self.next_lsn(), kind=LogRecordKind.CHECKPOINT)
        yield from self.append(record)
        self.checkpoint_lsn = record.lsn
        return record.lsn

    def records_since(self, lsn: int) -> list[LogRecord]:
        return [record for record in self.records if record.lsn > lsn]

    def committed_txn_ids(self) -> set[int]:
        """Transactions with a durable COMMIT record (excluding txn 0)."""
        return {
            record.txn_id
            for record in self.records
            if record.kind is LogRecordKind.COMMIT and record.txn_id != 0
        }

    def aborted_txn_ids(self) -> set[int]:
        """Transactions with a durable ABORT record."""
        return {
            record.txn_id
            for record in self.records
            if record.kind is LogRecordKind.ABORT and record.txn_id != 0
        }

    @property
    def durable_bytes(self) -> int:
        return self._tail_offset


def redo_replay(
    server: Server,
    log: WriteAheadLog,
    apply_fn: Callable[[LogRecord], Optional[ProcessGenerator]],
    from_lsn: Optional[int] = None,
    read_chunk_bytes: int = 512 * KB,
    committed_only: bool = True,
) -> ProcessGenerator:
    """REDO pass: stream the log tail from disk and re-apply records.

    ``apply_fn`` is called per REDO-able record; it may return a
    generator (e.g. writes into remote memory) which is awaited.
    Returns the number of records applied.

    With ``committed_only`` (the default), transactional records
    (``txn_id != 0``) are replayed only when the *whole durable log*
    contains a COMMIT for their transaction and no ABORT — replaying a
    record of a transaction that never committed would resurrect data
    the system never promised.  Legacy autocommit records
    (``txn_id == 0``) are durable-before-apply by construction and
    replay unconditionally.
    """
    start_lsn = log.checkpoint_lsn if from_lsn is None else from_lsn
    tail = log.records_since(start_lsn)
    # Sequentially read the log tail from the log device.
    bytes_to_read = sum(record.payload_bytes for record in tail)
    offset = 0
    while offset < bytes_to_read:
        chunk = min(read_chunk_bytes, bytes_to_read - offset)
        yield from log.device.io(IoOp.READ, offset, chunk)
        offset += chunk
    if committed_only:
        # Commit/abort lookup spans the full durable log, not just the
        # tail: a transaction may straddle the checkpoint.
        committed = log.committed_txn_ids()
        aborted = log.aborted_txn_ids()
    applied = 0
    for record in tail:
        if record.kind not in REDO_KINDS:
            continue
        if committed_only and record.txn_id != 0 and (
            record.txn_id not in committed or record.txn_id in aborted
        ):
            continue
        yield from server.cpu.compute(RECORD_CPU_US)
        result = apply_fn(record)
        if result is not None:
            yield from result
        applied += 1
    return applied
