"""Write-ahead log with group commit, checkpoints and REDO recovery.

The transaction log lives on the HDD array in every design (Table 5 —
only data-file caching and spills move to remote memory), which is why
update throughput in Figures 7/8 improves with spindle count: commits
are bounded by sequential log writes.

REDO recovery is what rebuilds semantic-cache structures after a remote
node failure (Appendix B.4, Figure 26): replay the tail of the log from
the last checkpoint and re-apply every change whose LSN is newer than
the recovered page image.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..cluster import Server
from ..sim.kernel import ProcessGenerator
from ..storage import KB, BlockDevice, IoOp

__all__ = ["LogRecordKind", "LogRecord", "WriteAheadLog", "redo_replay"]

#: On-disk size of one log record (header + row image), bytes.
LOG_RECORD_BYTES = 128
#: Max records bundled into one group-commit flush.
GROUP_COMMIT_BATCH = 64
#: Concurrent outstanding log flushes (SQL Server allows several).
OUTSTANDING_FLUSHES = 8
#: CPU to format/apply one record.
RECORD_CPU_US = 0.5


class LogRecordKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    COMMIT = "commit"
    CHECKPOINT = "checkpoint"


@dataclass
class LogRecord:
    lsn: int
    kind: LogRecordKind
    table: str = ""
    index: str = ""
    key: Any = None
    #: Row image (after-image for REDO).
    row: Any = None
    txn_id: int = 0
    payload_bytes: int = LOG_RECORD_BYTES


class WriteAheadLog:
    """Append-only log on a block device with group commit."""

    def __init__(self, server: Server, device: BlockDevice):
        self.server = server
        self.device = device
        self.sim = server.sim
        self._next_lsn = 1
        self._tail_offset = 0
        #: Durable record history (the log image, used by recovery).
        self.records: list[LogRecord] = []
        self.checkpoint_lsn = 0
        self._pending: list[tuple[LogRecord, Any]] = []
        self._flush_slots = self.sim.resource(capacity=OUTSTANDING_FLUSHES, name="wal.flush")
        self._signal = self.sim.store(name="wal.signal")
        self.flushes = 0
        self.sim.spawn(self._flusher(), name="wal.flusher")

    def next_lsn(self) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        return lsn

    # -- append path -------------------------------------------------------

    def append(self, record: LogRecord) -> ProcessGenerator:
        """Append and wait until the record is durable (group commit)."""
        yield from self.server.cpu.compute(RECORD_CPU_US)
        durable = self.sim.event()
        self._pending.append((record, durable))
        self._signal.put(None)
        yield durable
        return record.lsn

    def log_update(
        self, table: str, key: Any, row: Any, kind: LogRecordKind = LogRecordKind.UPDATE,
        index: str = "", txn_id: int = 0,
    ) -> ProcessGenerator:
        record = LogRecord(
            lsn=self.next_lsn(), kind=kind, table=table, index=index,
            key=key, row=row, txn_id=txn_id,
        )
        yield from self.append(record)
        return record

    def _flusher(self) -> ProcessGenerator:
        while True:
            yield self._signal.get()
            if not self._pending:
                continue
            batch, self._pending = (
                self._pending[:GROUP_COMMIT_BATCH],
                self._pending[GROUP_COMMIT_BATCH:],
            )
            yield self._flush_slots.request()
            self.sim.spawn(self._flush_batch(batch), name="wal.flush_batch")
            # Re-arm if more work queued behind the batch limit.
            if self._pending:
                self._signal.put(None)

    def _flush_batch(self, batch: list[tuple[LogRecord, Any]]) -> ProcessGenerator:
        size = max(4 * KB, sum(record.payload_bytes for record, _e in batch))
        offset = self._tail_offset
        self._tail_offset += size
        try:
            yield from self.device.io(IoOp.WRITE, offset, size)
        finally:
            self._flush_slots.release()
        for record, event in batch:
            self.records.append(record)
            event.succeed(record.lsn)
        self.flushes += 1

    # -- checkpointing / recovery ---------------------------------------------

    def checkpoint(self) -> ProcessGenerator:
        """Record a checkpoint; REDO starts from here."""
        record = LogRecord(lsn=self.next_lsn(), kind=LogRecordKind.CHECKPOINT)
        yield from self.append(record)
        self.checkpoint_lsn = record.lsn
        return record.lsn

    def records_since(self, lsn: int) -> list[LogRecord]:
        return [record for record in self.records if record.lsn > lsn]

    @property
    def durable_bytes(self) -> int:
        return self._tail_offset


def redo_replay(
    server: Server,
    log: WriteAheadLog,
    apply_fn: Callable[[LogRecord], Optional[ProcessGenerator]],
    from_lsn: Optional[int] = None,
    read_chunk_bytes: int = 512 * KB,
) -> ProcessGenerator:
    """REDO pass: stream the log tail from disk and re-apply records.

    ``apply_fn`` is called per REDO-able record; it may return a
    generator (e.g. writes into remote memory) which is awaited.
    Returns the number of records applied.
    """
    start_lsn = log.checkpoint_lsn if from_lsn is None else from_lsn
    tail = log.records_since(start_lsn)
    # Sequentially read the log tail from the log device.
    bytes_to_read = sum(record.payload_bytes for record in tail)
    offset = 0
    while offset < bytes_to_read:
        chunk = min(read_chunk_bytes, bytes_to_read - offset)
        yield from log.device.io(IoOp.READ, offset, chunk)
        offset += chunk
    applied = 0
    for record in tail:
        if record.kind in (LogRecordKind.COMMIT, LogRecordKind.CHECKPOINT):
            continue
        yield from server.cpu.compute(RECORD_CPU_US)
        result = apply_fn(record)
        if result is not None:
            yield from result
        applied += 1
    return applied
