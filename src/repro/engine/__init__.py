"""The SMP RDBMS engine: pages, buffer pool, indexes, operators, WAL."""

from .bufferpool import BufferPool, BufferPoolExtension
from .btree import BTree
from .catalog import Catalog, Column, Schema, Table, TableStats
from .database import Database, QueryResult
from .errors import EngineError, GrantTimeout, PageNotFound, PlanError
from .files import DevicePageFile, PageStore, RemotePageFile, SmbPageFile
from .grants import Grant, GrantManager
from .operators import (
    ExecContext,
    ExecMetrics,
    ExternalSort,
    FilterRows,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRangeScan,
    IndexSeek,
    Operator,
    ProjectRows,
    TableScan,
)
from .loader import LoadReport, LoadSplit, load_splits, parallel_load
from .optimizer import (
    CostModel,
    JoinChoice,
    Medium,
    choose_join,
    cost_model_for,
    crossover_selectivity,
)
from .page import PAGE_SIZE, Page, PageId, PageKind, rows_per_page
from .priming import (
    PrimingResult,
    ReactivePrimer,
    prime_pool_from_file,
    prime_push,
    serialize_pool_to_file,
)
from .semcache import MaintenancePolicy, MaterializedView, SemanticCache
from .tempdb import EXTENT_PAGES, SpillRun, TempDb
from .wal import LogRecord, LogRecordKind, WriteAheadLog, redo_replay

__all__ = [
    "BTree",
    "BufferPool",
    "BufferPoolExtension",
    "Catalog",
    "Column",
    "Database",
    "DevicePageFile",
    "EngineError",
    "EXTENT_PAGES",
    "ExecContext",
    "ExecMetrics",
    "ExternalSort",
    "FilterRows",
    "Grant",
    "GrantManager",
    "GrantTimeout",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexRangeScan",
    "IndexSeek",
    "LogRecord",
    "LogRecordKind",
    "Operator",
    "PAGE_SIZE",
    "Page",
    "PageId",
    "PageKind",
    "PageNotFound",
    "PageStore",
    "PlanError",
    "ProjectRows",
    "QueryResult",
    "RemotePageFile",
    "Schema",
    "SmbPageFile",
    "SpillRun",
    "Table",
    "TableScan",
    "TableStats",
    "TempDb",
    "WriteAheadLog",
    "CostModel",
    "JoinChoice",
    "LoadReport",
    "LoadSplit",
    "MaintenancePolicy",
    "MaterializedView",
    "Medium",
    "PrimingResult",
    "ReactivePrimer",
    "SemanticCache",
    "choose_join",
    "cost_model_for",
    "crossover_selectivity",
    "load_splits",
    "parallel_load",
    "prime_pool_from_file",
    "prime_push",
    "redo_replay",
    "rows_per_page",
    "serialize_pool_to_file",
]
