"""Cost-based plan choice with a device-aware cost model.

Section 3.3 / Figure 15(b): whether an index-nested-loop join beats a
hash join depends on the *random access cost of the medium holding the
index*.  A classic optimizer costs seeks assuming disk; when the index
is pinned in remote memory the crossover selectivity moves by orders of
magnitude, so the cost model must be re-calibrated — this module is
that re-calibration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .catalog import Table
from .costs import (
    PER_ROW_HASH_BUILD_CPU_US,
    PER_ROW_HASH_PROBE_CPU_US,
    PER_ROW_SCAN_CPU_US,
)

__all__ = ["Medium", "CostModel", "JoinChoice", "choose_join", "cost_model_for"]


class Medium(enum.Enum):
    """Where an access lands, with its random/sequential page costs."""

    LOCAL_MEMORY = "local_memory"
    REMOTE_MEMORY = "remote_memory"
    SSD = "ssd"
    HDD = "hdd"


#: (random_page_us, sequential_page_us) per medium — the calibration
#: constants of Section 6.1 at page granularity.
_MEDIUM_COST = {
    Medium.LOCAL_MEMORY: (1.0, 0.5),
    Medium.REMOTE_MEMORY: (15.0, 2.0),
    Medium.SSD: (620.0, 21.0),
    Medium.HDD: (4500.0, 90.0),
}


@dataclass(frozen=True)
class CostModel:
    """Estimates operator costs given the media of the inputs."""

    index_medium: Medium
    table_medium: Medium = Medium.HDD

    def random_page_us(self, medium: Medium) -> float:
        return _MEDIUM_COST[medium][0]

    def sequential_page_us(self, medium: Medium) -> float:
        return _MEDIUM_COST[medium][1]

    def index_seek_cost_us(self, height: int) -> float:
        """One B-tree descent, assuming upper levels cached locally."""
        cached_levels = max(0, height - 1)
        return (
            cached_levels * self.random_page_us(Medium.LOCAL_MEMORY)
            + self.random_page_us(self.index_medium)
        )

    def inlj_cost_us(self, outer_rows: int, inner_height: int) -> float:
        """Index nested-loop join: one seek per outer row."""
        return outer_rows * (
            self.index_seek_cost_us(inner_height) + PER_ROW_SCAN_CPU_US
        )

    def hash_join_cost_us(
        self, build_rows: int, build_pages: int, probe_rows: int
    ) -> float:
        """Hash join: scan + build + probe (assumed in-memory)."""
        scan = build_pages * self.sequential_page_us(self.table_medium)
        build = build_rows * PER_ROW_HASH_BUILD_CPU_US
        probe = probe_rows * PER_ROW_HASH_PROBE_CPU_US
        return scan + build + probe


class JoinChoice(enum.Enum):
    INDEX_NESTED_LOOP = "inlj"
    HASH_JOIN = "hash"


def choose_join(
    model: CostModel,
    outer_rows: int,
    inner_table: Table,
) -> tuple[JoinChoice, float, float]:
    """Pick INLJ vs HJ for joining ``outer_rows`` against ``inner_table``.

    Returns (choice, inlj_cost, hash_cost).  The crossover point —
    the outer cardinality where the hash join starts to win — moves
    right when the index medium is faster (Figure 15b).
    """
    height = inner_table.clustered.height if inner_table.clustered else 3
    inlj_cost = model.inlj_cost_us(outer_rows, height)
    hash_cost = model.hash_join_cost_us(
        build_rows=inner_table.stats.row_count,
        build_pages=max(1, inner_table.stats.page_count),
        probe_rows=outer_rows,
    )
    if inlj_cost <= hash_cost:
        return JoinChoice.INDEX_NESTED_LOOP, inlj_cost, hash_cost
    return JoinChoice.HASH_JOIN, inlj_cost, hash_cost


def cost_model_for(database) -> CostModel:
    """Cost model matching where a database's indexes actually land.

    The IR lowering (:func:`repro.plan.lower_single`) consults this
    when no explicit model is given: a buffer-pool extension means
    misses land in remote memory; otherwise they go to the data device
    (SSD if that is what backs the data file, else the HDD array).
    Duck-typed on purpose — any object with ``pool.extension`` and a
    ``data_device`` works.
    """
    if getattr(database.pool, "extension", None) is not None:
        medium = Medium.REMOTE_MEMORY
    else:
        name = type(getattr(database, "data_device", None)).__name__
        medium = Medium.SSD if "Ssd" in name else Medium.HDD
    return CostModel(index_medium=medium, table_medium=medium)


def crossover_selectivity(model: CostModel, inner_table: Table, total_outer: int) -> float:
    """Fraction of outer rows at which HJ overtakes INLJ."""
    low, high = 0.0, 1.0
    for _ in range(60):
        mid = (low + high) / 2
        choice, _inlj, _hash = choose_join(model, max(1, int(mid * total_outer)), inner_table)
        if choice is JoinChoice.INDEX_NESTED_LOOP:
            low = mid
        else:
            high = mid
    return (low + high) / 2
