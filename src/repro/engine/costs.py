"""CPU cost constants shared by the executor and the optimizer.

Calibrated so the RangeScan micro-benchmark saturates at roughly the
paper's Figure 9 rates on a 20-core server (a short 3-page index seek
plus a 100-row aggregate costs ~0.4 ms of CPU end to end, giving
~50 K queries/s across 20 cores at 100 % utilization).
"""

__all__ = [
    "QUERY_SETUP_CPU_US",
    "PER_PAGE_CPU_US",
    "PER_ROW_SCAN_CPU_US",
    "PER_ROW_HASH_BUILD_CPU_US",
    "PER_ROW_HASH_PROBE_CPU_US",
    "PER_ROW_AGG_CPU_US",
    "SORT_COMPARE_CPU_US",
    "PER_ROW_OUTPUT_CPU_US",
    "PER_ROW_SERIALIZE_CPU_US",
    "PER_ROW_DESERIALIZE_CPU_US",
    "EXCHANGE_BATCH_CPU_US",
]

#: Fixed per-query engine overhead: parse, plan-cache lookup, session
#: bookkeeping, result framing.
QUERY_SETUP_CPU_US = 300.0
#: Per-page processing (latch, header decode, slot array walk).
PER_PAGE_CPU_US = 3.0
#: Per-row predicate evaluation / projection during scans.
PER_ROW_SCAN_CPU_US = 0.2
#: Hash-join build side, per row.
PER_ROW_HASH_BUILD_CPU_US = 0.25
#: Hash-join probe side, per row.
PER_ROW_HASH_PROBE_CPU_US = 0.25
#: Per-row aggregation update.
PER_ROW_AGG_CPU_US = 0.12
#: One comparison in sort / merge (charged n·log2 n times).
SORT_COMPARE_CPU_US = 0.08
#: Producing one output row.
PER_ROW_OUTPUT_CPU_US = 0.1

# -- distributed exchange (repro.dist) --------------------------------------
#: Packing one row into an exchange batch (copy + wire framing).
PER_ROW_SERIALIZE_CPU_US = 0.15
#: Unpacking one row from a landed exchange batch.
PER_ROW_DESERIALIZE_CPU_US = 0.1
#: Fixed cost per batch on each side (work-request setup, batch header).
EXCHANGE_BATCH_CPU_US = 2.0
