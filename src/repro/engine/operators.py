"""Physical operators: scans, joins, sorts, aggregation.

Operators are generator-returning objects driven by the DES: they charge
CPU per page/row and perform page I/O through the buffer pool, and they
spill to TempDB when their share of the memory grant is too small —
which is exactly the mechanism the paper's Hash+Sort benchmark and the
TPC-H Q10/Q18 admission-control artifact exercise.
"""

from __future__ import annotations

import abc
import heapq
import math
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Optional

from ..sim.kernel import ProcessGenerator
from .btree import BTree
from .catalog import Table
from .costs import (
    PER_PAGE_CPU_US,
    PER_ROW_AGG_CPU_US,
    PER_ROW_HASH_BUILD_CPU_US,
    PER_ROW_HASH_PROBE_CPU_US,
    PER_ROW_OUTPUT_CPU_US,
    PER_ROW_SCAN_CPU_US,
    SORT_COMPARE_CPU_US,
)
from .errors import PlanError

__all__ = [
    "ExecContext",
    "ExecMetrics",
    "Operator",
    "TableScan",
    "IndexRangeScan",
    "IndexSeek",
    "HashJoin",
    "IndexNestedLoopJoin",
    "ExternalSort",
    "HashAggregate",
    "FilterRows",
    "ProjectRows",
]


@dataclass
class ExecMetrics:
    rows_out: int = 0
    spilled_runs: int = 0
    spilled_bytes: int = 0
    tempdb_reads: int = 0
    tempdb_writes: int = 0
    # Exchange-awareness (repro.dist): data this fragment moved between
    # servers, and time it spent stalled waiting for receiver credits.
    exchange_batches: int = 0
    exchange_rows: int = 0
    exchange_bytes: int = 0
    credit_stalls_us: float = 0.0
    bloom_filtered_rows: int = 0

    #: Fields surfaced in benchmark summaries (``to_dict``), in order.
    SUMMARY_FIELDS = (
        "rows_out", "spilled_runs", "spilled_bytes",
        "exchange_batches", "exchange_rows", "exchange_bytes",
        "credit_stalls_us", "bloom_filtered_rows",
    )

    def merge(self, other: "ExecMetrics") -> "ExecMetrics":
        """Fold another fragment's (or query's) counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def merged(cls, parts) -> "ExecMetrics":
        """Sum of many ExecMetrics — per-fragment or per-query totals."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def to_dict(self) -> dict:
        """Summary dict with stall time rounded for stable goldens."""
        out = {name: getattr(self, name) for name in self.SUMMARY_FIELDS}
        out["credit_stalls_us"] = round(out["credit_stalls_us"], 3)
        return out


@dataclass
class ExecContext:
    """Everything an operator needs at run time."""

    db: Any  # Database (engine.database), kept loose to avoid cycles
    grant: Any  # Grant
    #: How many memory-consuming operators share the grant.
    memory_consumers: int = 1
    metrics: ExecMetrics = field(default_factory=ExecMetrics)
    #: Which fragment of a distributed plan this is (0-based) and how
    #: many fragments the plan has.  Single-node execution is fragment
    #: 0 of 1; exchange operators use these to route batches.
    fragment_index: int = 0
    fragments: int = 1

    @property
    def cpu(self):
        return self.db.server.cpu

    @property
    def operator_budget_bytes(self) -> int:
        return max(1, self.grant.granted_bytes // max(1, self.memory_consumers))

    def record_exchange(self, rows: int, nbytes: int, batches: int = 1) -> None:
        self.metrics.exchange_batches += batches
        self.metrics.exchange_rows += rows
        self.metrics.exchange_bytes += nbytes


def _traced_run(run):
    """Wrap an operator's ``run`` so each execution is one span.

    The span carries the operator class name and the output cardinality;
    children opened during execution (page faults, device service, CPU
    slices — and nested operators' own wrapped ``run``) become causal
    descendants, which is what the critical-path drill-down walks.
    """

    def spanned(self, ctx: ExecContext) -> ProcessGenerator:
        with ctx.db.sim.tracer.span(type(self).__name__, cat="operator") as span:
            rows = yield from run(self, ctx)
            if hasattr(rows, "__len__"):
                span.set(rows_out=len(rows))
        return rows

    def wrapper(self, ctx: ExecContext) -> ProcessGenerator:
        # Plain function, not a generator: under the no-op tracer the
        # caller drives the operator's own generator directly, without
        # an extra delegating frame per execution.
        if not ctx.db.sim.tracer.enabled:
            return run(self, ctx)
        return spanned(self, ctx)

    wrapper._traced = True
    wrapper.__wrapped__ = run
    return wrapper


class Operator(abc.ABC):
    """Base: produces a materialized row list when run."""

    #: Estimated output row width (bytes), for spill accounting.
    row_bytes: int = 64

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        run = cls.__dict__.get("run")
        if run is not None and not getattr(run, "_traced", False):
            cls.run = _traced_run(run)

    @abc.abstractmethod
    def run(self, ctx: ExecContext) -> ProcessGenerator: ...


class TableScan(Operator):
    """Full scan of a table's clustered index leaf chain."""

    def __init__(
        self,
        table: Table,
        predicate: Optional[Callable[[tuple], bool]] = None,
        project: Optional[Callable[[tuple], tuple]] = None,
        extra_cpu_per_row_us: float = 0.0,
    ):
        if table.clustered is None:
            raise PlanError(f"table {table.name} has no clustered index")
        self.table = table
        self.predicate = predicate
        self.project = project
        #: Additional per-row CPU for expression-dense queries (e.g.
        #: TPC-H Q1 computes eight aggregates per row).
        self.extra_cpu_per_row_us = extra_cpu_per_row_us
        self.row_bytes = table.schema.row_bytes

    #: Read-ahead window for sequential scans (pages).  Deep enough
    #: to cover a whole 2 MB allocation chunk so the RAID array's
    #: spindles all stream in parallel.
    READAHEAD_PAGES = 128

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        tree: BTree = self.table.clustered
        pool = tree.pool
        leaf = yield from tree._descend(_NEG_INF)
        out: list[tuple] = []
        while leaf is not None:
            # Bulk-built leaves are physically sequential: issue
            # read-ahead so the scan streams at device bandwidth.
            pool.prefetch(
                tree.store.file_id,
                range(leaf.page_no + 1, leaf.page_no + 1 + self.READAHEAD_PAGES),
            )
            yield from ctx.cpu.compute(
                PER_PAGE_CPU_US
                + len(leaf.rows) * (PER_ROW_SCAN_CPU_US + self.extra_cpu_per_row_us)
            )
            if self.predicate is None and self.project is None:
                out.extend(leaf.rows)
            else:
                for row in leaf.rows:
                    if self.predicate is None or self.predicate(row):
                        out.append(self.project(row) if self.project else row)
            next_no = leaf.meta.get("next")
            if next_no is None:
                break
            leaf = yield from pool.get_page(tree.store.file_id, next_no)
        ctx.metrics.rows_out += len(out)
        return out


class _NegInf:
    """Sorts below every key."""

    def __lt__(self, other):  # pragma: no cover - trivial
        return True

    def __le__(self, other):
        return True

    def __gt__(self, other):
        return False

    def __ge__(self, other):
        return False


_NEG_INF = _NegInf()


class IndexRangeScan(Operator):
    """``low <= key < high`` over a B-tree (clustered or secondary)."""

    def __init__(
        self,
        tree: BTree,
        low: Any,
        high: Any,
        limit: Optional[int] = None,
        row_bytes: int = 64,
        predicate: Optional[Callable[[tuple], bool]] = None,
    ):
        self.tree = tree
        self.low = low
        self.high = high
        self.limit = limit
        self.row_bytes = row_bytes
        self.predicate = predicate

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.tree.range_scan(self.low, self.high, limit=self.limit)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_SCAN_CPU_US)
        if self.predicate is not None:
            rows = [row for row in rows if self.predicate(row)]
        ctx.metrics.rows_out += len(rows)
        return rows


class IndexSeek(Operator):
    """Point lookup on a B-tree."""

    def __init__(self, tree: BTree, key: Any, row_bytes: int = 64):
        self.tree = tree
        self.key = key
        self.row_bytes = row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.tree.search(self.key)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_SCAN_CPU_US)
        ctx.metrics.rows_out += len(rows)
        return rows


class HashJoin(Operator):
    """In-memory hash join with grace-hash spilling to TempDB.

    Build side is hashed; if it exceeds the operator's grant share, both
    sides are partitioned to TempDB and joined partition-wise — phase 1
    writes, phase 2 reads, reproducing the I/O phases of Figure 14(b).
    """

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_key: Callable[[tuple], Any],
        probe_key: Callable[[tuple], Any],
        combine: Callable[[tuple, tuple], tuple] = lambda b, p: b + p,
    ):
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.combine = combine
        self.row_bytes = build.row_bytes + probe.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        build_rows = yield from self.build.run(ctx)
        probe_rows = yield from self.probe.run(ctx)
        budget = ctx.operator_budget_bytes
        need = len(build_rows) * self.build.row_bytes
        if need <= budget:
            out = yield from self._join_in_memory(ctx, build_rows, probe_rows)
        else:
            out = yield from self._grace_join(ctx, build_rows, probe_rows, budget)
        ctx.metrics.rows_out += len(out)
        return out

    def _join_in_memory(self, ctx, build_rows, probe_rows) -> ProcessGenerator:
        yield from ctx.cpu.compute(len(build_rows) * PER_ROW_HASH_BUILD_CPU_US)
        table: dict[Any, list[tuple]] = {}
        for row in build_rows:
            table.setdefault(self.build_key(row), []).append(row)
        yield from ctx.cpu.compute(len(probe_rows) * PER_ROW_HASH_PROBE_CPU_US)
        out: list[tuple] = []
        for probe_row in probe_rows:
            for build_row in table.get(self.probe_key(probe_row), ()):
                out.append(self.combine(build_row, probe_row))
        yield from ctx.cpu.compute(len(out) * PER_ROW_OUTPUT_CPU_US)
        return out

    def _grace_join(self, ctx, build_rows, probe_rows, budget) -> ProcessGenerator:
        tempdb = ctx.db.tempdb
        fanout = max(2, math.ceil(len(build_rows) * self.build.row_bytes / budget))
        build_parts: list[list[tuple]] = [[] for _ in range(fanout)]
        probe_parts: list[list[tuple]] = [[] for _ in range(fanout)]
        yield from ctx.cpu.compute(len(build_rows) * PER_ROW_HASH_BUILD_CPU_US)
        for row in build_rows:
            build_parts[hash(self.build_key(row)) % fanout].append(row)
        yield from ctx.cpu.compute(len(probe_rows) * PER_ROW_HASH_PROBE_CPU_US)
        for row in probe_rows:
            probe_parts[hash(self.probe_key(row)) % fanout].append(row)
        build_rows.clear()
        probe_rows.clear()
        # Phase 1: spill both sides.
        build_runs = []
        probe_runs = []
        build_rpp = max(1, 8192 // self.build.row_bytes)
        probe_rpp = max(1, 8192 // self.probe.row_bytes)
        for part in build_parts:
            run = yield from tempdb.write_run(part, build_rpp)
            build_runs.append(run)
            ctx.metrics.tempdb_writes += run.page_count
        for part in probe_parts:
            run = yield from tempdb.write_run(part, probe_rpp)
            probe_runs.append(run)
            ctx.metrics.tempdb_writes += run.page_count
        ctx.metrics.spilled_runs += fanout * 2
        ctx.metrics.spilled_bytes += sum(r.page_count for r in build_runs + probe_runs) * 8192
        # Phase 2: per-partition in-memory joins.
        out: list[tuple] = []
        for build_run, probe_run in zip(build_runs, probe_runs):
            part_build = yield from tempdb.read_run(build_run)
            part_probe = yield from tempdb.read_run(probe_run)
            ctx.metrics.tempdb_reads += build_run.page_count + probe_run.page_count
            joined = yield from self._join_in_memory(ctx, part_build, part_probe)
            out.extend(joined)
            tempdb.free_run(build_run)
            tempdb.free_run(probe_run)
        return out


class IndexNestedLoopJoin(Operator):
    """For each outer row, seek the inner index (Figure 15b's INLJ plan)."""

    def __init__(
        self,
        outer: Operator,
        inner_tree: BTree,
        outer_key: Callable[[tuple], Any],
        combine: Callable[[tuple, tuple], tuple] = lambda o, i: o + i,
        lookup_cpu_us: float = 0.0,
    ):
        self.outer = outer
        self.inner_tree = inner_tree
        self.outer_key = outer_key
        self.combine = combine
        #: Engine CPU per random row fetch beyond the raw tree descent
        #: (RID decode, latch crabbing, row materialization) — tens of
        #: microseconds in a real engine.
        self.lookup_cpu_us = lookup_cpu_us
        self.row_bytes = outer.row_bytes + 64

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        outer_rows = yield from self.outer.run(ctx)
        out: list[tuple] = []
        for outer_row in outer_rows:
            matches = yield from self.inner_tree.search(self.outer_key(outer_row))
            yield from ctx.cpu.compute(PER_ROW_SCAN_CPU_US + self.lookup_cpu_us)
            for inner_row in matches:
                out.append(self.combine(outer_row, inner_row))
        yield from ctx.cpu.compute(len(out) * PER_ROW_OUTPUT_CPU_US)
        ctx.metrics.rows_out += len(out)
        return out


class ExternalSort(Operator):
    """Sort with run generation + streaming merge through TempDB.

    ``top_n`` truncates the *output*; the merge stops early once enough
    rows have surfaced, but run generation still sorts/spills everything
    (SQL Server's Top-N Sort behaves this way for large N, which is why
    the paper's Hash+Sort query stresses TempDB).
    """

    def __init__(
        self,
        child: Operator,
        key: Callable[[tuple], Any],
        reverse: bool = False,
        top_n: Optional[int] = None,
    ):
        self.child = child
        self.key = key
        self.reverse = reverse
        self.top_n = top_n
        self.row_bytes = child.row_bytes

    def _compare_cost(self, n: int) -> float:
        return n * max(1.0, math.log2(max(2, n))) * SORT_COMPARE_CPU_US

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        budget = ctx.operator_budget_bytes
        need = len(rows) * self.row_bytes
        if need <= budget:
            yield from ctx.cpu.compute(self._compare_cost(len(rows)))
            rows.sort(key=self.key, reverse=self.reverse)
            out = rows[: self.top_n] if self.top_n is not None else rows
            ctx.metrics.rows_out += len(out)
            return out
        out = yield from self._external(ctx, rows, budget)
        ctx.metrics.rows_out += len(out)
        return out

    def _external(self, ctx, rows, budget) -> ProcessGenerator:
        tempdb = ctx.db.tempdb
        rows_per_run = max(1, budget // self.row_bytes)
        rows_per_page = max(1, 8192 // self.row_bytes)
        runs = []
        for start in range(0, len(rows), rows_per_run):
            chunk = rows[start : start + rows_per_run]
            yield from ctx.cpu.compute(self._compare_cost(len(chunk)))
            chunk.sort(key=self.key, reverse=self.reverse)
            run = yield from tempdb.write_run(chunk, rows_per_page)
            runs.append(run)
            ctx.metrics.tempdb_writes += run.page_count
        rows.clear()
        ctx.metrics.spilled_runs += len(runs)
        ctx.metrics.spilled_bytes += sum(run.page_count for run in runs) * 8192
        # Streaming k-way merge, one extent per run buffered at a time.
        out = yield from self._merge(ctx, tempdb, runs)
        for run in runs:
            tempdb.free_run(run)
        return out

    def _merge(self, ctx, tempdb, runs) -> ProcessGenerator:
        sign = -1 if self.reverse else 1

        cursors = []
        for run in runs:
            if run.extents:
                rows, consumed = yield from tempdb.read_extent(run, 0)
                ctx.metrics.tempdb_reads += sum(
                    pages for _s, pages in run.extents[:consumed]
                )
                cursors.append({"run": run, "extent": consumed, "rows": rows, "pos": 0})
        heap = []
        for index, cursor in enumerate(cursors):
            if cursor["rows"]:
                row = cursor["rows"][0]
                heap.append((_sort_token(self.key(row), sign), index))
        heapq.heapify(heap)
        out: list[tuple] = []
        compares = 0
        while heap:
            _token, index = heapq.heappop(heap)
            cursor = cursors[index]
            row = cursor["rows"][cursor["pos"]]
            out.append(row)
            compares += max(1, int(math.log2(max(2, len(heap) + 1))))
            if self.top_n is not None and len(out) >= self.top_n:
                break
            cursor["pos"] += 1
            if cursor["pos"] >= len(cursor["rows"]):
                cursor["pos"] = 0
                if cursor["extent"] < len(cursor["run"].extents):
                    rows, consumed = yield from tempdb.read_extent(
                        cursor["run"], cursor["extent"]
                    )
                    ctx.metrics.tempdb_reads += sum(
                        pages for _s, pages in
                        cursor["run"].extents[cursor["extent"]:cursor["extent"] + consumed]
                    )
                    cursor["rows"] = rows
                    cursor["extent"] += consumed
                else:
                    cursor["rows"] = []
            if cursor["rows"]:
                next_row = cursor["rows"][cursor["pos"]]
                heapq.heappush(heap, (_sort_token(self.key(next_row), sign), index))
        yield from ctx.cpu.compute(compares * SORT_COMPARE_CPU_US)
        return out


def _sort_token(key: Any, sign: int):
    """Negate numeric keys for descending merges; tuples handled item-wise."""
    if sign == 1:
        return key
    if isinstance(key, tuple):
        return tuple(_sort_token(item, sign) for item in key)
    return -key


class FilterRows(Operator):
    """Row-at-a-time predicate over any child (un-fusable Filters).

    Plans lowered from the IR fuse filters into scans where possible;
    this operator exists for conditions over derived rows — e.g. a
    post-join filter — and charges one row-touch of CPU per input row.
    """

    def __init__(self, child: Operator, predicate: Callable[[tuple], bool]):
        self.child = child
        self.predicate = predicate
        self.row_bytes = child.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_SCAN_CPU_US)
        out = [row for row in rows if self.predicate(row)]
        ctx.metrics.rows_out += len(out)
        return out


class ProjectRows(Operator):
    """Row-at-a-time projection over any child (un-fusable Projects)."""

    def __init__(
        self,
        child: Operator,
        project: Callable[[tuple], tuple],
        row_bytes: int = 64,
    ):
        self.child = child
        self.project = project
        self.row_bytes = row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_OUTPUT_CPU_US)
        out = [self.project(row) for row in rows]
        ctx.metrics.rows_out += len(out)
        return out


class HashAggregate(Operator):
    """Group-by with a hash table (assumed to fit the grant; groups are
    few in the workloads reproduced here)."""

    def __init__(
        self,
        child: Operator,
        group_key: Callable[[tuple], Any],
        init: Callable[[], Any],
        update: Callable[[Any, tuple], Any],
        finalize: Callable[[Any, Any], tuple] = lambda key, acc: (key, acc),
    ):
        self.child = child
        self.group_key = group_key
        self.init = init
        self.update = update
        self.finalize = finalize
        self.row_bytes = 32

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_AGG_CPU_US)
        groups: dict[Any, Any] = {}
        for row in rows:
            key = self.group_key(row)
            if key not in groups:
                groups[key] = self.init()
            groups[key] = self.update(groups[key], row)
        out = [self.finalize(key, acc) for key, acc in groups.items()]
        yield from ctx.cpu.compute(len(out) * PER_ROW_OUTPUT_CPU_US)
        ctx.metrics.rows_out += len(out)
        return out
