"""Page stores: the media a database file can live on.

Every store is slot-addressed (slot = 8K page position within the file)
and exposes the same generator API, so the buffer pool, BPExt, TempDB
and log writer can be pointed at:

* :class:`DevicePageFile`  — a local block device (HDD array, SSD);
  waited on *asynchronously*, like any disk I/O in a classic engine.
* :class:`RemotePageFile`  — the paper's Custom design: a lightweight
  remote-memory file accessed via RDMA; the wait policy (sync spin vs
  async) is the file's :class:`~repro.remotefile.AccessPolicy`.
* :class:`SmbPageFile`     — a RamDrive on a remote server behind SMB
  or SMB Direct; stock engines treat it as a regular file, i.e. an
  asynchronous I/O with context-switch overheads (the Figure 11c gap).

Stores keep the authoritative *disk image* of their pages (snapshots,
isolated from buffer-pool mutation) so correctness is testable
end-to-end: what you wrote is what you read back, on every medium.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator, Optional

from ..cluster import Server
from ..net.rdma import RdmaError
from ..reliability import DeadlineExceeded
from ..remotefile import RemoteFile, RemoteFileError, RemoteMemoryUnavailable
from ..sim.kernel import ProcessGenerator
from ..storage import BlockDevice, IoOp
from .errors import PageNotFound
from .page import PAGE_SIZE, Page

__all__ = [
    "PageStore",
    "DevicePageFile",
    "RemotePageFile",
    "SmbPageFile",
    "RemoteMemoryUnavailable",
]


class PageStore(abc.ABC):
    """Slot-addressed page container with simulated I/O timing."""

    def __init__(self, file_id: int, capacity_pages: Optional[int] = None):
        self.file_id = file_id
        self.capacity_pages = capacity_pages
        self.page_reads = 0
        self.page_writes = 0

    @abc.abstractmethod
    def read_page(self, slot: int, background: bool = False) -> ProcessGenerator:
        """Return the page stored at ``slot`` (a fresh snapshot).

        ``background=True`` marks read-ahead I/O: media with a
        synchronous spin path (remote memory) wait asynchronously.
        """

    @abc.abstractmethod
    def write_page(
        self, page: Page, slot: Optional[int] = None, background: bool = False,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> ProcessGenerator:
        """Store a snapshot of ``page`` at ``slot`` (default: page_no).

        ``background=True`` marks write-behind I/O (cache population,
        checkpoints): the content is installed immediately and the call
        does not wait for the device transfer.  ``on_abort`` (stores
        whose write-behind can fail after this call returned, i.e.
        remote memory) is invoked on such a late abort: the slot's
        contents are then unknown and the caller must unmap it."""

    @abc.abstractmethod
    def contains(self, slot: int) -> bool: ...

    @abc.abstractmethod
    def discard(self, slot: int) -> None:
        """Drop the page at ``slot`` without I/O (cache invalidation)."""

    def slot_provider(self, slot: int) -> Optional[str]:
        """Memory server backing ``slot``, or ``None`` when the medium
        has no notion of a provider (local devices) — the hook breaker
        routing and fault targeting key quarantine decisions on."""
        return None

    def iter_pages(self) -> Iterator[tuple[int, Page]]:
        """Iterate ``(slot, page)`` over the authoritative images, without
        simulated I/O (priming / steady-state setup).  Media that cannot
        enumerate their contents cheaply (remote memory) yield nothing.
        """
        return iter(())

    def install(self, page: Page, slot: Optional[int] = None) -> None:
        """Place a snapshot of ``page`` at ``slot`` without simulated I/O
        (initial load and steady-state priming; default: ``page_no``)."""
        raise NotImplementedError(f"{type(self).__name__} cannot install pages untimed")

    def peek(self, slot: int) -> Page:
        """Untimed access to the stored image at ``slot`` (DDL builds and
        demotion snapshots; raises :class:`PageNotFound` when absent).

        Returns the internal object — callers must not mutate it.
        """
        raise PageNotFound(f"file {self.file_id}: cannot peek slot {slot}")

    def write_batch(self, slot: int, pages: list[Page]) -> ProcessGenerator:
        """Write ``pages`` contiguously from ``slot`` (one large I/O where
        the medium supports it; default falls back to per-page writes)."""
        for index, page in enumerate(pages):
            yield from self.write_page(page, slot=slot + index)

    def read_batch(self, slot: int, count: int) -> ProcessGenerator:
        """Read ``count`` contiguous pages starting at ``slot``."""
        pages = []
        for index in range(count):
            page = yield from self.read_page(slot + index)
            pages.append(page)
        return pages

    def _check_slot(self, slot: int) -> None:
        if slot < 0:
            raise PageNotFound(f"file {self.file_id}: negative slot {slot}")
        if self.capacity_pages is not None and slot >= self.capacity_pages:
            raise PageNotFound(
                f"file {self.file_id}: slot {slot} beyond capacity {self.capacity_pages}"
            )


class DevicePageFile(PageStore):
    """Pages on a local block device, waited on as asynchronous I/O."""

    #: Pages per allocation chunk: contiguous on disk within a chunk,
    #: chunks scattered across the volume.  This reproduces full-scale
    #: disk geometry on a scaled-down database: scans still stream
    #: (one seek per 2 MB), while random page lookups land far apart.
    #: Pass ``chunk_pages=None`` for linear files (TempDB, log), which
    #: real engines preallocate contiguously.
    CHUNK_PAGES = 256

    def __init__(
        self,
        file_id: int,
        server: Server,
        device: BlockDevice,
        capacity_pages: Optional[int] = None,
        base_offset: int = 0,
        chunk_pages: Optional[int] = CHUNK_PAGES,
    ):
        super().__init__(file_id, capacity_pages)
        self.server = server
        self.device = device
        self.base_offset = base_offset
        self.chunk_pages = chunk_pages
        self._pages: dict[int, Page] = {}

    def _offset(self, slot: int) -> int:
        if self.chunk_pages is None:
            return self.base_offset + slot * PAGE_SIZE
        chunk, within = divmod(slot, self.chunk_pages)
        # Deterministic pseudo-random chunk placement over a ~8 TB
        # virtual region (multiplicative hashing; file id salts it).
        spread = (chunk * 2654435761 + self.file_id * 40503) % (1 << 22)
        return (
            self.base_offset
            + spread * self.chunk_pages * PAGE_SIZE
            + within * PAGE_SIZE
        )

    def read_page(self, slot: int, background: bool = False) -> ProcessGenerator:
        self._check_slot(slot)
        if slot not in self._pages:
            raise PageNotFound(f"file {self.file_id}: no page at slot {slot}")
        # Snapshot at I/O start: a concurrent discard (extension slot
        # eviction) must not fault a read already in flight.
        page = self._pages[slot]
        io = self.device.submit(IoOp.READ, self._offset(slot), PAGE_SIZE)
        yield from self.server.cpu.async_wait(io)
        self.page_reads += 1
        return page.copy()

    def write_page(
        self, page: Page, slot: Optional[int] = None, background: bool = False,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> ProcessGenerator:
        slot = page.page_no if slot is None else slot
        self._check_slot(slot)
        self._pages[slot] = page.copy()
        io = self.device.submit(IoOp.WRITE, self._offset(slot), PAGE_SIZE)
        if not background:
            yield from self.server.cpu.async_wait(io)
        self.page_writes += 1
        if False:
            yield  # pragma: no cover - keeps this a generator

    def write_batch(self, slot: int, pages: list[Page]) -> ProcessGenerator:
        self._check_slot(slot + len(pages) - 1)
        io = self.device.submit(IoOp.WRITE, self._offset(slot), len(pages) * PAGE_SIZE)
        yield from self.server.cpu.async_wait(io)
        for index, page in enumerate(pages):
            self._pages[slot + index] = page.copy()
        self.page_writes += len(pages)

    def read_batch(self, slot: int, count: int) -> ProcessGenerator:
        self._check_slot(slot + count - 1)
        io = self.device.submit(IoOp.READ, self._offset(slot), count * PAGE_SIZE)
        yield from self.server.cpu.async_wait(io)
        self.page_reads += count
        return [self._pages[slot + index].copy() for index in range(count)
                if slot + index in self._pages]

    def contains(self, slot: int) -> bool:
        return slot in self._pages

    def discard(self, slot: int) -> None:
        self._pages.pop(slot, None)

    def iter_pages(self) -> "Iterator[tuple[int, Page]]":
        return iter(self._pages.items())

    def install(self, page: Page, slot: Optional[int] = None) -> None:
        self._pages[page.page_no if slot is None else slot] = page.copy()

    def peek(self, slot: int) -> Page:
        if slot not in self._pages:
            raise PageNotFound(f"file {self.file_id}: no page at slot {slot}")
        return self._pages[slot]

    def preload(self, pages: list[Page]) -> None:
        """Populate the disk image without simulated I/O (initial load)."""
        for page in pages:
            self.install(page)

    def write_scattered(self, pages: list[Page]) -> ProcessGenerator:
        """Checkpoint-style write of non-contiguous pages.

        Real engines sort dirty pages by file offset and sweep the disk
        elevator-fashion, so a batch costs roughly one positioning plus
        the transfers, not one random seek per page.
        """
        if not pages:
            return
        ordered = sorted(pages, key=lambda page: page.page_no)
        io = self.device.submit(
            IoOp.WRITE, self._offset(ordered[0].page_no), len(ordered) * PAGE_SIZE
        )
        yield from self.server.cpu.async_wait(io)
        for page in ordered:
            self._pages[page.page_no] = page.copy()
        self.page_writes += len(ordered)


class RemotePageFile(PageStore):
    """Pages in brokered remote memory via the lightweight file API."""

    def __init__(self, file_id: int, remote_file: RemoteFile, capacity_pages: Optional[int] = None):
        if capacity_pages is None:
            capacity_pages = remote_file.size // PAGE_SIZE
        super().__init__(file_id, capacity_pages)
        self.remote_file = remote_file
        self._present: set[int] = set()
        #: slot -> page count for extents written as one object.
        self._batches: dict[int, int] = {}

    def read_page(self, slot: int, background: bool = False) -> ProcessGenerator:
        self._check_slot(slot)
        if slot not in self._present:
            raise PageNotFound(f"remote file {self.file_id}: no page at slot {slot}")
        try:
            page = yield from self.remote_file.read_object(
                slot * PAGE_SIZE, PAGE_SIZE, background=background
            )
        except DeadlineExceeded:
            # A budget expiry is transient — the remote image is intact,
            # just slow to reach — so the slot stays present for a later
            # (or hedged) attempt.  Contrast RemoteMemoryUnavailable
            # below, where the backing data really is gone.
            raise
        except RemoteMemoryUnavailable:
            self._present.discard(slot)
            raise
        except (RemoteFileError, RdmaError):
            # The extent was dropped while the read was in flight (slot
            # evicted/invalidated concurrently): treat as a plain miss.
            self._present.discard(slot)
            raise PageNotFound(f"remote file {self.file_id}: slot {slot} dropped mid-read")
        self.page_reads += 1
        return page.copy()

    def write_page(
        self, page: Page, slot: Optional[int] = None, background: bool = False,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> ProcessGenerator:
        slot = page.page_no if slot is None else slot
        self._check_slot(slot)

        def _aborted():
            # The fire-and-forget transfer died after we returned: the
            # remote bytes at ``slot`` are unknown, so stop serving it.
            self.discard(slot)
            if on_abort is not None:
                on_abort()

        yield from self.remote_file.write_object(
            slot * PAGE_SIZE, PAGE_SIZE, page.copy(), background=background,
            on_abort=_aborted if background else None,
        )
        self._present.add(slot)
        self._batches.pop(slot, None)  # a single page now lives here
        self.page_writes += 1

    def write_batch(self, slot: int, pages: list[Page]) -> ProcessGenerator:
        """One RDMA write for the whole extent when it fits in one MR."""
        self._check_slot(slot + len(pages) - 1)
        size = len(pages) * PAGE_SIZE
        try:
            yield from self.remote_file.write_object(
                slot * PAGE_SIZE, size, [page.copy() for page in pages]
            )
        except RemoteFileError:
            # Extent straddles a memory-region boundary: page-by-page.
            self._batches.pop(slot, None)
            for index, page in enumerate(pages):
                yield from self.write_page(page, slot=slot + index)
            return
        self._present.update(range(slot, slot + len(pages)))
        self._batches[slot] = len(pages)
        self.page_writes += len(pages)

    def read_batch(self, slot: int, count: int) -> ProcessGenerator:
        """Read a contiguous range, consuming whole batch-written extents
        where possible (a coalesced read may span several of them)."""
        pages: list[Page] = []
        cursor = slot
        end = slot + count
        while cursor < end:
            batch_pages = self._batches.get(cursor)
            if batch_pages is not None:
                # Read the stored batch object whole; slice if the
                # requested window ends inside it.
                extent = yield from self.remote_file.read_object(
                    cursor * PAGE_SIZE, batch_pages * PAGE_SIZE
                )
                take = min(batch_pages, end - cursor)
                pages.extend(page.copy() for page in extent[:take])
                self.page_reads += take
                cursor += batch_pages
            else:
                page = yield from self.read_page(cursor)
                pages.append(page)
                cursor += 1
        return pages

    def contains(self, slot: int) -> bool:
        return slot in self._present

    def discard(self, slot: int) -> None:
        self._present.discard(slot)
        self._batches.pop(slot, None)

    def slot_provider(self, slot: int) -> str:
        """Memory server backing ``slot`` (fault-targeting hook)."""
        return self.remote_file.provider_of(slot * PAGE_SIZE)

    def install(self, page: Page, slot: Optional[int] = None) -> None:
        slot = page.page_no if slot is None else slot
        segments = self.remote_file._locate(slot * PAGE_SIZE, PAGE_SIZE)
        lease, mr_offset, length = segments[0]
        lease.region.put_object(mr_offset, length, page.copy())
        self._present.add(slot)

    def preload(self, pages: list[Page]) -> None:
        """Install page images without simulated I/O (steady-state setup)."""
        for page in pages:
            self.install(page)


class SmbPageFile(PageStore):
    """Pages on a remote RamDrive behind SMB / SMB Direct.

    The transport client models the protocol; page *content* is kept
    here (it physically lives in the RamDrive on the memory server).
    Stock engines issue these as asynchronous I/Os — the context-switch
    cost on completion is what Figure 11(c) measures against Custom.
    """

    def __init__(self, file_id: int, server: Server, client, capacity_pages: Optional[int] = None):
        super().__init__(file_id, capacity_pages)
        self.server = server
        self.client = client
        self._pages: dict[int, Page] = {}

    def read_page(self, slot: int, background: bool = False) -> ProcessGenerator:
        self._check_slot(slot)
        if slot not in self._pages:
            raise PageNotFound(f"smb file {self.file_id}: no page at slot {slot}")
        page = self._pages[slot]  # snapshot at I/O start (see DevicePageFile)
        io = self.server.sim.spawn(self.client.read(slot * PAGE_SIZE, PAGE_SIZE))
        yield from self.server.cpu.async_wait(io)
        self.page_reads += 1
        return page.copy()

    def write_page(
        self, page: Page, slot: Optional[int] = None, background: bool = False,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> ProcessGenerator:
        slot = page.page_no if slot is None else slot
        self._check_slot(slot)
        self._pages[slot] = page.copy()
        io = self.server.sim.spawn(self.client.write(slot * PAGE_SIZE, PAGE_SIZE))
        if not background:
            yield from self.server.cpu.async_wait(io)
        self.page_writes += 1

    def write_batch(self, slot: int, pages: list) -> ProcessGenerator:
        self._check_slot(slot + len(pages) - 1)
        io = self.server.sim.spawn(
            self.client.write(slot * PAGE_SIZE, len(pages) * PAGE_SIZE)
        )
        yield from self.server.cpu.async_wait(io)
        for index, page in enumerate(pages):
            self._pages[slot + index] = page.copy()
        self.page_writes += len(pages)

    def read_batch(self, slot: int, count: int) -> ProcessGenerator:
        self._check_slot(slot + count - 1)
        io = self.server.sim.spawn(
            self.client.read(slot * PAGE_SIZE, count * PAGE_SIZE)
        )
        yield from self.server.cpu.async_wait(io)
        self.page_reads += count
        return [self._pages[slot + index].copy() for index in range(count)
                if slot + index in self._pages]

    def contains(self, slot: int) -> bool:
        return slot in self._pages

    def discard(self, slot: int) -> None:
        self._pages.pop(slot, None)

    def iter_pages(self) -> "Iterator[tuple[int, Page]]":
        return iter(self._pages.items())

    def install(self, page: Page, slot: Optional[int] = None) -> None:
        self._pages[page.page_no if slot is None else slot] = page.copy()

    def peek(self, slot: int) -> Page:
        if slot not in self._pages:
            raise PageNotFound(f"smb file {self.file_id}: no page at slot {slot}")
        return self._pages[slot]

    def preload(self, pages: list[Page]) -> None:
        """Install page images without simulated I/O (steady-state setup)."""
        for page in pages:
            self.install(page)
