"""In-RDBMS semantic cache pinned in remote memory (Section 3.3).

The cache holds redundant, opportunistically-built structures —
materialized views and non-clustered indexes — in memory leased from
remote servers, separate from the buffer pool.  Queries that match a
cached view answer from it directly; everything else runs the base
plan.  Because the structures are redundant, losing the remote memory
never affects correctness: the cache invalidates, and can be rebuilt
from the base tables or recovered from the transaction log by REDO
(Appendix B.4, Figure 26).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.kernel import ProcessGenerator
from .costs import PER_PAGE_CPU_US, PER_ROW_SCAN_CPU_US
from .errors import EngineError
from .files import PageStore, RemoteMemoryUnavailable
from .page import Page, PageKind
from .tempdb import EXTENT_PAGES
from .wal import LogRecordKind, redo_replay

__all__ = ["MaintenancePolicy", "MaterializedView", "SemanticCache"]


class MaintenancePolicy(enum.Enum):
    """How a cached structure reacts to base-table updates."""

    SYNC = "sync"  # updated inside the transaction
    ASYNC = "async"  # updated by a background task
    SNAPSHOT = "snapshot"  # left as-of build time
    INVALIDATE = "invalidate"  # dropped on any update


@dataclass
class MaterializedView:
    """Precomputed result rows of a query template, stored page-wise."""

    name: str
    template_id: str
    store: PageStore
    rows_per_page: int
    row_count: int = 0
    page_count: int = 0
    valid: bool = False
    policy: MaintenancePolicy = MaintenancePolicy.SYNC
    #: LSN of the last checkpoint of this view (REDO starts here).
    checkpoint_lsn: int = 0
    #: Mutation function for applying a log record during maintenance or
    #: recovery: (current_rows, record) -> new_rows for one page.
    apply_record: Optional[Callable] = None


class SemanticCache:
    """Broker for views/indexes pinned outside the buffer pool."""

    def __init__(self, db):
        self.db = db
        self.views: dict[str, MaterializedView] = {}
        self.hits = 0
        self.misses = 0

    # -- build / match -------------------------------------------------------

    def create_view(
        self,
        name: str,
        template_id: str,
        rows: list[tuple],
        row_bytes: int,
        store: PageStore,
        policy: MaintenancePolicy = MaintenancePolicy.SYNC,
        timed: bool = False,
    ) -> ProcessGenerator:
        """Materialize ``rows`` into ``store`` and register the view.

        ``timed=False`` skips simulated I/O (builds happen during setup);
        the recovery experiment uses the timed path.
        """
        if template_id in self.views:
            raise EngineError(f"view for template {template_id!r} already cached")
        rows_per_page = max(1, 8100 // max(1, row_bytes))
        view = MaterializedView(
            name=name, template_id=template_id, store=store,
            rows_per_page=rows_per_page, policy=policy,
        )
        yield from self._write_rows(view, rows, timed=timed)
        view.valid = True
        self.views[template_id] = view
        return view

    def _write_rows(self, view: MaterializedView, rows: list[tuple], timed: bool) -> ProcessGenerator:
        pages = []
        for page_no, start in enumerate(range(0, len(rows), view.rows_per_page)):
            pages.append(
                Page(
                    page_id=(view.store.file_id, page_no),
                    kind=PageKind.HEAP,
                    rows=list(rows[start : start + view.rows_per_page]),
                )
            )
        if not pages:
            pages = [Page(page_id=(view.store.file_id, 0), kind=PageKind.HEAP, rows=[])]
        if timed:
            for start in range(0, len(pages), EXTENT_PAGES):
                extent = pages[start : start + EXTENT_PAGES]
                yield from view.store.write_batch(extent[0].page_no, extent)
        else:
            for page in pages:
                if hasattr(view.store, "preload"):
                    view.store.preload([page])
                else:
                    yield from view.store.write_page(page)
        view.row_count = len(rows)
        view.page_count = len(pages)

    def match(self, template_id: str) -> Optional[MaterializedView]:
        """View matching: return a valid cached view for the template."""
        view = self.views.get(template_id)
        if view is not None and view.valid:
            self.hits += 1
            return view
        self.misses += 1
        return None

    # -- serving ----------------------------------------------------------------

    def scan_view(self, view: MaterializedView) -> ProcessGenerator:
        """Answer a query from the cache: sequential scan of the view.

        Reads bypass the buffer pool (the cache is its own memory
        broker); on remote-memory loss the view invalidates and the
        caller falls back to the base plan.
        """
        rows: list[tuple] = []
        cpu = self.db.server.cpu
        try:
            slot = 0
            while slot < view.page_count:
                count = min(EXTENT_PAGES, view.page_count - slot)
                pages = yield from view.store.read_batch(slot, count)
                for page in pages:
                    rows.extend(page.rows)
                yield from cpu.compute(
                    count * PER_PAGE_CPU_US
                    + sum(len(p.rows) for p in pages) * PER_ROW_SCAN_CPU_US
                )
                slot += count
        except RemoteMemoryUnavailable:
            view.valid = False
            raise
        return rows

    # -- maintenance ----------------------------------------------------------------

    def on_base_update(self, template_id: str, record_row: Any) -> ProcessGenerator:
        """Propagate one base-table change per the view's policy."""
        view = self.views.get(template_id)
        if view is None or not view.valid:
            return
        if view.policy is MaintenancePolicy.INVALIDATE:
            view.valid = False
        elif view.policy is MaintenancePolicy.SYNC:
            # Touch the affected page (read-modify-write of one page).
            slot = 0 if view.page_count == 0 else hash(record_row) % view.page_count
            try:
                page = yield from view.store.read_page(slot)
                yield from view.store.write_page(page, slot=slot)
            except (RemoteMemoryUnavailable, Exception):
                view.valid = False
        # ASYNC/SNAPSHOT: nothing synchronous.

    # -- recovery (Appendix B.4) --------------------------------------------------

    def recover_view(
        self,
        template_id: str,
        new_store: PageStore,
        base_rows: list[tuple],
    ) -> ProcessGenerator:
        """Rebuild a lost view on ``new_store`` by REDO from the log.

        ``base_rows`` is the checkpointed image (what survived on stable
        storage); records after ``checkpoint_lsn`` are replayed from the
        transaction log, then the recovered pages are written to the new
        remote store.  Returns the number of replayed records.
        """
        view = self.views.get(template_id)
        if view is None:
            raise EngineError(f"no view for template {template_id!r}")
        recovered = dict((i, row) for i, row in enumerate(base_rows))

        def apply(record):
            if record.kind in (LogRecordKind.UPDATE, LogRecordKind.INSERT):
                recovered[record.key] = record.row
            elif record.kind is LogRecordKind.DELETE:
                recovered.pop(record.key, None)
            return None

        applied = yield from redo_replay(
            self.db.server, self.db.wal, apply, from_lsn=view.checkpoint_lsn
        )
        view.store = new_store
        yield from self._write_rows(
            view, [recovered[k] for k in sorted(recovered)], timed=True
        )
        view.valid = True
        return applied
