"""The database engine facade.

A :class:`Database` is one SMP RDBMS instance on one server: buffer pool
(+ optional extension), write-ahead log, TempDB, workspace-memory grant
manager, catalog, and the entry points sessions use to run queries and
DML.  The media behind BPExt/TempDB are injected, which is how the
harness realizes each Table-5 design alternative.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..cluster import Server
from ..sim.kernel import ProcessGenerator
from ..storage import BlockDevice
from .bufferpool import BufferPool, BufferPoolExtension
from .btree import BTree
from .catalog import Catalog, Schema, Table
from .costs import QUERY_SETUP_CPU_US
from .errors import EngineError
from .files import DevicePageFile, PageStore
from .grants import GrantManager
from .operators import ExecContext, ExecMetrics, Operator
from .page import PAGE_SIZE
from .tempdb import TempDb
from .wal import LogRecordKind, WriteAheadLog

__all__ = ["Database", "QueryResult"]

#: Secondary-index entry width: key + primary key + row header.
INDEX_ENTRY_BYTES = 24


class QueryResult:
    """Rows plus execution metadata for one query."""

    def __init__(self, rows: list, metrics: ExecMetrics, elapsed_us: float):
        self.rows = rows
        self.metrics = metrics
        self.elapsed_us = elapsed_us

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """One engine instance bound to one simulated server."""

    def __init__(
        self,
        server: Server,
        bp_pages: int,
        data_device: BlockDevice,
        log_device: Optional[BlockDevice] = None,
        bpext_store: Optional[PageStore] = None,
        tempdb_store: Optional[PageStore] = None,
        workspace_bytes: Optional[int] = None,
        query_setup_cpu_us: float = QUERY_SETUP_CPU_US,
        extension: Optional[object] = None,
    ):
        """``extension`` (a pre-built
        :class:`~repro.engine.BufferPoolExtension` or
        :class:`~repro.tiers.TierStack`) takes precedence over
        ``bpext_store``, which remains the single-tier shorthand."""
        self.server = server
        self.sim = server.sim
        self.catalog = Catalog()
        self.data_device = data_device
        if extension is None and bpext_store is not None:
            extension = BufferPoolExtension(bpext_store)
        self.pool = BufferPool(server, capacity_pages=bp_pages, extension=extension)
        self.wal = WriteAheadLog(server, log_device if log_device is not None else data_device)
        self.tempdb = TempDb(tempdb_store) if tempdb_store is not None else None
        workspace = workspace_bytes if workspace_bytes is not None else bp_pages * PAGE_SIZE
        self.grants = GrantManager(server, workspace)
        self.query_setup_cpu_us = query_setup_cpu_us
        self.queries_executed = 0
        self._txn_manager = None

    def transactions(self, **kwargs):
        """This database's transaction manager (lazily created).

        Keyword arguments (``policy``, ``rng``, ``record_history``)
        configure the manager on first call; later calls return the
        existing instance so every session shares one lock table.
        """
        if self._txn_manager is None:
            from ..txn import TransactionManager

            self._txn_manager = TransactionManager(self, **kwargs)
        return self._txn_manager

    # -- DDL / loading -----------------------------------------------------

    def create_table(self, name: str, schema: Schema, rows: list[tuple]) -> Table:
        """Create a table with a clustered index over pre-sorted rows.

        Initial load is instantaneous (experiments measure steady state);
        the loader module models timed loading for Figure 27.
        """
        table = self.catalog.add_table(name, schema)
        store = DevicePageFile(table.file_id, self.server, self.data_device)
        self.pool.register_file(store)
        ordered = sorted(rows, key=schema.key_of)
        tree = BTree(
            name=f"{name}.clustered",
            pool=self.pool,
            store=store,
            key_fn=schema.key_of,
            leaf_capacity=schema.rows_per_page,
        )
        tree.bulk_build(ordered)
        table.clustered = tree
        table.stats.row_count = len(ordered)
        table.stats.page_count = tree.leaf_count
        if ordered:
            table.stats.min_key = schema.key_of(ordered[0])
            table.stats.max_key = schema.key_of(ordered[-1])
        return table

    def create_secondary_index(
        self,
        table: Table,
        column: str,
        name: Optional[str] = None,
        store: Optional[PageStore] = None,
    ) -> BTree:
        """Non-clustered index of ``(key, primary_key)`` entries.

        ``store`` may live anywhere — including pinned remote memory,
        which is the semantic-cache scenario of Section 3.3.
        """
        index_name = name or f"{table.name}.{column}"
        if index_name in table.indexes:
            raise EngineError(f"index {index_name!r} already exists")
        if store is None:
            store = DevicePageFile(
                self.catalog.allocate_file_id(), self.server, self.data_device
            )
        if store.file_id not in self.pool.files:
            self.pool.register_file(store)
        extract = table.schema.extractor(column)
        key_index = table.schema.key_index
        # Build synchronously from the current clustered image (cheap:
        # index creation happens during setup, not measurement).
        leaf_rows = [
            row
            for page_rows in self._all_leaf_rows(table)
            for row in page_rows
        ]
        entries = sorted(((extract(row), row[key_index]) for row in leaf_rows))
        capacity = max(2, (PAGE_SIZE - 96) // INDEX_ENTRY_BYTES)
        tree = BTree(
            name=index_name,
            pool=self.pool,
            store=store,
            key_fn=lambda entry: entry[0],
            leaf_capacity=capacity,
        )
        tree.bulk_build(entries)
        table.indexes[index_name] = tree
        return tree

    def _all_leaf_rows(self, table: Table):
        """Direct (untimed) walk of the clustered leaves for DDL builds."""
        tree: BTree = table.clustered
        store = tree.store
        # Find leftmost leaf without simulation time.
        page = store.peek(tree.root_page_no)
        from .page import PageKind

        while page.kind is PageKind.BTREE_INTERNAL:
            page = store.peek(page.meta["children"][0])
        while page is not None:
            yield page.rows
            next_no = page.meta.get("next")
            if next_no is None:
                break
            page = store.peek(next_no)

    # -- query execution ------------------------------------------------------

    def execute(
        self,
        plan: Operator,
        requested_memory_bytes: int = 0,
        memory_consumers: int = 1,
        fragment_index: int = 0,
        fragments: int = 1,
    ) -> ProcessGenerator:
        """Run an operator tree; returns a :class:`QueryResult`.

        Distributed plans (repro.dist) run one fragment per DB server;
        ``fragment_index``/``fragments`` flow into the ExecContext so
        exchange operators know their position in the topology.
        """
        start = self.sim.now
        with self.sim.tracer.span(
            "query", cat="query", plan=type(plan).__name__,
            requested_memory=requested_memory_bytes,
        ):
            yield from self.server.cpu.compute(self.query_setup_cpu_us)
            grant = yield from self.grants.acquire(max(1, requested_memory_bytes))
            ctx = ExecContext(
                db=self, grant=grant, memory_consumers=memory_consumers,
                fragment_index=fragment_index, fragments=fragments,
            )
            try:
                rows = yield from plan.run(ctx)
            finally:
                grant.release()
        self.queries_executed += 1
        return QueryResult(rows, ctx.metrics, self.sim.now - start)

    # -- DML (single-statement transactions) -----------------------------------

    def update_by_key(
        self, table: Table, key: Any, mutate: Callable[[tuple], tuple]
    ) -> ProcessGenerator:
        """UPDATE ... WHERE key = ?: log, apply, group-commit."""
        record = yield from self.wal.log_update(table.name, key, None, LogRecordKind.UPDATE)
        changed = yield from table.clustered.update_where(key, mutate, lsn=record.lsn)
        yield from self.wal.log_update(table.name, key, None, LogRecordKind.COMMIT)
        return changed

    def insert_row(self, table: Table, row: tuple) -> ProcessGenerator:
        key = table.key_of(row)
        record = yield from self.wal.log_update(table.name, key, row, LogRecordKind.INSERT)
        yield from table.clustered.insert(row, lsn=record.lsn)
        table.stats.row_count += 1
        yield from self.wal.log_update(table.name, key, None, LogRecordKind.COMMIT)

    def delete_by_key(self, table: Table, key: Any) -> ProcessGenerator:
        record = yield from self.wal.log_update(table.name, key, None, LogRecordKind.DELETE)
        removed = yield from table.clustered.delete(key, lsn=record.lsn)
        table.stats.row_count -= removed
        yield from self.wal.log_update(table.name, key, None, LogRecordKind.COMMIT)
        return removed
