"""Engine exception hierarchy."""

__all__ = ["EngineError", "PageNotFound", "GrantTimeout", "PlanError"]


class EngineError(RuntimeError):
    """Base class for engine-level failures."""


class PageNotFound(EngineError):
    """A page id was requested that no file contains."""


class GrantTimeout(EngineError):
    """A query waited too long for workspace memory."""


class PlanError(EngineError):
    """The optimizer/executor was given an inconsistent plan."""
