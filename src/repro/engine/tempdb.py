"""TempDB: spill space for memory-intensive operators (Section 3.2).

Hash joins and external sorts that exceed their memory grant write
*runs* here in 512K extents (64 pages) — the large sequential I/O
pattern the paper's Hash+Sort micro-benchmark stresses.  TempDB can be
placed on the HDD array, the SSD, or (the paper's point) a remote
memory file, just by handing this module a different page store.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field

from ..sim.kernel import ProcessGenerator
from .errors import EngineError
from .files import PageStore
from .page import Page, PageKind

__all__ = ["TempDb", "SpillRun", "EXTENT_PAGES"]

#: Extent size: 64 pages = 512 KB, matching the paper's sequential I/O.
EXTENT_PAGES = 64


@dataclass
class SpillRun:
    """A spilled sequence of rows: ordered extents in TempDB."""

    run_id: int
    extents: list[tuple[int, int]] = field(default_factory=list)  # (slot, pages)
    row_count: int = 0
    rows_per_page: int = 0

    @property
    def page_count(self) -> int:
        return sum(pages for _slot, pages in self.extents)


class TempDb:
    """Extent allocator + run reader/writer over one page store."""

    def __init__(self, store: PageStore):
        if store.capacity_pages is None:
            raise EngineError("TempDB store needs a fixed capacity")
        self.store = store
        extents = store.capacity_pages // EXTENT_PAGES
        if extents < 1:
            raise EngineError("TempDB too small for a single extent")
        # Min-heap: allocation always takes the lowest free extent, so
        # runs written back-to-back stay physically contiguous even
        # after earlier runs were freed and their extents recycled.
        self._free: list[int] = [index * EXTENT_PAGES for index in range(extents)]
        heapq.heapify(self._free)
        self._next_run_id = 1
        self.bytes_spilled = 0
        self.high_water_extents = 0

    @property
    def free_extents(self) -> int:
        return len(self._free)

    def _allocate_extent(self) -> int:
        if not self._free:
            raise EngineError("TempDB is full")
        slot = heapq.heappop(self._free)
        used = (self.store.capacity_pages // EXTENT_PAGES) - len(self._free)
        self.high_water_extents = max(self.high_water_extents, used)
        return slot

    def free_run(self, run: SpillRun) -> None:
        for slot, _pages in run.extents:
            heapq.heappush(self._free, slot)
        run.extents.clear()

    # -- writing -----------------------------------------------------------

    def write_run(self, rows: list, rows_per_page: int) -> ProcessGenerator:
        """Spill ``rows`` as one run; returns the :class:`SpillRun`."""
        if rows_per_page < 1:
            raise EngineError("rows_per_page must be >= 1")
        run = SpillRun(run_id=self._next_run_id, rows_per_page=rows_per_page)
        self._next_run_id += 1
        pages: list[Page] = []
        for start in range(0, len(rows), rows_per_page):
            chunk = rows[start : start + rows_per_page]
            pages.append(Page(page_id=(self.store.file_id, -1), kind=PageKind.TEMP, rows=list(chunk)))
        for start in range(0, len(pages), EXTENT_PAGES):
            extent_pages = pages[start : start + EXTENT_PAGES]
            slot = self._allocate_extent()
            # Re-number the pages with their physical slots.
            for index, page in enumerate(extent_pages):
                page.page_id = (self.store.file_id, slot + index)
            run.extents.append((slot, len(extent_pages)))
        # Engines issue large gathered writes: group contiguous extents
        # into up to 8 MB I/Os so the HDD array streams at bandwidth.
        assigned = 0
        for slot, pages_in_group in self._coalesce(run.extents, limit=16):
            group = pages[assigned : assigned + pages_in_group]
            yield from self.store.write_batch(slot, group)
            assigned += pages_in_group
        run.row_count = len(rows)
        self.bytes_spilled += len(pages) * 8192
        return run

    # -- reading -----------------------------------------------------------

    def _coalesce(self, extents: list[tuple[int, int]], limit: int = 64) -> list[tuple[int, int]]:
        """Merge physically-contiguous extents into larger reads.

        Runs are written with ascending extent allocation, so a run is
        usually one contiguous region; reading it as a few large I/Os
        (instead of one seek per 512K extent) is what lets the RAID-0
        array stream at sequential bandwidth during the merge phase.
        """
        coalesced: list[tuple[int, int]] = []
        for slot, pages in extents:
            contiguous = coalesced and coalesced[-1][0] + coalesced[-1][1] == slot
            within_limit = coalesced and coalesced[-1][1] + pages <= limit * EXTENT_PAGES
            if contiguous and within_limit:
                coalesced[-1] = (coalesced[-1][0], coalesced[-1][1] + pages)
            else:
                coalesced.append((slot, pages))
        return coalesced

    def read_run(self, run: SpillRun) -> ProcessGenerator:
        """Read a whole run back; returns the row list in run order."""
        rows: list = []
        for slot, pages in self._coalesce(run.extents):
            extent = yield from self.store.read_batch(slot, pages)
            for page in extent:
                rows.extend(page.rows)
        return rows

    #: Read-ahead window for streaming merges (extents per refill).
    MERGE_READAHEAD_EXTENTS = 8

    def read_extent(self, run: SpillRun, index: int) -> ProcessGenerator:
        """Read a window of extents of a run (streaming merge path).

        Returns ``(rows, extents_consumed)`` — the merge advances its
        cursor by the number of extents actually read.
        """
        window = run.extents[index : index + self.MERGE_READAHEAD_EXTENTS]
        rows: list = []
        consumed = 0
        for slot, pages in self._coalesce(window):
            extent = yield from self.store.read_batch(slot, pages)
            for page in extent:
                rows.extend(page.rows)
        consumed = len(window)
        return rows, consumed
