"""Database pages.

An 8K page holds a bounded number of fixed-width rows (the width comes
from the table schema, e.g. ~245 bytes for the paper's Customer table,
giving ~33 rows per page).  Pages carry an LSN so recovery can decide
whether a logged change is already reflected.

``PageId`` is ``(file_id, page_no)`` — globally unique across all files
of a database, which is what the buffer pool keys frames by.
"""

from __future__ import annotations

import enum
import pickle
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["PAGE_SIZE", "PAGE_HEADER_BYTES", "PageId", "PageKind", "Page", "rows_per_page"]

PAGE_SIZE = 8192
PAGE_HEADER_BYTES = 96

PageId = tuple[int, int]


class PageKind(enum.Enum):
    HEAP = "heap"
    BTREE_LEAF = "btree_leaf"
    BTREE_INTERNAL = "btree_internal"
    TEMP = "temp"
    LOG = "log"


def rows_per_page(row_bytes: int) -> int:
    """How many rows of the given width fit in one page."""
    if row_bytes <= 0:
        raise ValueError("row width must be positive")
    return max(1, (PAGE_SIZE - PAGE_HEADER_BYTES) // row_bytes)


@dataclass
class Page:
    """One 8K page: header fields plus a row payload."""

    page_id: PageId
    kind: PageKind = PageKind.HEAP
    rows: list[Any] = field(default_factory=list)
    lsn: int = 0
    #: Extra structured payload for index pages (keys/children) etc.
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def file_id(self) -> int:
        return self.page_id[0]

    @property
    def page_no(self) -> int:
        return self.page_id[1]

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def copy(self) -> "Page":
        """Shallow snapshot: new row list / meta dict, shared row tuples.

        Rows are immutable tuples, so sharing them is safe; copying the
        containers isolates the disk image from buffer-pool mutation.
        """
        return Page(
            page_id=self.page_id,
            kind=self.kind,
            rows=list(self.rows),
            lsn=self.lsn,
            meta={k: (list(v) if isinstance(v, list) else v) for k, v in self.meta.items()},
        )

    # -- byte fidelity -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for byte-faithful paths (priming files, tests)."""
        return pickle.dumps(
            (self.page_id, self.kind.value, self.rows, self.lsn, self.meta),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "Page":
        page_id, kind, rows, lsn, meta = pickle.loads(payload)
        return cls(page_id=tuple(page_id), kind=PageKind(kind), rows=rows, lsn=lsn, meta=meta)

    @classmethod
    def build(
        cls, file_id: int, page_no: int, rows: Iterable[Any], kind: PageKind = PageKind.HEAP
    ) -> "Page":
        return cls(page_id=(file_id, page_no), kind=kind, rows=list(rows))
