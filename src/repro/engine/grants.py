"""Workspace memory grants with admission control.

SQL Server's grant policy never hands all server memory to one query —
it caps the per-query grant and queues queries when workspace memory is
exhausted.  This is the artifact behind the paper's Figure 18 result
where *Custom beats Local Memory* on TPC-H: even with 256 GB local RAM,
Q10 and Q18 receive a capped grant, spill to TempDB, and a TempDB in
remote memory beats one on the SSD.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..cluster import Server
from ..sim.kernel import ProcessGenerator

__all__ = ["Grant", "GrantManager"]

#: Fraction of total workspace memory one query may receive.
MAX_GRANT_FRACTION = 0.25


@dataclass
class Grant:
    requested_bytes: int
    granted_bytes: int
    manager: "GrantManager"
    released: bool = False

    @property
    def is_partial(self) -> bool:
        return self.granted_bytes < self.requested_bytes

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.manager._release(self.granted_bytes)


class GrantManager:
    """FIFO admission control over a fixed workspace-memory budget."""

    def __init__(
        self,
        server: Server,
        total_bytes: int,
        max_fraction: float = MAX_GRANT_FRACTION,
    ):
        self.server = server
        self.total_bytes = total_bytes
        self.max_fraction = max_fraction
        self.in_use = 0
        self._waiters: deque = deque()
        self.grants_issued = 0
        self.grants_capped = 0

    @property
    def max_grant_bytes(self) -> int:
        return int(self.total_bytes * self.max_fraction)

    def acquire(self, requested_bytes: int) -> ProcessGenerator:
        """Wait for and return a grant (possibly smaller than requested)."""
        granted = min(requested_bytes, self.max_grant_bytes)
        if granted < requested_bytes:
            self.grants_capped += 1
        if self.in_use + granted > self.total_bytes:
            with self.server.sim.tracer.span("grant.wait", cat="queue", bytes=granted):
                while self.in_use + granted > self.total_bytes:
                    waiter = self.server.sim.event()
                    self._waiters.append((waiter, granted))
                    yield waiter
        self.in_use += granted
        self.grants_issued += 1
        return Grant(requested_bytes=requested_bytes, granted_bytes=granted, manager=self)

    def _release(self, amount: int) -> None:
        self.in_use -= amount
        while self._waiters:
            waiter, needed = self._waiters[0]
            if self.in_use + needed > self.total_bytes:
                break
            self._waiters.popleft()
            waiter.succeed()
