"""repro: a discrete-event-simulation reproduction of
"Accelerating Relational Databases by Leveraging Remote Memory and RDMA"
(Li, Das, Syamala, Narasayya — SIGMOD 2016).

Subpackages
-----------
sim         discrete-event kernel, CPU model, measurement collectors
cluster     servers and clusters
storage     HDD / RAID-0 / SSD / RAM device models
net         Infiniband fabric, RDMA verbs, TCP, SMB / SMB Direct
broker      cluster memory broker: proxies, timed leases, metadata
remotefile  the lightweight file API over leased remote memory (Table 2)
engine      the SMP RDBMS: buffer pool + BPExt, B-trees, WAL, TempDB,
            operators, grants, optimizer, semantic cache, priming, loader
workloads   SQLIO, RangeScan, Hash+Sort, TPC-H/DS/C-like generators
harness     the Table-5 design alternatives and experiment builders
"""

from .cluster import Cluster, Server

__version__ = "1.0.0"
__all__ = ["Cluster", "Server", "__version__"]
