"""ChaosMonkey: continuous seeded fault sampling in virtual time.

Where :class:`~repro.faults.schedule.FaultPlan` replays a fixed,
pre-drawn schedule, the monkey keeps drawing faults from a seeded
stream *while the workload runs* — exponential gaps between faults,
uniform choice of kind and target.  Because every draw comes from one
named RNG stream and the simulation is deterministic, a monkey run is
still bit-reproducible: same seed, same faults, same times.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sim.kernel import Process, ProcessGenerator
from .injectors import FaultEngine
from .schedule import FaultKind, FaultSpec

__all__ = ["ChaosMonkey"]

#: Kinds the monkey samples by default: server crashes are excluded
#: because un-monitored permanent crashes starve the workload; opt in
#: explicitly when the harness wires a restore path.
DEFAULT_KINDS = (
    FaultKind.LINK_DEGRADATION,
    FaultKind.LEASE_EXPIRY_STORM,
    FaultKind.BROKER_RESTART,
)


class ChaosMonkey:
    """Samples and fires faults until told to stop.

    Parameters
    ----------
    engine:
        The :class:`FaultEngine` that owns the injectors.
    rng:
        Seeded stream for *all* monkey draws (gaps, kinds, targets,
        knobs).  Keep it distinct from workload streams so adding the
        monkey does not perturb workload randomness.
    mean_interval_us:
        Mean of the exponential gap between consecutive faults.
    targets:
        Server names eligible for targeted faults (crash/degradation);
        defaults to the engine's memory-side servers (every server with
        a registered proxy, else all servers).
    """

    def __init__(
        self,
        engine: FaultEngine,
        rng: np.random.Generator,
        mean_interval_us: float = 2e6,
        targets: Optional[Sequence[str]] = None,
        kinds: Sequence[FaultKind] = DEFAULT_KINDS,
        mean_duration_us: float = 500_000.0,
    ):
        self.engine = engine
        self.rng = rng
        self.mean_interval_us = mean_interval_us
        if targets is None:
            targets = sorted(engine.proxies) or sorted(engine.servers)
        self.targets = list(targets)
        self.kinds = list(kinds)
        self.mean_duration_us = mean_duration_us
        self.fired: list[FaultSpec] = []
        self._process: Optional[Process] = None
        self._stopped = False

    def start(self) -> Process:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("chaos monkey is already running")
        self._stopped = False
        self._process = self.engine.sim.spawn(self._loop(), name="chaos-monkey")
        return self._process

    def stop(self) -> None:
        """No further faults; an in-progress injection still completes."""
        self._stopped = True

    def _sample(self) -> FaultSpec:
        rng = self.rng
        now = self.engine.sim.now
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        duration = float(rng.exponential(self.mean_duration_us))
        if kind is FaultKind.MEMORY_SERVER_CRASH:
            target = self.targets[int(rng.integers(len(self.targets)))]
            return FaultSpec(now, kind, target, duration)
        if kind is FaultKind.LINK_DEGRADATION:
            target = self.targets[int(rng.integers(len(self.targets)))]
            return FaultSpec(
                now,
                kind,
                target,
                duration,
                {
                    "latency_multiplier": 1.0 + float(rng.uniform(1.0, 9.0)),
                    "drop_probability": float(rng.uniform(0.0, 0.3)),
                },
            )
        if kind is FaultKind.LEASE_EXPIRY_STORM:
            return FaultSpec(now, kind, "", 0.0, {"fraction": float(rng.uniform(0.1, 1.0))})
        return FaultSpec(now, kind, "", duration, {"replay": True})

    def _loop(self) -> ProcessGenerator:
        sim = self.engine.sim
        while not self._stopped:
            yield sim.timeout(float(self.rng.exponential(self.mean_interval_us)))
            if self._stopped:
                break
            spec = self._sample()
            self.fired.append(spec)
            yield from self.engine.fire(spec)
