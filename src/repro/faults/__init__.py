"""repro.faults — deterministic fault injection and recovery.

Scheduled, seeded, virtual-time faults driven through the public fault
hooks each layer exposes (``Server.fail``, ``NicPort.degrade``,
``MemoryBroker.fail_provider`` …), plus the observers that measure how
the system detects and recovers.  See DESIGN.md ("Fault injection") for
the architecture and determinism contract.
"""

from .chaos import ChaosMonkey
from .injectors import (
    BrokerRestartInjector,
    FaultEngine,
    Injector,
    LeaseExpiryStormInjector,
    LinkDegradationInjector,
    MemoryServerCrashInjector,
)
from .recovery import FaultRecord, RecoveryMonitor
from .schedule import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "BrokerRestartInjector",
    "ChaosMonkey",
    "FaultEngine",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "Injector",
    "LeaseExpiryStormInjector",
    "LinkDegradationInjector",
    "MemoryServerCrashInjector",
    "RecoveryMonitor",
]
