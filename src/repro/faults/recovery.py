"""Recovery observation: per-fault detection and recovery metrics.

The :class:`RecoveryMonitor` plugs into the :class:`FaultEngine` (as its
``monitor``) and into the buffer-pool extension's ``fault_listeners``
hook, and records one :class:`FaultRecord` per injected fault:

* ``detected_at_us`` — first time the workload *observed* the fault
  (an access hit a dead remote slot and re-faulted from the base file);
* ``pages_lost`` — parked pages invalidated at injection;
* ``refaults`` — accesses that fell back to the base file afterwards;
* ``restored_at_us`` — when the injected condition was healed;
* ``recovered_at_us`` — when observed throughput climbed back above a
  caller-supplied threshold (see :meth:`watch_recovery`).

All times are virtual microseconds; a seeded replay produces an
identical set of records (:meth:`snapshot` returns plain comparable
dicts for exactly that assertion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..harness.report import format_table
from ..sim.kernel import ProcessGenerator, Simulator
from .schedule import FaultSpec

__all__ = ["FaultRecord", "RecoveryMonitor"]


@dataclass
class FaultRecord:
    """Everything observed about one injected fault."""

    spec: FaultSpec
    injected_at_us: float
    detected_at_us: Optional[float] = None
    restored_at_us: Optional[float] = None
    recovered_at_us: Optional[float] = None
    pages_lost: int = 0
    refaults: int = 0
    inject_details: dict[str, Any] = field(default_factory=dict)
    restore_details: dict[str, Any] = field(default_factory=dict)
    #: Circuit-breaker transitions observed while this fault was the
    #: most recent one: ``(at_us, provider, old_state, new_state)``.
    breaker_transitions: list[tuple[float, str, str, str]] = field(default_factory=list)
    #: Hedged reads won by the backup medium during this fault.
    hedge_wins: int = 0
    #: In-flight transactions doomed by this fault's media loss (see
    #: :meth:`RecoveryMonitor.track_transactions`).
    txns_doomed: int = 0

    @property
    def detection_latency_us(self) -> Optional[float]:
        if self.detected_at_us is None:
            return None
        return self.detected_at_us - self.injected_at_us

    @property
    def recovery_latency_us(self) -> Optional[float]:
        """Time from restoration to recovered throughput."""
        if self.recovered_at_us is None or self.restored_at_us is None:
            return None
        return self.recovered_at_us - self.restored_at_us


class RecoveryMonitor:
    """Collects :class:`FaultRecord`s; the FaultEngine's ``monitor``."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.records: list[FaultRecord] = []
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._txn_managers: list[Any] = []
        self._dooms_at_inject = 0

    # -- FaultEngine callbacks --------------------------------------------

    def fault_injected(self, spec: FaultSpec) -> None:
        self._dooms_at_inject = self._txn_dooms()
        self.records.append(FaultRecord(spec=spec, injected_at_us=self.sim.now))

    def fault_active(self, spec: FaultSpec, details: dict[str, Any]) -> None:
        record = self._record_for(spec)
        if record is not None:
            record.inject_details = dict(details)
            record.pages_lost = int(details.get("pages_lost", 0))
            record.txns_doomed = self._txn_dooms() - self._dooms_at_inject

    def fault_restored(self, spec: FaultSpec, details: dict[str, Any]) -> None:
        record = self._record_for(spec)
        if record is not None:
            record.restored_at_us = self.sim.now
            record.restore_details = dict(details)

    def _record_for(self, spec: FaultSpec) -> Optional[FaultRecord]:
        for record in reversed(self.records):
            if record.spec is spec:
                return record
        return None

    # -- extension hook ----------------------------------------------------

    def track_extension(self, extension: Any) -> None:
        """Subscribe to BPExt failure events for detection/re-fault stats."""
        extension.fault_listeners.append(self._on_page_fault)

    def _on_page_fault(self, page_id: Any) -> None:
        if not self.records:
            return
        record = self.records[-1]
        if record.detected_at_us is None:
            record.detected_at_us = self.sim.now
        record.refaults += 1

    # -- transaction-layer hook --------------------------------------------

    def track_transactions(self, manager: Any) -> None:
        """Attribute transaction dooms to fault records.

        Dooming is synchronous with injection (media loss fires the
        extension's ``loss_listeners`` inline), so the delta in the
        manager's ``dooms`` counter between injection and activation is
        exactly the set of transactions this fault killed.
        """
        self._txn_managers.append(manager)

    def _txn_dooms(self) -> int:
        return sum(int(manager.dooms) for manager in self._txn_managers)

    # -- reliability-layer hook --------------------------------------------

    def track_reliability(self, layer: Any) -> None:
        """Correlate breaker transitions and hedge wins with faults.

        Subscribes to the layer's breaker-transition and hedge-win
        streams; each observation is attributed to the most recent fault
        record, so a replayed experiment reproduces the exact same
        attribution.
        """
        layer.breakers.transition_listeners.append(self._on_breaker_transition)
        layer.hedge.win_listeners.append(self._on_hedge_win)

    def _on_breaker_transition(
        self, provider: str, old: Any, new: Any, at_us: float
    ) -> None:
        if not self.records:
            return
        record = self.records[-1]
        record.breaker_transitions.append((at_us, provider, old.value, new.value))
        if record.detected_at_us is None and new.value == "open":
            # Tripping a breaker *is* detecting the fault.
            record.detected_at_us = self.sim.now

    def _on_hedge_win(self) -> None:
        if self.records:
            self.records[-1].hedge_wins += 1

    # -- throughput watching ----------------------------------------------

    def watch(
        self, counter: Callable[[], float], interval_us: float, label: str
    ) -> None:
        """Sample a cumulative counter forever; stored as a (t, rate) series.

        The rate is per second of virtual time over the last interval.
        """
        self.series[label] = []
        self.sim.spawn(self._watcher(counter, interval_us, label), name=f"watch:{label}")

    def _watcher(
        self, counter: Callable[[], float], interval_us: float, label: str
    ) -> ProcessGenerator:
        previous = float(counter())
        while True:
            yield self.sim.timeout(interval_us)
            current = float(counter())
            rate = (current - previous) / (interval_us / 1e6)
            self.series[label].append((self.sim.now, rate))
            previous = current

    def watch_recovery(
        self,
        counter: Callable[[], float],
        threshold_per_s: float,
        interval_us: float = 50_000.0,
        label: str = "throughput",
    ) -> None:
        """Like :meth:`watch`, and additionally stamps ``recovered_at_us``.

        After a fault has been restored, the first sampling interval
        whose rate reaches ``threshold_per_s`` marks the fault's record
        as recovered.
        """
        self.series[label] = []
        self.sim.spawn(
            self._recovery_watcher(counter, threshold_per_s, interval_us, label),
            name=f"watch:{label}",
        )

    def _recovery_watcher(
        self,
        counter: Callable[[], float],
        threshold_per_s: float,
        interval_us: float,
        label: str,
    ) -> ProcessGenerator:
        previous = float(counter())
        while True:
            yield self.sim.timeout(interval_us)
            current = float(counter())
            rate = (current - previous) / (interval_us / 1e6)
            self.series[label].append((self.sim.now, rate))
            previous = current
            if rate >= threshold_per_s:
                for record in self.records:
                    if (
                        record.recovered_at_us is None
                        and (record.restored_at_us is not None or record.spec.duration_us == 0)
                    ):
                        record.recovered_at_us = self.sim.now

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Plain comparable dicts — the determinism-assertion payload.

        Deliberately excludes anything derived from process-global
        counters (lease ids, MR ids survive across runs in one
        interpreter) so two seeded runs compare bit-identical.
        """
        return [
            {
                "kind": record.spec.kind.value,
                "target": record.spec.target,
                "injected_at_us": record.injected_at_us,
                "detected_at_us": record.detected_at_us,
                "restored_at_us": record.restored_at_us,
                "recovered_at_us": record.recovered_at_us,
                "pages_lost": record.pages_lost,
                "refaults": record.refaults,
                "inject_details": dict(record.inject_details),
                "restore_details": dict(record.restore_details),
                "breaker_transitions": list(record.breaker_transitions),
                "hedge_wins": record.hedge_wins,
                "txns_doomed": record.txns_doomed,
            }
            for record in self.records
        ]

    def report(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value / 1e3:.2f}"

        rows = [
            [
                record.spec.kind.value,
                record.spec.target or "-",
                f"{record.injected_at_us / 1e3:.2f}",
                fmt(record.detection_latency_us),
                str(record.pages_lost),
                str(record.refaults),
                fmt(record.restored_at_us),
                fmt(record.recovery_latency_us),
            ]
            for record in self.records
        ]
        return format_table(
            [
                "fault", "target", "t_inject (ms)", "detect lat (ms)",
                "pages lost", "re-faults", "t_restore (ms)", "recover lat (ms)",
            ],
            rows,
            title="fault injection / recovery",
        )
