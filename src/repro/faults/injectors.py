"""Fault injectors: turn :class:`FaultSpec`s into layer-hook calls.

Each injector touches the system only through the public fault hooks
added for this subsystem — ``Server.fail()/restore()``,
``NicPort.degrade()/restore_link()``, ``MemoryProxy.crash()``,
``MemoryBroker.fail_provider()/force_expire()/fail()/recover()`` and
``BufferPoolExtension.on_fault()`` — never through another layer's
private state.  The :class:`FaultEngine` schedules specs in virtual
time, dispatches them to the right injector and reports every event to
an optional monitor (see :mod:`repro.faults.recovery`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..sim.kernel import Process, ProcessGenerator, Simulator
from .schedule import FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultEngine",
    "Injector",
    "MemoryServerCrashInjector",
    "LinkDegradationInjector",
    "LeaseExpiryStormInjector",
    "BrokerRestartInjector",
]


class Injector:
    """Base class: ``inject``/``restore`` are ``yield from``-able."""

    kind: FaultKind

    def __init__(self, engine: "FaultEngine"):
        self.engine = engine

    def inject(self, spec: FaultSpec) -> ProcessGenerator:
        raise NotImplementedError
        yield  # pragma: no cover

    def restore(self, spec: FaultSpec) -> ProcessGenerator:
        raise NotImplementedError
        yield  # pragma: no cover


class MemoryServerCrashInjector(Injector):
    """Kill a memory server; optionally resurrect it later.

    Injection order matters and mirrors what a real crash looks like
    from the DB server:

    1. ``Server.fail()`` — NIC goes dark, every tracked in-flight RDMA
       transfer is interrupted mid-wire;
    2. ``MemoryProxy.crash()`` — the pinned MRs evaporate;
    3. ``MemoryBroker.fail_provider()`` — leases on the provider are
       revoked (holders are notified), its spare regions forgotten;
    4. ``BufferPoolExtension.on_fault(provider)`` — parked clean pages
       on the dead server become invalid and will re-fault from the
       base file.

    Restoration brings the server back up and re-offers its memory to
    the broker; re-acquiring leases for the BPExt is left to the
    engine's ``on_provider_restored`` callback (benchmarks wire this to
    :func:`repro.harness.rebuild_extension`).
    """

    kind = FaultKind.MEMORY_SERVER_CRASH

    def inject(self, spec: FaultSpec) -> ProcessGenerator:
        engine = self.engine
        server = engine.server(spec.target)
        server.fail()
        proxy = engine.proxies.get(spec.target)
        if proxy is not None:
            # Remember how much was brokered so restoration re-offers the
            # same amount instead of pinning the whole (huge) server.
            spec.params.setdefault("offer_bytes", proxy.offered_bytes)
            proxy.crash()
        revoked = []
        if engine.broker is not None:
            revoked = yield from engine.broker.fail_provider(spec.target)
        lost_pages = []
        if engine.extension is not None:
            lost_pages = engine.extension.on_fault(provider=spec.target)
        return {"revoked_leases": len(revoked), "pages_lost": len(lost_pages)}

    def restore(self, spec: FaultSpec) -> ProcessGenerator:
        engine = self.engine
        server = engine.server(spec.target)
        server.restore()
        proxy = engine.proxies.get(spec.target)
        regions = []
        if proxy is not None:
            regions = yield from proxy.offer_available(
                limit_bytes=spec.params.get("offer_bytes")
            )
        if engine.on_provider_restored is not None:
            result = engine.on_provider_restored(spec.target)
            if result is not None:  # allow plain callables or generators
                yield from result
        return {"regions_reoffered": len(regions)}


class LinkDegradationInjector(Injector):
    """Make a server's links slow and lossy for a while.

    Applies a latency multiplier plus seeded packet loss (paid as
    bounded retransmissions) to the target's RDMA NIC, and the latency
    multiplier to its TCP endpoint if it has one.
    """

    kind = FaultKind.LINK_DEGRADATION

    def inject(self, spec: FaultSpec) -> ProcessGenerator:
        engine = self.engine
        server = engine.server(spec.target)
        multiplier = float(spec.params.get("latency_multiplier", 1.0))
        drop = float(spec.params.get("drop_probability", 0.0))
        server.nic.degrade(
            latency_multiplier=multiplier,
            drop_probability=drop,
            rng=engine.rng if drop > 0 else None,
        )
        if server.tcp is not None:
            server.tcp.degrade(latency_multiplier=multiplier)
        return {"latency_multiplier": multiplier, "drop_probability": drop}
        yield  # pragma: no cover -- instantaneous, but keeps the generator shape

    def restore(self, spec: FaultSpec) -> ProcessGenerator:
        server = self.engine.server(spec.target)
        server.nic.restore_link()
        if server.tcp is not None:
            server.tcp.restore_link()
        return {}
        yield  # pragma: no cover


class LeaseExpiryStormInjector(Injector):
    """Force-expire a seeded random subset of active leases at once.

    The subset is drawn from the engine's seeded stream over the
    broker's id-ordered active-lease list, so the same plan and seed
    expire the same leases every run.  One-shot: there is nothing to
    restore — holders re-acquire through their normal path.
    """

    kind = FaultKind.LEASE_EXPIRY_STORM

    def inject(self, spec: FaultSpec) -> ProcessGenerator:
        broker = self.engine.broker
        if broker is None:
            return {"expired_leases": 0}
        provider = spec.target or None
        leases = broker.leases_for(provider=provider)
        fraction = float(spec.params.get("fraction", 1.0))
        count = min(len(leases), max(1, round(fraction * len(leases)))) if leases else 0
        if count == 0:
            return {"expired_leases": 0}
        indices = sorted(
            int(i) for i in self.engine.rng.choice(len(leases), size=count, replace=False)
        )
        expired = broker.force_expire([leases[i] for i in indices])
        return {"expired_leases": len(expired)}
        yield  # pragma: no cover

    def restore(self, spec: FaultSpec) -> ProcessGenerator:
        return {}
        yield  # pragma: no cover


class BrokerRestartInjector(Injector):
    """Crash the broker; on restore, re-elect and replay metadata.

    With ``replay=True`` (default) active leases survive the restart via
    the replicated metadata store (paper Section 4.2); with
    ``replay=False`` the state is lost and every lease is revoked.
    """

    kind = FaultKind.BROKER_RESTART

    def inject(self, spec: FaultSpec) -> ProcessGenerator:
        if self.engine.broker is not None:
            self.engine.broker.fail()
        return {}
        yield  # pragma: no cover

    def restore(self, spec: FaultSpec) -> ProcessGenerator:
        broker = self.engine.broker
        if broker is None:
            return {}
        survivors = yield from broker.recover(replay=bool(spec.params.get("replay", True)))
        return {"surviving_leases": len(survivors)}


class FaultEngine:
    """Schedules a :class:`FaultPlan` against a live simulation.

    Holds references to the *public* fault surface of each layer and a
    seeded RNG for the draws injectors need at fire time (storm subset
    selection, packet-loss draws).  Construct directly from components
    or via :meth:`for_setup` from a harness ``DbSetup``.
    """

    def __init__(
        self,
        sim: Simulator,
        servers: dict[str, Any],
        broker: Any = None,
        proxies: Optional[dict[str, Any]] = None,
        extension: Any = None,
        monitor: Any = None,
        rng: Optional[np.random.Generator] = None,
        on_provider_restored: Optional[Callable[[str], Any]] = None,
    ):
        self.sim = sim
        self.servers = servers
        self.broker = broker
        self.proxies = proxies or {}
        self.extension = extension
        self.monitor = monitor
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Called with the provider name after a crashed server is
        #: restored; may return a generator to run in sim time (e.g.
        #: ``lambda _: rebuild_extension(setup)``).
        self.on_provider_restored = on_provider_restored
        self.injectors: dict[FaultKind, Injector] = {
            cls.kind: cls(self)
            for cls in (
                MemoryServerCrashInjector,
                LinkDegradationInjector,
                LeaseExpiryStormInjector,
                BrokerRestartInjector,
            )
        }
        self.faults_fired = 0

    @classmethod
    def for_setup(
        cls,
        setup: Any,
        monitor: Any = None,
        rng: Optional[np.random.Generator] = None,
        on_provider_restored: Optional[Callable[[str], Any]] = None,
    ) -> "FaultEngine":
        """Build an engine from a harness ``DbSetup`` (duck-typed)."""
        servers = dict(setup.cluster.servers)
        extension = setup.database.pool.extension if setup.database is not None else None
        if rng is None:
            rng = setup.cluster.rng.stream("faults")
        return cls(
            sim=setup.sim,
            servers=servers,
            broker=setup.broker,
            proxies=getattr(setup, "proxies", {}),
            extension=extension,
            monitor=monitor,
            rng=rng,
            on_provider_restored=on_provider_restored,
        )

    def server(self, name: str) -> Any:
        try:
            return self.servers[name]
        except KeyError:
            raise KeyError(
                f"fault target {name!r} is not a known server "
                f"(have {sorted(self.servers)})"
            ) from None

    # -- execution ---------------------------------------------------------

    def fire(self, spec: FaultSpec) -> ProcessGenerator:
        """Inject one fault now; schedules its restoration if timed."""
        injector = self.injectors[spec.kind]
        if self.monitor is not None:
            self.monitor.fault_injected(spec)
        details = yield from injector.inject(spec)
        self.faults_fired += 1
        if self.monitor is not None:
            self.monitor.fault_active(spec, details or {})
        if spec.restore_at_us is not None:
            self.sim.spawn(self._restore_later(spec), name=f"restore:{spec.kind.value}")
        return details

    def _restore_later(self, spec: FaultSpec) -> ProcessGenerator:
        yield self.sim.timeout(spec.duration_us)
        details = yield from self.injectors[spec.kind].restore(spec)
        if self.monitor is not None:
            self.monitor.fault_restored(spec, details or {})

    def run_plan(self, plan: FaultPlan) -> Process:
        """Spawn a driver process that replays ``plan`` in virtual time."""
        return self.sim.spawn(self._driver(plan), name="fault-plan")

    def _driver(self, plan: FaultPlan) -> ProcessGenerator:
        for spec in plan.sorted_specs():
            delay = spec.at_us - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            yield from self.fire(spec)
