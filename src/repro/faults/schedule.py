"""Declarative, seeded, virtual-time fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — *when*
(virtual microseconds), *what* (a :class:`FaultKind`), *where* (a target
server/link) and *for how long*.  Plans are pure data: the same plan,
replayed against the same seeded simulation, produces bit-identical
fault times and recovery statistics.  Randomized plans ("storms") are
generated *ahead of time* from a seeded stream, so randomness lives in
plan construction, never in injection.

Determinism rules (see DESIGN.md):

* all times are virtual microseconds — no wall clock anywhere;
* every random draw comes from a named
  :class:`~repro.sim.RngRegistry` stream derived from the experiment
  seed;
* specs are replayed in ``(at_us, sequence)`` order, so ties fire in
  declaration order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(enum.Enum):
    """The fault classes the injectors know how to cause."""

    #: A memory server dies: leases revoked, MRs lost, NIC dark,
    #: in-flight RDMA transfers interrupted.
    MEMORY_SERVER_CRASH = "memory-server-crash"
    #: Transient NIC/link degradation: latency multiplier and seeded
    #: packet loss paid as retransmissions on the target's NIC and TCP.
    LINK_DEGRADATION = "link-degradation"
    #: A fraction of active leases is force-expired at once.
    LEASE_EXPIRY_STORM = "lease-expiry-storm"
    #: The broker process restarts; leases survive via metadata replay
    #: (``replay=True``) or are terminated (``replay=False``).
    BROKER_RESTART = "broker-restart"


@dataclass
class FaultSpec:
    """One scheduled fault occurrence."""

    #: Virtual time at which the fault is injected.
    at_us: float
    kind: FaultKind
    #: Server name for crash/degradation; provider name (or "") for
    #: storms; ignored for broker restarts.
    target: str = ""
    #: How long the fault lasts; 0 means instantaneous (storms) or
    #: permanent (crashes that are never restored).
    duration_us: float = 0.0
    #: Kind-specific knobs (latency_multiplier, drop_probability,
    #: fraction, replay, ...).
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_us}")
        if self.duration_us < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration_us}")
        if not isinstance(self.kind, FaultKind):
            self.kind = FaultKind(self.kind)

    @property
    def restore_at_us(self) -> float | None:
        """When the fault heals, or ``None`` for one-shot/permanent faults."""
        if self.duration_us <= 0:
            return None
        return self.at_us + self.duration_us

    def describe(self) -> str:
        extra = f" {self.params}" if self.params else ""
        window = f" for {self.duration_us:g}us" if self.duration_us > 0 else ""
        return f"[{self.at_us:g}us] {self.kind.value} target={self.target!r}{window}{extra}"


@dataclass
class FaultPlan:
    """An ordered schedule of faults, replayable bit-for-bit."""

    specs: list[FaultSpec] = field(default_factory=list)
    #: Recorded for provenance; randomized plans embed the seed that
    #: generated them so a report names its own reproduction recipe.
    seed: int | None = None

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.sorted_specs())

    def __len__(self) -> int:
        return len(self.specs)

    def sorted_specs(self) -> list[FaultSpec]:
        """Specs in firing order: by time, declaration order on ties."""
        return [
            spec
            for _key, _index, spec in sorted(
                (spec.at_us, index, spec) for index, spec in enumerate(self.specs)
            )
        ]

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    # -- convenience builders ---------------------------------------------

    def crash(self, at_us: float, server: str, duration_us: float = 0.0) -> "FaultPlan":
        """Crash ``server``; restore it after ``duration_us`` (0 = never)."""
        return self.add(
            FaultSpec(at_us, FaultKind.MEMORY_SERVER_CRASH, server, duration_us)
        )

    def degrade_link(
        self,
        at_us: float,
        server: str,
        duration_us: float,
        latency_multiplier: float = 1.0,
        drop_probability: float = 0.0,
    ) -> "FaultPlan":
        return self.add(
            FaultSpec(
                at_us,
                FaultKind.LINK_DEGRADATION,
                server,
                duration_us,
                {
                    "latency_multiplier": latency_multiplier,
                    "drop_probability": drop_probability,
                },
            )
        )

    def lease_storm(
        self, at_us: float, fraction: float = 1.0, provider: str = ""
    ) -> "FaultPlan":
        """Force-expire ``fraction`` of active leases (optionally of one provider)."""
        return self.add(
            FaultSpec(
                at_us, FaultKind.LEASE_EXPIRY_STORM, provider, 0.0, {"fraction": fraction}
            )
        )

    def broker_restart(
        self, at_us: float, duration_us: float, replay: bool = True
    ) -> "FaultPlan":
        return self.add(
            FaultSpec(at_us, FaultKind.BROKER_RESTART, "", duration_us, {"replay": replay})
        )

    # -- seeded random storms ----------------------------------------------

    @classmethod
    def random_storm(
        cls,
        rng: np.random.Generator,
        horizon_us: float,
        mean_interval_us: float,
        targets: Sequence[str],
        kinds: Iterable[FaultKind] = (
            FaultKind.MEMORY_SERVER_CRASH,
            FaultKind.LINK_DEGRADATION,
            FaultKind.LEASE_EXPIRY_STORM,
        ),
        mean_duration_us: float = 1e6,
        seed: int | None = None,
    ) -> "FaultPlan":
        """Sample a Poisson fault storm over ``[0, horizon_us)``.

        All draws happen here, eagerly, from the caller's seeded stream:
        the returned plan is plain data and replays identically however
        often it is executed.
        """
        if not targets:
            raise ValueError("random_storm needs at least one target server")
        kinds = list(kinds)
        specs: list[FaultSpec] = []
        clock = 0.0
        while True:
            clock += float(rng.exponential(mean_interval_us))
            if clock >= horizon_us:
                break
            kind = kinds[int(rng.integers(len(kinds)))]
            target = str(targets[int(rng.integers(len(targets)))])
            duration = float(rng.exponential(mean_duration_us))
            if kind is FaultKind.MEMORY_SERVER_CRASH:
                specs.append(FaultSpec(clock, kind, target, duration))
            elif kind is FaultKind.LINK_DEGRADATION:
                specs.append(
                    FaultSpec(
                        clock,
                        kind,
                        target,
                        duration,
                        {
                            "latency_multiplier": 1.0 + float(rng.uniform(1.0, 9.0)),
                            "drop_probability": float(rng.uniform(0.0, 0.3)),
                        },
                    )
                )
            elif kind is FaultKind.LEASE_EXPIRY_STORM:
                specs.append(
                    FaultSpec(
                        clock, kind, "", 0.0, {"fraction": float(rng.uniform(0.1, 1.0))}
                    )
                )
            else:  # BROKER_RESTART
                specs.append(FaultSpec(clock, kind, "", duration, {"replay": True}))
        return cls(specs=specs, seed=seed)

    def describe(self) -> str:
        lines = [f"FaultPlan ({len(self.specs)} faults, seed={self.seed})"]
        lines.extend("  " + spec.describe() for spec in self.sorted_specs())
        return "\n".join(lines)
