"""Exchange operators: RDMA shuffle / broadcast / gather between shards.

The data path follows the staging-buffer discipline the paper uses for
pages (Section 4.1.4), applied to tuple batches:

* At bootstrap every receiver **pre-registers** one staging
  :class:`~repro.net.rdma.MemoryRegion` per incoming channel —
  ``credits`` slots of ``slot_bytes`` each — because registering
  memory per transfer would cost as much as the transfer itself.
* **Credit-based flow control**: a sender must hold a credit (one
  staging slot) before it may RDMA-write a batch; the receiver returns
  the credit with a small control message once its drain process has
  copied the batch out of the staging slot into an unbounded local
  inbox.  Credits therefore bound *staging occupancy*, never the
  merge order — which is what makes the protocol deadlock-free under
  any interleaving: drains always run, so every credit comes back.
* **Deterministic merge**: receivers consume exactly one batch per
  still-active sender per rotation, in sender-index order, blocking
  until that sender's batch arrives.  Arrival *timing* (and therefore
  link speed, degradation, credit stalls) cannot reorder rows.

CPU costs are charged via the cost model
(:data:`~repro.engine.costs.PER_ROW_SERIALIZE_CPU_US` on the sender,
``PER_ROW_DESERIALIZE_CPU_US`` on the receiver's drain,
``EXCHANGE_BATCH_CPU_US`` per batch on each side); wire time is the
NICs' real transfer path, so exchanges contend with page traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..cluster import Server
from ..engine.costs import (
    EXCHANGE_BATCH_CPU_US,
    PER_ROW_DESERIALIZE_CPU_US,
    PER_ROW_HASH_PROBE_CPU_US,
    PER_ROW_SCAN_CPU_US,
    PER_ROW_SERIALIZE_CPU_US,
)
from ..engine.operators import ExecContext, Operator
from ..net import QueuePair, RdmaError, RdmaRegistrar
from ..net.fabric import NetworkDown
from ..sim.kernel import Interrupt, ProcessGenerator, Store

__all__ = [
    "ExchangeError",
    "ExchangeStats",
    "ExchangeRuntime",
    "ShuffleExchange",
    "BroadcastExchange",
    "GatherExchange",
    "EOS_BYTES",
]

#: Wire size charged for an end-of-stream control batch.
EOS_BYTES = 64

#: Poison pill a broken channel's drain injects into its inboxes so
#: merges fail deterministically instead of waiting forever.
_POISON = object()


class ExchangeError(RuntimeError):
    """A channel broke (RDMA failure, endpoint down) mid-exchange."""


@dataclass
class ExchangeStats:
    """Cumulative per-exchange-id counters (across all fragments)."""

    exchange_id: str
    rows: int = 0
    bytes: int = 0
    batches: int = 0
    credit_stalls_us: float = 0.0


@dataclass
class _Channel:
    """One direction of the fabric: sender server -> receiver server."""

    sender: Server
    receiver: Server
    qp: QueuePair
    region: Any  # staging MemoryRegion on the receiver
    credits: Store  # free staging-slot offsets, granted to the sender
    landed: Store  # written slot offsets, consumed by the drain
    broken: Optional[str] = None


class ExchangeRuntime:
    """The exchange fabric for one cluster of DB servers.

    Owns the all-pairs channels, their staging registrations, the
    always-running drain processes and the per-exchange inboxes; shared
    by every exchange operator in every plan on the cluster.
    """

    def __init__(self, servers: list[Server], credits: int = 4, slot_bytes: int = 64 * 1024):
        if credits < 1:
            raise ValueError("need at least one credit per channel")
        self.servers = list(servers)
        self.credits = credits
        self.slot_bytes = slot_bytes
        self.sim = servers[0].sim
        self.registrars = [RdmaRegistrar(server) for server in self.servers]
        self.channels: dict[tuple[int, int], _Channel] = {}
        self.stats: dict[str, ExchangeStats] = {}
        self._inboxes: dict[tuple[str, int, int], Store] = {}

    def bootstrap(self) -> ProcessGenerator:
        """Register staging buffers, connect QPs, start the drains."""
        for dst in range(len(self.servers)):
            for src in range(len(self.servers)):
                if src == dst:
                    continue
                region = yield from self.registrars[dst].register(
                    self.credits * self.slot_bytes
                )
                channel = _Channel(
                    sender=self.servers[src],
                    receiver=self.servers[dst],
                    qp=QueuePair(self.servers[src], self.servers[dst]),
                    region=region,
                    credits=Store(self.sim, name=f"credits.{src}->{dst}"),
                    landed=Store(self.sim, name=f"landed.{src}->{dst}"),
                )
                for slot in range(self.credits):
                    channel.credits.put(slot * self.slot_bytes)
                self.channels[(src, dst)] = channel
                self.sim.spawn(self._drain(channel, src, dst))

    def stat(self, exchange_id: str) -> ExchangeStats:
        if exchange_id not in self.stats:
            self.stats[exchange_id] = ExchangeStats(exchange_id)
        return self.stats[exchange_id]

    def inbox(self, exchange_id: str, receiver: int, sender: int) -> Store:
        key = (exchange_id, receiver, sender)
        if key not in self._inboxes:
            self._inboxes[key] = Store(
                self.sim, name=f"inbox.{exchange_id}.{sender}->{receiver}"
            )
        return self._inboxes[key]

    # -- data path --------------------------------------------------------

    def send(
        self,
        ctx: ExecContext,
        exchange_id: str,
        dest: int,
        payload: Optional[list],
        nbytes: int,
    ) -> ProcessGenerator:
        """Ship one batch (``None`` = end of stream) to fragment ``dest``."""
        stats = self.stat(exchange_id)
        nrows = len(payload) if payload is not None else 0
        source = ctx.fragment_index
        if dest == source:
            # Local handoff: no wire, no serialization — one batch touch.
            yield from ctx.cpu.compute(EXCHANGE_BATCH_CPU_US)
            self.inbox(exchange_id, dest, source).put(payload)
            stats.batches += 1
            stats.rows += nrows
            ctx.record_exchange(nrows, 0)
            return
        channel = self.channels[(source, dest)]
        if self.sim.tracer.enabled:
            with self.sim.tracer.span(
                "dist.exchange.send", cat="dist",
                exchange=exchange_id, dest=self.servers[dest].name,
                rows=nrows, size=nbytes,
            ):
                yield from self._send_remote(ctx, channel, exchange_id, payload, nrows, nbytes)
        else:
            yield from self._send_remote(ctx, channel, exchange_id, payload, nrows, nbytes)
        stats.batches += 1
        stats.rows += nrows
        stats.bytes += nbytes
        ctx.record_exchange(nrows, nbytes)

    def _send_remote(
        self,
        ctx: ExecContext,
        channel: _Channel,
        exchange_id: str,
        payload: Optional[list],
        nrows: int,
        nbytes: int,
    ) -> ProcessGenerator:
        if channel.broken:
            raise ExchangeError(
                f"exchange {exchange_id}: channel to {channel.receiver.name}"
                f" is broken ({channel.broken})"
            )
        stats = self.stat(exchange_id)
        stall_from = self.sim.now
        slot = yield channel.credits.get()
        stalled = self.sim.now - stall_from
        if stalled > 0:
            stats.credit_stalls_us += stalled
            ctx.metrics.credit_stalls_us += stalled
        yield from ctx.cpu.compute(
            EXCHANGE_BATCH_CPU_US + nrows * PER_ROW_SERIALIZE_CPU_US
        )
        if channel.broken:
            raise ExchangeError(
                f"exchange {exchange_id}: channel to {channel.receiver.name}"
                f" broke while serializing ({channel.broken})"
            )
        yield from channel.qp.write(
            channel.region, slot, size=max(1, nbytes),
            obj=(ctx.fragment_index, exchange_id, payload, nrows),
        )
        channel.landed.put(slot)

    def _drain(self, channel: _Channel, src: int, dst: int) -> ProcessGenerator:
        """Perpetual receiver-side process: staging slot -> inbox.

        Returns the credit as soon as the batch leaves the staging
        buffer — *not* when the merge consumes it — so credits bound
        RDMA staging occupancy only and the strict round-robin merge
        can never starve a sender into deadlock.
        """
        try:
            while True:
                slot = yield channel.landed.get()
                sender, exchange_id, payload, nrows = channel.region.get_object(slot)
                channel.region.drop_object(slot)
                yield from channel.receiver.cpu.compute(
                    EXCHANGE_BATCH_CPU_US + nrows * PER_ROW_DESERIALIZE_CPU_US
                )
                self.inbox(exchange_id, dst, sender).put(payload)
                # Credit-return control message rides the reverse path.
                yield from channel.receiver.nic.send_control(channel.sender.nic)
                channel.credits.put(slot)
        except (RdmaError, NetworkDown, Interrupt) as exc:
            channel.broken = str(exc) or type(exc).__name__
            for (exchange_id, receiver, sender), box in self._inboxes.items():
                if receiver == dst and sender == src:
                    box.put(_POISON)

    def receive_rows(self, ctx: ExecContext, exchange_id: str) -> ProcessGenerator:
        """Strict round-robin merge over all senders; returns the rows.

        One batch per still-active sender per rotation, in sender-index
        order.  The order is a pure function of what each sender sent —
        never of arrival timing — which is what the determinism tests
        pin down.
        """
        receiver = ctx.fragment_index
        active = list(range(ctx.fragments))
        rows: list = []
        while active:
            finished = []
            for sender in active:
                batch = yield self.inbox(exchange_id, receiver, sender).get()
                if batch is _POISON:
                    raise ExchangeError(
                        f"exchange {exchange_id}: channel from fragment"
                        f" {sender} broke mid-stream"
                    )
                if batch is None:
                    finished.append(sender)
                else:
                    rows.extend(batch)
            for sender in finished:
                active.remove(sender)
        return rows

    def exchange_object(
        self, ctx: ExecContext, exchange_id: str, obj: Any, nbytes: int
    ) -> ProcessGenerator:
        """All-to-all exchange of one opaque object per fragment.

        Used for Bloom-filter shipping: every fragment contributes its
        object and receives everyone's, collected in fragment order.
        Sends never block (one batch per channel ≤ credits), so the
        send-all-then-receive-all pattern is deadlock-free.
        """
        for dest in range(ctx.fragments):
            payload = [obj]
            yield from self.send(
                ctx, exchange_id, dest, payload,
                nbytes if dest != ctx.fragment_index else 0,
            )
        collected = []
        for sender in range(ctx.fragments):
            batch = yield self.inbox(exchange_id, ctx.fragment_index, sender).get()
            if batch is _POISON:
                raise ExchangeError(
                    f"exchange {exchange_id}: channel from fragment"
                    f" {sender} broke mid-broadcast"
                )
            collected.append(batch[0])
        return collected


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


def _default_owner(value: Any, n: int) -> int:
    from .partition import stable_hash

    return stable_hash(value) % n


def _send_partitions(
    runtime: ExchangeRuntime,
    exchange_id: str,
    ctx: ExecContext,
    parts: list[list],
    per_batch: int,
    row_bytes: int,
) -> ProcessGenerator:
    """Stream every partition to its destination, interleaving
    destinations round-robin so no receiver is starved, ending each
    stream with an EOS batch."""
    offsets = [0] * len(parts)
    pending = list(range(len(parts)))
    while pending:
        done = []
        for dest in pending:
            chunk = parts[dest][offsets[dest] : offsets[dest] + per_batch]
            if chunk:
                offsets[dest] += len(chunk)
                yield from runtime.send(
                    ctx, exchange_id, dest, chunk, len(chunk) * row_bytes
                )
            if offsets[dest] >= len(parts[dest]):
                yield from runtime.send(ctx, exchange_id, dest, None, EOS_BYTES)
                done.append(dest)
        for dest in done:
            pending.remove(dest)


class ShuffleExchange(Operator):
    """Hash-repartition the child's rows across all fragments.

    Each row is routed by ``owner(key(row), fragments)`` — by default
    the stable hash that also places table shards, so rows land on the
    fragment whose co-partitioned build side holds their join partner.
    ``filter_slot`` (a :class:`~repro.dist.semijoin.FilterSlot`) applies
    a Bloom semi-join filter *before* the wire, dropping probe rows
    that cannot join.
    """

    def __init__(
        self,
        child: Operator,
        key: Callable[[tuple], Any],
        runtime: ExchangeRuntime,
        exchange_id: str,
        owner: Optional[Callable[[Any, int], int]] = None,
        filter_slot: Any = None,
        batch_rows: int = 512,
    ):
        self.child = child
        self.key = key
        self.runtime = runtime
        self.exchange_id = exchange_id
        self.owner = owner or _default_owner
        self.filter_slot = filter_slot
        self.batch_rows = batch_rows
        self.row_bytes = child.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        bloom = self.filter_slot.filter if self.filter_slot is not None else None
        if bloom is not None:
            yield from ctx.cpu.compute(len(rows) * PER_ROW_HASH_PROBE_CPU_US)
            kept = [row for row in rows if self.key(row) in bloom]
            ctx.metrics.bloom_filtered_rows += len(rows) - len(kept)
            rows = kept
        # Route each row to its owning fragment.
        yield from ctx.cpu.compute(len(rows) * PER_ROW_SCAN_CPU_US)
        parts: list[list] = [[] for _ in range(ctx.fragments)]
        for row in rows:
            parts[self.owner(self.key(row), ctx.fragments)].append(row)
        per_batch = max(
            1, min(self.batch_rows, self.runtime.slot_bytes // max(1, self.row_bytes))
        )
        sender = ctx.db.sim.spawn(
            _send_partitions(
                self.runtime, self.exchange_id, ctx, parts, per_batch, self.row_bytes
            )
        )
        merged = yield from self.runtime.receive_rows(ctx, self.exchange_id)
        yield sender  # join: re-raise a failed send
        return merged


class BroadcastExchange(Operator):
    """Replicate the child's rows to every fragment (small build sides)."""

    def __init__(
        self,
        child: Operator,
        runtime: ExchangeRuntime,
        exchange_id: str,
        batch_rows: int = 512,
    ):
        self.child = child
        self.runtime = runtime
        self.exchange_id = exchange_id
        self.batch_rows = batch_rows
        self.row_bytes = child.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        parts = [list(rows) for _ in range(ctx.fragments)]
        per_batch = max(
            1, min(self.batch_rows, self.runtime.slot_bytes // max(1, self.row_bytes))
        )
        sender = ctx.db.sim.spawn(
            _send_partitions(
                self.runtime, self.exchange_id, ctx, parts, per_batch, self.row_bytes
            )
        )
        merged = yield from self.runtime.receive_rows(ctx, self.exchange_id)
        yield sender
        return merged


class GatherExchange(Operator):
    """Collect every fragment's rows at the root fragment.

    Non-root fragments ship their rows and return ``[]``; the root
    merges all fragments' streams (round-robin, fragment order).
    """

    def __init__(
        self,
        child: Operator,
        runtime: ExchangeRuntime,
        exchange_id: str,
        root: int = 0,
        batch_rows: int = 512,
    ):
        self.child = child
        self.runtime = runtime
        self.exchange_id = exchange_id
        self.root = root
        self.batch_rows = batch_rows
        self.row_bytes = child.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        per_batch = max(
            1, min(self.batch_rows, self.runtime.slot_bytes // max(1, self.row_bytes))
        )
        if ctx.fragment_index != self.root:
            yield from self._send_stream(ctx, rows, per_batch)
            return []
        sender = ctx.db.sim.spawn(self._send_stream(ctx, rows, per_batch))
        merged = yield from self.runtime.receive_rows(ctx, self.exchange_id)
        yield sender
        return merged

    def _send_stream(self, ctx: ExecContext, rows: list, per_batch: int) -> ProcessGenerator:
        for start in range(0, len(rows), per_batch):
            chunk = rows[start : start + per_batch]
            yield from self.runtime.send(
                ctx, self.exchange_id, self.root, chunk,
                len(chunk) * self.row_bytes,
            )
        yield from self.runtime.send(ctx, self.exchange_id, self.root, None, EOS_BYTES)
