"""Compile one join query into page-, query- and hybrid-shipping plans.

The three strategies run on *identical virtual hardware* (same servers,
devices, NICs — a :class:`~repro.dist.partition.DistSpec`); only data
placement differs:

* **page** — today's baseline: the whole database lives on DB server 0,
  whose buffer-pool extension spans the remote-memory servers; queries
  run single-fragment and pull *pages* over RDMA on faults.
* **query** — partitioned execution: every server owns a shard in its
  local buffer pool, plans run as N fragments that shuffle *tuples*
  over the exchange fabric (the aggregate-DRAM scale-out of "The End
  of Slow Networks").
* **hybrid** — NAM-style compute/memory split: shards are partitioned
  *and* each shard's pages live in remote memory, so fragments fault
  pages from the memory servers and still exchange tuples.

Queries are declarative (:class:`DistQuery`): one equi-join with
per-table filters, a projection, and a top-N over the **full projected
tuple** — a canonical total order (the projection includes the probe
primary key), so all three strategies must return row-identical
results, which the benchmark asserts.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional

from ..engine import ExternalSort, HashJoin, Operator, TableScan
from ..sim.kernel import AllOf
from ..storage import MB
from ..workloads import TPCH_SCHEMAS, TpchScale
from .exchange import GatherExchange, ShuffleExchange
from .partition import (
    TPCH_PARTITIONING,
    DistSetup,
    DistSpec,
    build_dist,
    load_tpch_partitioned,
    load_tpch_single,
    prewarm_dist,
)
from .semijoin import BloomBuild, FilterSlot

__all__ = [
    "Strategy",
    "DistQuery",
    "StrategyResult",
    "compile_single",
    "compile_fragments",
    "build_strategy",
    "execute_query",
]

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
}


class Strategy(str, Enum):
    PAGE = "page"
    QUERY = "query"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class DistQuery:
    """One equi-join query, declarative enough to compile three ways.

    ``projection`` entries are ``(side, column)`` with side ``build`` or
    ``probe``; include the probe table's primary key so the projected
    tuples are unique and full-tuple ordering is total.
    """

    name: str
    build_table: str
    build_key: str
    probe_table: str
    probe_key: str
    projection: tuple
    build_filter: Optional[tuple] = None  # (column, op, value)
    probe_filter: Optional[tuple] = None
    top_n: int = 1000
    semijoin: bool = False
    bloom_bits: int = 1 << 15
    memory_bytes: int = 8 * MB


@dataclass
class StrategyResult:
    """One strategy's execution of one query on one topology."""

    strategy: str
    query: str
    rows: list
    elapsed_us: float
    metrics: dict = field(default_factory=dict)


def _predicate(schema, condition: Optional[tuple]):
    if condition is None:
        return None
    column, op, value = condition
    index = schema.index_of(column)
    compare = _OPS[op]
    return lambda row: compare(row[index], value)


def _projector(query: DistQuery, schemas):
    build = schemas[query.build_table]
    probe = schemas[query.probe_table]
    slots = tuple(
        (0, build.index_of(column)) if side == "build" else (1, probe.index_of(column))
        for side, column in query.projection
    )

    def combine(build_row, probe_row):
        sides = (build_row, probe_row)
        return tuple(sides[which][index] for which, index in slots)

    return combine


def _keys(query: DistQuery, schemas):
    build_index = schemas[query.build_table].index_of(query.build_key)
    probe_index = schemas[query.probe_table].index_of(query.probe_key)
    return (lambda row: row[build_index]), (lambda row: row[probe_index])


def compile_single(query: DistQuery, tables: dict, schemas=None) -> Operator:
    """The page-shipping plan: ordinary single-node join + top-N."""
    schemas = schemas or TPCH_SCHEMAS
    build_key, probe_key = _keys(query, schemas)
    join = HashJoin(
        build=TableScan(
            tables[query.build_table],
            predicate=_predicate(schemas[query.build_table], query.build_filter),
        ),
        probe=TableScan(
            tables[query.probe_table],
            predicate=_predicate(schemas[query.probe_table], query.probe_filter),
        ),
        build_key=build_key,
        probe_key=probe_key,
        combine=_projector(query, schemas),
    )
    return ExternalSort(join, key=lambda row: row, top_n=query.top_n)


def compile_fragments(
    query: DistQuery, setup: DistSetup, tag: str = "run", schemas=None
) -> list[Operator]:
    """One plan per fragment: co-located build, shuffled probe, gather.

    The probe side shuffles each row to the fragment owning its join
    partner — routed by the *build table's* partition spec, which must
    therefore be partitioned on the join key.  Exchange ids embed
    ``tag`` so repeated runs (warm-up vs measured) keep separate
    cumulative stats.
    """
    schemas = schemas or TPCH_SCHEMAS
    if setup.partitioning is None:
        raise ValueError("setup holds unpartitioned data; use compile_single")
    spec = setup.partitioning[query.build_table]
    if spec.key != query.build_key:
        raise ValueError(
            f"co-located join needs {query.build_table!r} partitioned on"
            f" {query.build_key!r}, not {spec.key!r}"
        )
    build_key, probe_key = _keys(query, schemas)
    combine = _projector(query, schemas)
    runtime = setup.runtime
    shuffle_id = f"{query.name}.{tag}.shuffle"
    gather_id = f"{query.name}.{tag}.gather"
    bloom_id = f"{query.name}.{tag}.bloom"
    # Eager declaration: telemetry binders see the ids before the run.
    runtime.stat(shuffle_id)
    runtime.stat(gather_id)
    if query.semijoin:
        runtime.stat(bloom_id)

    plans: list[Operator] = []
    for tables in setup.tables:
        build_scan = TableScan(
            tables[query.build_table],
            predicate=_predicate(schemas[query.build_table], query.build_filter),
        )
        slot = None
        build_op: Operator = build_scan
        if query.semijoin:
            slot = FilterSlot()
            build_op = BloomBuild(
                build_scan, key=build_key, runtime=runtime,
                exchange_id=bloom_id, slot=slot, n_bits=query.bloom_bits,
            )
        shuffle = ShuffleExchange(
            TableScan(
                tables[query.probe_table],
                predicate=_predicate(schemas[query.probe_table], query.probe_filter),
            ),
            key=probe_key,
            runtime=runtime,
            exchange_id=shuffle_id,
            owner=spec.owner,
            filter_slot=slot,
        )
        join = HashJoin(
            build=build_op, probe=shuffle,
            build_key=build_key, probe_key=probe_key, combine=combine,
        )
        gather = GatherExchange(join, runtime=runtime, exchange_id=gather_id, root=0)
        plans.append(ExternalSort(gather, key=lambda row: row, top_n=query.top_n))
    return plans


# ---------------------------------------------------------------------------
# Strategy topologies
# ---------------------------------------------------------------------------


def build_strategy(
    strategy: Strategy,
    spec: DistSpec,
    total_ext_pages: int,
    scale: TpchScale = TpchScale(),
    partitioning=None,
    seed: int = 0,
) -> DistSetup:
    """Build + load + warm one strategy's placement of one topology.

    All three strategies share ``spec``'s hardware; only ``ext_pages``
    (where remote memory attaches) and data placement differ.
    """
    strategy = Strategy(strategy)
    n = spec.db_servers
    if strategy is Strategy.PAGE:
        ext = (total_ext_pages,) + (0,) * (n - 1)
    elif strategy is Strategy.HYBRID:
        ext = (math.ceil(total_ext_pages / n),) * n
    else:
        ext = (0,) * n
    setup = build_dist(
        replace(spec, name=f"{spec.name}.{strategy.value}", ext_pages=ext)
    )
    if strategy is Strategy.PAGE:
        load_tpch_single(setup, scale, seed)
    else:
        load_tpch_partitioned(setup, partitioning or TPCH_PARTITIONING, scale, seed)
    prewarm_dist(setup)
    return setup


def _metrics_dict(metrics) -> dict:
    return {
        "rows_out": metrics.rows_out,
        "spilled_runs": metrics.spilled_runs,
        "spilled_bytes": metrics.spilled_bytes,
        "exchange_batches": metrics.exchange_batches,
        "exchange_rows": metrics.exchange_rows,
        "exchange_bytes": metrics.exchange_bytes,
        "credit_stalls_us": round(metrics.credit_stalls_us, 3),
        "bloom_filtered_rows": metrics.bloom_filtered_rows,
    }


def _sum_metrics(parts: list[dict]) -> dict:
    total: dict[str, Any] = {}
    for part in parts:
        for key, value in part.items():
            total[key] = total.get(key, 0) + value
    if "credit_stalls_us" in total:
        total["credit_stalls_us"] = round(total["credit_stalls_us"], 3)
    return total


def execute_query(
    setup: DistSetup, query: DistQuery, tag: str = "run", schemas=None
) -> StrategyResult:
    """Run one query on one strategy setup; returns rows + metrics.

    Unpartitioned setups (page shipping) run the single-node plan on DB
    server 0; partitioned setups spawn one fragment per server and wait
    for all of them — the root fragment's rows are the query result.
    """
    sim = setup.sim
    start = sim.now
    if setup.partitioning is None:
        plan = compile_single(query, setup.tables[0], schemas)
        result = setup.run(
            setup.databases[0].execute(
                plan, requested_memory_bytes=query.memory_bytes, memory_consumers=2
            )
        )
        return StrategyResult(
            strategy=Strategy.PAGE.value, query=query.name,
            rows=result.rows, elapsed_us=sim.now - start,
            metrics=_metrics_dict(result.metrics),
        )

    plans = compile_fragments(query, setup, tag, schemas)
    fragments = len(plans)
    results: list = [None] * fragments

    def fragment(index: int, plan: Operator):
        results[index] = yield from setup.databases[index].execute(
            plan,
            requested_memory_bytes=query.memory_bytes,
            memory_consumers=2,
            fragment_index=index,
            fragments=fragments,
        )

    processes = [sim.spawn(fragment(i, plan)) for i, plan in enumerate(plans)]

    def waiter():
        yield AllOf(sim, processes)

    setup.run(waiter())
    strategy = (
        Strategy.HYBRID.value
        if any(db.pool.extension is not None for db in setup.databases)
        else Strategy.QUERY.value
    )
    return StrategyResult(
        strategy=strategy, query=query.name,
        rows=results[0].rows, elapsed_us=sim.now - start,
        metrics=_sum_metrics([_metrics_dict(r.metrics) for r in results]),
    )
