"""Lower logical plans into page-, query- and hybrid-shipping plans.

The three strategies run on *identical virtual hardware* (same servers,
devices, NICs — a :class:`~repro.dist.partition.DistSpec`); only data
placement differs:

* **page** — today's baseline: the whole database lives on DB server 0,
  whose buffer-pool extension spans the remote-memory servers; queries
  run single-fragment and pull *pages* over RDMA on faults.
* **query** — partitioned execution: every server owns a shard in its
  local buffer pool, plans run as N fragments that shuffle *tuples*
  over the exchange fabric (the aggregate-DRAM scale-out of "The End
  of Slow Networks").
* **hybrid** — NAM-style compute/memory split: shards are partitioned
  *and* each shard's pages live in remote memory, so fragments fault
  pages from the memory servers and still exchange tuples.

Queries are :mod:`repro.plan` IR trees; one logical plan lowers three
ways.  The page path is :func:`repro.plan.lower_single`; this module
adds the distributed lowering in two steps:

1. :func:`place_exchanges` rewrites the logical tree, inserting
   :class:`~repro.plan.Exchange` nodes wherever tuples must cross the
   fabric.  A join keeps its build side in place when that side is
   already partitioned on the join key and shuffles the other side
   (the classic co-located join); when *neither* side is co-located it
   shuffles **both** sides on an ad-hoc hash spec (a repartitioning
   join).  An Aggregate over partitioned data splits into a
   ``partial`` per fragment and a ``final`` merge after a gather
   (two-phase aggregation); a TopN gathers beneath it.
2. :class:`FragmentLowering` lowers the placed tree once per fragment,
   mapping Exchange nodes to the credit-flow-controlled
   :class:`~repro.dist.exchange.ShuffleExchange` /
   :class:`~repro.dist.exchange.GatherExchange` operators and wrapping
   the build side with Bloom pushdown on ``semijoin`` joins.

:class:`DistQuery` survives as a thin declarative constructor: its
:meth:`~DistQuery.to_plan` emits the equivalent IR, and the legacy
``compile_single`` / ``compile_fragments`` / ``execute_query`` entry
points delegate to the IR pipeline, producing bit-identical plans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..engine import ExecMetrics, Operator
from ..plan import (
    Aggregate,
    Exchange,
    Filter,
    Join,
    Lowering,
    PlanError,
    PlanNode,
    Project,
    Scan,
    TopN,
    count_nodes,
    output_schema,
)
from ..sim.kernel import AllOf
from ..storage import MB
from ..workloads import TPCH_SCHEMAS, TpchScale
from .exchange import GatherExchange, ShuffleExchange
from .partition import (
    TPCH_PARTITIONING,
    DistSetup,
    DistSpec,
    PartitionSpec,
    build_dist,
    load_tpch_partitioned,
    load_tpch_single,
    prewarm_dist,
)
from .semijoin import BloomBuild, FilterSlot

__all__ = [
    "Strategy",
    "DistQuery",
    "StrategyResult",
    "place_exchanges",
    "FragmentLowering",
    "compile_plan_single",
    "compile_plan_fragments",
    "execute_plan",
    "compile_single",
    "compile_fragments",
    "build_strategy",
    "execute_query",
]


class Strategy(str, Enum):
    PAGE = "page"
    QUERY = "query"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class DistQuery:
    """One equi-join query, declarative enough to compile three ways.

    ``projection`` entries are ``(side, column)`` with side ``build`` or
    ``probe``; include the probe table's primary key so the projected
    tuples are unique and full-tuple ordering is total.  Kept as a thin
    constructor over the IR — :meth:`to_plan` is the real query.
    """

    name: str
    build_table: str
    build_key: str
    probe_table: str
    probe_key: str
    projection: tuple
    build_filter: Optional[tuple] = None  # (column, op, value)
    probe_filter: Optional[tuple] = None
    top_n: int = 1000
    semijoin: bool = False
    bloom_bits: int = 1 << 15
    memory_bytes: int = 8 * MB

    def to_plan(self) -> PlanNode:
        """The equivalent logical plan: TopN(Project(Join(Scan, Scan)))."""
        build = Scan(
            self.build_table,
            conditions=(self.build_filter,) if self.build_filter else (),
        )
        probe = Scan(
            self.probe_table,
            conditions=(self.probe_filter,) if self.probe_filter else (),
        )
        join = Join(
            build, probe,
            left_key=f"{self.build_table}.{self.build_key}",
            right_key=f"{self.probe_table}.{self.probe_key}",
            semijoin=self.semijoin,
            bloom_bits=self.bloom_bits,
        )
        tables = {"build": self.build_table, "probe": self.probe_table}
        columns = tuple(f"{tables[side]}.{column}" for side, column in self.projection)
        return TopN(Project(join, columns), self.top_n)


@dataclass
class StrategyResult:
    """One strategy's execution of one query on one topology."""

    strategy: str
    query: str
    rows: list
    elapsed_us: float
    metrics: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Exchange placement: logical tree -> logical tree + Exchange nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Location:
    """Where a placed subtree's rows live across the fragments.

    ``refs`` are the qualified column names whose values route rows
    under ``spec.owner`` (a join adds the other side's key: equal
    values, same owners).  ``rooted`` means every row has been funneled
    to fragment 0 — the shape a gather produces.
    """

    refs: frozenset = frozenset()
    spec: Optional[PartitionSpec] = None
    rooted: bool = False

    def co_located(self, ref: str) -> bool:
        return self.spec is not None and ref in self.refs


def _qualified(node: PlanNode, ref: str, schemas) -> str:
    return output_schema(node, schemas).field_of(ref).name


def place_exchanges(plan: PlanNode, partitioning: dict, schemas=None) -> PlanNode:
    """Insert Exchange nodes so ``plan`` runs as N co-operating fragments.

    Rules, bottom-up:

    * a Join whose build (left) side is partitioned on the join key
      shuffles the probe side to the build rows' owners; symmetrically
      for the probe side; when neither side is co-located, **both**
      sides shuffle on an ad-hoc hash spec (repartitioning join);
    * an Aggregate over partitioned rows becomes partial-per-fragment,
      gather, final-merge (two-phase aggregation);
    * a TopN over partitioned rows gathers beneath it;
    * if the root is still partitioned, a final gather is appended.

    The result is still a logical plan — ``explain`` renders it, and
    :func:`compile_plan_fragments` lowers it once per fragment.
    """
    schemas = schemas or TPCH_SCHEMAS

    def place(node: PlanNode) -> tuple[PlanNode, _Location]:
        if isinstance(node, Scan):
            spec = partitioning.get(node.table)
            if spec is None:
                raise PlanError(f"no partition spec for table {node.table!r}")
            return node, _Location(refs=frozenset({f"{node.table}.{spec.key}"}), spec=spec)
        if isinstance(node, Filter):
            child, at = place(node.child)
            return Filter(child, node.condition), at
        if isinstance(node, Project):
            child, at = place(node.child)
            placed = Project(child, node.columns)
            kept = frozenset(
                ref for ref in at.refs
                if any(f.name == ref for f in output_schema(placed, schemas))
            )
            if not kept:
                at = _Location(rooted=at.rooted)
            else:
                at = replace(at, refs=kept)
            return placed, at
        if isinstance(node, Join):
            return place_join(node)
        if isinstance(node, Aggregate):
            if node.phase != "single":
                raise PlanError("source plans must use single-phase Aggregates")
            child, at = place(node.child)
            if at.rooted:
                return Aggregate(child, node.group_by, node.aggs), at
            partial = Aggregate(child, node.group_by, node.aggs, phase="partial")
            gathered = Exchange(partial, "gather")
            final = Aggregate(gathered, node.group_by, node.aggs, phase="final")
            return final, _Location(rooted=True)
        if isinstance(node, TopN):
            child, at = place(node.child)
            if not at.rooted:
                child = Exchange(child, "gather")
            return TopN(child, node.n), _Location(rooted=True)
        if isinstance(node, Exchange):
            raise PlanError("source plans must not contain Exchange nodes")
        raise PlanError(f"cannot place node {type(node).__name__}")

    def place_join(node: Join) -> tuple[PlanNode, _Location]:
        left, l_at = place(node.left)
        right, r_at = place(node.right)
        qual_lk = _qualified(left, node.left_key, schemas)
        qual_rk = _qualified(right, node.right_key, schemas)
        joined = frozenset({qual_lk, qual_rk})
        if l_at.rooted and r_at.rooted:
            at = _Location(rooted=True)
        elif l_at.rooted or r_at.rooted:
            # One side already funneled to the root: gather the other
            # so the join happens (with real inputs) only at fragment 0.
            if not l_at.rooted:
                left = Exchange(left, "gather")
            else:
                right = Exchange(right, "gather")
            at = _Location(rooted=True)
        elif l_at.co_located(qual_lk):
            right = Exchange(right, "shuffle", key=qual_rk, spec=l_at.spec)
            at = _Location(refs=l_at.refs | joined, spec=l_at.spec)
        elif r_at.co_located(qual_rk):
            left = Exchange(left, "shuffle", key=qual_lk, spec=r_at.spec)
            at = _Location(refs=r_at.refs | joined, spec=r_at.spec)
        else:
            # Repartitioning join: hash both inputs on the join key.
            spec = PartitionSpec(table="*", key=qual_lk.rsplit(".", 1)[-1])
            left = Exchange(left, "shuffle", key=qual_lk, spec=spec)
            right = Exchange(right, "shuffle", key=qual_rk, spec=spec)
            at = _Location(refs=joined, spec=spec)
        placed = Join(
            left, right, node.left_key, node.right_key,
            semijoin=node.semijoin, bloom_bits=node.bloom_bits,
        )
        return placed, at

    placed, at = place(plan)
    if not at.rooted:
        placed = Exchange(placed, "gather")
    return placed


# ---------------------------------------------------------------------------
# Fragment lowering: placed logical tree -> physical operators
# ---------------------------------------------------------------------------


class _ExchangeNames:
    """Deterministic per-plan exchange ids, declared eagerly.

    Every fragment lowers the same placed tree in the same order, so
    regenerating the sequence per fragment yields identical ids — the
    contract the exchange fabric (and telemetry binders) require.  The
    first id of each role is ``{base}.{role}`` (legacy naming); later
    ones append a counter (``.shuffle2``, ...).
    """

    def __init__(self, runtime, base: str):
        self.runtime = runtime
        self.base = base
        self.counts: dict[str, int] = {}

    def assign(self, role: str) -> str:
        count = self.counts.get(role, 0) + 1
        self.counts[role] = count
        exchange_id = f"{self.base}.{role}" if count == 1 else f"{self.base}.{role}{count}"
        self.runtime.stat(exchange_id)  # eager: binders see ids pre-run
        return exchange_id


class FragmentLowering(Lowering):
    """Lower a placed tree for one fragment's shard of the tables.

    Everything except Exchange handling and semi-join pushdown is the
    shared single-node lowering — same fusion rules, same operators,
    which is what keeps rows identical across the three strategies.
    """

    def __init__(self, tables, schemas, runtime, names: _ExchangeNames):
        super().__init__(tables, schemas, cost_model=None)
        self.runtime = runtime
        self.names = names

    def lower_exchange(self, node: Exchange) -> Operator:
        child = self.lower(node.child)
        if node.kind == "gather":
            return GatherExchange(
                child, runtime=self.runtime,
                exchange_id=self.names.assign("gather"), root=0,
            )
        key = self.schema_of(node.child).extractor(node.key)
        owner = node.spec.owner if node.spec is not None else None
        return ShuffleExchange(
            child, key=key, runtime=self.runtime,
            exchange_id=self.names.assign("shuffle"), owner=owner,
        )

    def decorate_join_inputs(self, node, build_op, probe_op, left_schema, right_schema):
        if not node.semijoin or not isinstance(probe_op, ShuffleExchange):
            return build_op, probe_op
        slot = FilterSlot()
        build_op = BloomBuild(
            build_op, key=left_schema.extractor(node.left_key),
            runtime=self.runtime, exchange_id=self.names.assign("bloom"),
            slot=slot, n_bits=node.bloom_bits,
        )
        probe_op.filter_slot = slot
        return build_op, probe_op


def compile_plan_single(plan: PlanNode, tables: dict, schemas=None) -> Operator:
    """The page-shipping lowering: ordinary single-node operators."""
    schemas = schemas or TPCH_SCHEMAS
    return Lowering(tables, schemas).lower(plan)


def compile_plan_fragments(
    plan: PlanNode,
    setup: DistSetup,
    name: str = "query",
    tag: str = "run",
    schemas=None,
) -> list[Operator]:
    """Place exchanges, then lower the placed tree once per fragment.

    Exchange ids embed ``name`` and ``tag`` so repeated runs (warm-up
    vs measured) keep separate cumulative stats.
    """
    schemas = schemas or TPCH_SCHEMAS
    if setup.partitioning is None:
        raise ValueError("setup holds unpartitioned data; use compile_single")
    placed = place_exchanges(plan, setup.partitioning, schemas)
    plans: list[Operator] = []
    for tables in setup.tables:
        names = _ExchangeNames(setup.runtime, f"{name}.{tag}")
        plans.append(FragmentLowering(tables, schemas, setup.runtime, names).lower(placed))
    return plans


# ---------------------------------------------------------------------------
# Legacy DistQuery entry points (delegate to the IR pipeline)
# ---------------------------------------------------------------------------


def compile_single(query: DistQuery, tables: dict, schemas=None) -> Operator:
    """The page-shipping plan: ordinary single-node join + top-N."""
    return compile_plan_single(query.to_plan(), tables, schemas)


def compile_fragments(
    query: DistQuery, setup: DistSetup, tag: str = "run", schemas=None
) -> list[Operator]:
    """One plan per fragment: co-located build, shuffled probe, gather."""
    return compile_plan_fragments(
        query.to_plan(), setup, name=query.name, tag=tag, schemas=schemas
    )


# ---------------------------------------------------------------------------
# Strategy topologies
# ---------------------------------------------------------------------------


def build_strategy(
    strategy: Strategy,
    spec: DistSpec,
    total_ext_pages: int,
    scale: TpchScale = TpchScale(),
    partitioning=None,
    seed: int = 0,
) -> DistSetup:
    """Build + load + warm one strategy's placement of one topology.

    All three strategies share ``spec``'s hardware; only ``ext_pages``
    (where remote memory attaches) and data placement differ.
    """
    strategy = Strategy(strategy)
    n = spec.db_servers
    if strategy is Strategy.PAGE:
        ext = (total_ext_pages,) + (0,) * (n - 1)
    elif strategy is Strategy.HYBRID:
        ext = (math.ceil(total_ext_pages / n),) * n
    else:
        ext = (0,) * n
    setup = build_dist(
        replace(spec, name=f"{spec.name}.{strategy.value}", ext_pages=ext)
    )
    if strategy is Strategy.PAGE:
        load_tpch_single(setup, scale, seed)
    else:
        load_tpch_partitioned(setup, partitioning or TPCH_PARTITIONING, scale, seed)
    prewarm_dist(setup)
    return setup


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_plan(
    setup: DistSetup,
    plan: PlanNode,
    name: str = "query",
    tag: str = "run",
    memory_bytes: int = 8 * MB,
    memory_consumers: Optional[int] = None,
    schemas=None,
) -> StrategyResult:
    """Run one logical plan on one strategy setup; rows + metrics.

    Unpartitioned setups (page shipping) lower the plan single-node and
    run it on DB server 0; partitioned setups place exchanges, spawn
    one fragment per server and wait for all of them — the root
    fragment's rows are the query result.  Fragment metrics merge via
    :meth:`~repro.engine.ExecMetrics.merged`.
    """
    if memory_consumers is None:
        memory_consumers = max(1, count_nodes(plan, Join, Aggregate, TopN))
    sim = setup.sim
    start = sim.now
    if setup.partitioning is None:
        op = compile_plan_single(plan, setup.tables[0], schemas)
        result = setup.run(
            setup.databases[0].execute(
                op, requested_memory_bytes=memory_bytes,
                memory_consumers=memory_consumers,
            )
        )
        return StrategyResult(
            strategy=Strategy.PAGE.value, query=name,
            rows=result.rows, elapsed_us=sim.now - start,
            metrics=result.metrics.to_dict(),
        )

    plans = compile_plan_fragments(plan, setup, name, tag, schemas)
    fragments = len(plans)
    results: list = [None] * fragments

    def fragment(index: int, op: Operator):
        results[index] = yield from setup.databases[index].execute(
            op,
            requested_memory_bytes=memory_bytes,
            memory_consumers=memory_consumers,
            fragment_index=index,
            fragments=fragments,
        )

    processes = [sim.spawn(fragment(i, op)) for i, op in enumerate(plans)]

    def waiter():
        yield AllOf(sim, processes)

    setup.run(waiter())
    strategy = (
        Strategy.HYBRID.value
        if any(db.pool.extension is not None for db in setup.databases)
        else Strategy.QUERY.value
    )
    return StrategyResult(
        strategy=strategy, query=name,
        rows=results[0].rows, elapsed_us=sim.now - start,
        metrics=ExecMetrics.merged(r.metrics for r in results).to_dict(),
    )


def execute_query(
    setup: DistSetup, query: DistQuery, tag: str = "run", schemas=None
) -> StrategyResult:
    """Run one :class:`DistQuery` (legacy surface) via the IR pipeline."""
    return execute_plan(
        setup, query.to_plan(), name=query.name, tag=tag,
        memory_bytes=query.memory_bytes, memory_consumers=2, schemas=schemas,
    )
