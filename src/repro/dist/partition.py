"""Horizontal partitioning + multi-server topology for distributed plans.

The single-node engine owns *all* pages of every table; query shipping
("The End of Slow Networks", Binnig et al.) instead gives each of N DB
servers one horizontal shard with its own buffer pool and tier stack,
and moves *tuples* between servers at exchange boundaries.  This module
supplies both halves of that story:

* a declarative partitioning grammar (:class:`PartitionSpec` — hash or
  range on one key column) with a **stable** hash function, because
  Python's built-in ``hash`` is salted per process and would shard
  differently on every run;
* :func:`build_dist`, the cluster builder: N identical DB servers
  (HDD array + SSD + local TempDB each), optional memory servers with a
  shared broker for NAM-style remote shards, and the exchange fabric
  bootstrapped over pre-registered staging buffers.

Loaders reuse the TPC-H generator split
(:func:`~repro.workloads.tpch.generate_tpch_rows`): one canonical row
set is generated once, then either installed whole on server 0
(page shipping) or sharded by the partitioning map (query shipping /
hybrid) — so all strategies query byte-identical data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from ..broker import MemoryBroker, MemoryProxy
from ..cluster import Cluster, Server
from ..engine import Database, DevicePageFile, RemotePageFile, Schema
from ..harness import warm_extension, warm_pool
from ..harness.dbbench import BPEXT_FILE_ID, TEMPDB_FILE_ID
from ..net import Network
from ..remotefile import AccessPolicy, RemoteMemoryFilesystem, StagingPool
from ..storage import GB, MB, PAGE_SIZE, Raid0Array, SsdDevice
from ..telemetry import MetricsRegistry
from ..telemetry.attach import register_cluster, register_pool
from ..tiers import Tier, build_stack
from ..workloads import TPCH_SCHEMAS, TpchScale, generate_tpch_rows, install_tpch_tables
from .exchange import ExchangeRuntime

__all__ = [
    "PartitionSpec",
    "DistSpec",
    "DistSetup",
    "TPCH_PARTITIONING",
    "stable_hash",
    "partition_rows",
    "build_dist",
    "load_tpch_single",
    "load_tpch_partitioned",
    "prewarm_dist",
]


def stable_hash(value: Any) -> int:
    """Process-stable 64-bit hash (splitmix64 finalizer / CRC for str).

    Partitioning and Bloom filters must place the same key on the same
    server in every run; Python's ``hash`` is salted per interpreter.
    """
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    x = int(value) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (x ^ (x >> 31)) & 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True)
class PartitionSpec:
    """How one table is split across N servers.

    ``hash``: row goes to ``stable_hash(key) % n``.
    ``range``: ``bounds`` holds n-1 ascending split points; row goes to
    the first partition whose bound exceeds its key (last otherwise).
    """

    table: str
    key: str
    method: str = "hash"
    bounds: tuple = ()

    def __post_init__(self):
        if self.method not in ("hash", "range"):
            raise ValueError(f"unknown partition method {self.method!r}")
        if self.method == "range" and list(self.bounds) != sorted(self.bounds):
            raise ValueError("range bounds must be ascending")

    def owner(self, value: Any, n: int) -> int:
        """Which of ``n`` servers owns a row with this key value."""
        if n == 1:
            return 0
        if self.method == "hash":
            return stable_hash(value) % n
        if len(self.bounds) != n - 1:
            raise ValueError(
                f"range partitioning of {self.table!r} needs {n - 1} bounds,"
                f" got {len(self.bounds)}"
            )
        for index, bound in enumerate(self.bounds):
            if value < bound:
                return index
        return n - 1


def partition_rows(
    rows: list, schema: Schema, spec: PartitionSpec, n: int
) -> list[list]:
    """Split one table's rows into ``n`` shards by the spec's key."""
    key_index = schema.index_of(spec.key)
    shards: list[list] = [[] for _ in range(n)]
    for row in rows:
        shards[spec.owner(row[key_index], n)].append(row)
    return shards


#: Default TPC-H co-location: each table is partitioned on its most
#: join-relevant key so every two-table join has exactly one shuffling
#: side (the build side is always local to its shard).
TPCH_PARTITIONING: dict[str, PartitionSpec] = {
    "customer": PartitionSpec("customer", "custkey"),
    "orders": PartitionSpec("orders", "orderkey"),
    "lineitem": PartitionSpec("lineitem", "partkey"),
    "part": PartitionSpec("part", "partkey"),
    "supplier": PartitionSpec("supplier", "suppkey"),
}


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DistSpec:
    """Declarative distributed topology: N identical DB servers.

    ``ext_pages`` is per-DB-server remote BPExt capacity (0 = no remote
    tier on that server); page-shipping setups put the whole extension
    on server 0, NAM-style hybrids give every server a slice.
    """

    name: str
    db_servers: int = 2
    memory_servers: int = 1
    bp_pages: int = 256
    ext_pages: tuple = ()
    tempdb_pages: int = 1024
    data_spindles: int = 8
    db_cores: int = 8
    seed: int = 0
    credits: int = 4
    slot_bytes: int = 64 * 1024
    workspace_bytes: int = 64 * MB

    def resolved_ext(self) -> tuple:
        ext = tuple(self.ext_pages) if self.ext_pages else (0,) * self.db_servers
        if len(ext) != self.db_servers:
            raise ValueError(
                f"ext_pages needs {self.db_servers} entries, got {len(ext)}"
            )
        return ext


@dataclass
class DistSetup:
    """Everything a distributed benchmark needs to drive one topology."""

    spec: DistSpec
    cluster: Cluster
    network: Network
    db_servers: list[Server]
    databases: list[Database]
    runtime: ExchangeRuntime
    memory_servers: list[Server] = field(default_factory=list)
    broker: Optional[MemoryBroker] = None
    proxies: dict[str, MemoryProxy] = field(default_factory=dict)
    remote_fs: dict[str, RemoteMemoryFilesystem] = field(default_factory=dict)
    metrics: Optional[MetricsRegistry] = None
    #: Per-DB-server table dicts (loader output); page-shipping setups
    #: populate index 0 only.
    tables: list = field(default_factory=list)
    #: Partitioning map when the load was sharded, else None.
    partitioning: Optional[dict[str, PartitionSpec]] = None

    @property
    def sim(self):
        return self.cluster.sim

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))


def build_dist(spec: DistSpec) -> DistSetup:
    """Assemble the virtual cluster for one distributed topology."""
    ext_pages = spec.resolved_ext()
    cluster = Cluster(seed=spec.seed)
    sim = cluster.sim
    network = Network(sim)

    db_servers: list[Server] = []
    hdds = []
    for index in range(spec.db_servers):
        server = cluster.add_server(
            f"db{index}", cores=spec.db_cores, memory_bytes=384 * GB
        )
        network.attach(server)
        hdd = server.attach_device(
            "hdd",
            Raid0Array(
                sim, spindles=spec.data_spindles,
                rng=cluster.rng.stream(f"hdd{index}"),
            ),
        )
        server.attach_device("ssd", SsdDevice(sim))
        db_servers.append(server)
        hdds.append(hdd)

    setup = DistSetup(
        spec=spec, cluster=cluster, network=network,
        db_servers=db_servers, databases=[],
        runtime=ExchangeRuntime(
            db_servers, credits=spec.credits, slot_bytes=spec.slot_bytes
        ),
    )

    needs_remote = any(pages > 0 for pages in ext_pages)
    if needs_remote:
        # Leases hand out whole MRs, so each server's bpext file consumes
        # at least one full region — size the offer by region count, not
        # raw bytes, or a many-small-shards hybrid starves the last file.
        mr_bytes = 64 * MB
        regions_needed = sum(
            -(-pages * PAGE_SIZE // mr_bytes) for pages in ext_pages if pages > 0
        )
        per_memory_server = -(-regions_needed // max(1, spec.memory_servers)) + 1
        per_server = per_memory_server * mr_bytes
        broker = MemoryBroker(sim)
        setup.broker = broker
        for index in range(spec.memory_servers):
            server = cluster.add_server(f"mem{index}", memory_bytes=384 * GB)
            network.attach(server)
            setup.memory_servers.append(server)

        def offer_all():
            for server in setup.memory_servers:
                proxy = MemoryProxy(server, broker, mr_bytes=mr_bytes)
                setup.proxies[server.name] = proxy
                yield from proxy.offer_available(limit_bytes=per_server)

        setup.run(offer_all())

    spread = spec.memory_servers > 1
    for index, server in enumerate(db_servers):
        extension = None
        if ext_pages[index] > 0:
            fs = RemoteMemoryFilesystem(
                server, setup.broker,
                StagingPool(server, schedulers=spec.db_cores),
                policy=AccessPolicy.SYNC,
            )
            setup.remote_fs[server.name] = fs

            def bootstrap(fs=fs, pages=ext_pages[index], label=server.name):
                yield from fs.initialize()
                file = yield from fs.create(
                    f"bpext.{label}", pages * PAGE_SIZE, spread=spread
                )
                yield from file.open()
                return file

            file = setup.run(bootstrap())
            extension = build_stack([
                Tier(
                    name="remote",
                    store=RemotePageFile(
                        BPEXT_FILE_ID, file, capacity_pages=ext_pages[index]
                    ),
                    medium="remote",
                )
            ])
        tempdb = DevicePageFile(
            TEMPDB_FILE_ID, server, server.devices["ssd"],
            capacity_pages=spec.tempdb_pages, base_offset=512 * GB,
            chunk_pages=None,
        )
        setup.databases.append(
            Database(
                server,
                bp_pages=spec.bp_pages,
                data_device=hdds[index],
                log_device=server.devices["ssd"],
                extension=extension,
                tempdb_store=tempdb,
                workspace_bytes=spec.workspace_bytes,
            )
        )

    setup.run(setup.runtime.bootstrap())

    registry = MetricsRegistry(f"dist.{spec.name}")
    register_cluster(registry, cluster)
    for index, database in enumerate(setup.databases):
        register_pool(registry, f"db{index}.bp", database.pool)
    setup.metrics = registry
    return setup


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------


def load_tpch_single(
    setup: DistSetup, scale: TpchScale = TpchScale(), seed: int = 0
) -> None:
    """Install the whole TPC-H row set on DB server 0 (page shipping)."""
    rows = generate_tpch_rows(scale, seed)
    setup.tables = [install_tpch_tables(setup.databases[0], rows, scale)]
    setup.partitioning = None


def load_tpch_partitioned(
    setup: DistSetup,
    partitioning: dict[str, PartitionSpec] | None = None,
    scale: TpchScale = TpchScale(),
    seed: int = 0,
) -> None:
    """Shard the canonical TPC-H row set across every DB server."""
    partitioning = dict(partitioning or TPCH_PARTITIONING)
    n = len(setup.databases)
    rows = generate_tpch_rows(scale, seed)
    shards: list[dict[str, list]] = [{} for _ in range(n)]
    for name, schema in TPCH_SCHEMAS.items():
        spec = partitioning.get(name)
        if spec is None:
            raise ValueError(f"no PartitionSpec for table {name!r}")
        for index, shard in enumerate(partition_rows(rows[name], schema, spec, n)):
            shards[index][name] = shard
    setup.tables = [
        install_tpch_tables(db, shard, scale)
        for db, shard in zip(setup.databases, shards)
    ]
    setup.partitioning = partitioning


def prewarm_dist(setup: DistSetup) -> int:
    """Steady-state warm-up: extension if the server has one, else pool."""
    installed = 0
    for database in setup.databases[: len(setup.tables)]:
        if database.pool.extension is not None:
            installed += warm_extension(database.pool)
        else:
            installed += warm_pool(database.pool)
    return installed
