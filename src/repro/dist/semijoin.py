"""Bloom-filter semi-join pushdown: filter the probe before the wire.

Rödiger et al. ("High-Speed Query Processing over High-Speed Networks")
show that even on fast fabrics, not shuffling a tuple at all beats
shuffling it quickly.  The pushdown here:

1. every fragment builds a Bloom filter over its **local build-side**
   join keys (:class:`BloomBuild` wraps the build scan, pass-through);
2. the fragments all-to-all exchange their filters (one small RDMA
   write per peer — a few KB, not the probe table) and OR them into the
   *global* filter;
3. the probe side's :class:`~repro.dist.exchange.ShuffleExchange`
   consults the filter (via a shared :class:`FilterSlot`) and drops
   probe rows whose key cannot be in any fragment's build side —
   before they are serialized or shipped.

The filter uses the same process-stable hash as partitioning, so
membership — and therefore bytes-shuffled — is identical on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..engine.costs import PER_ROW_HASH_BUILD_CPU_US
from ..engine.operators import ExecContext, Operator
from ..sim.kernel import ProcessGenerator
from .exchange import ExchangeRuntime
from .partition import stable_hash

__all__ = ["BloomFilter", "FilterSlot", "BloomBuild"]


class BloomFilter:
    """A fixed-geometry Bloom filter over join-key values.

    ``n_bits`` must be a power of two (so double hashing reduces with a
    mask); geometry is fixed per query so fragment filters OR together.
    """

    def __init__(self, n_bits: int = 1 << 15, hashes: int = 4):
        if n_bits <= 0 or n_bits & (n_bits - 1):
            raise ValueError("n_bits must be a positive power of two")
        self.n_bits = n_bits
        self.hashes = hashes
        self.bits = 0
        self.adds = 0

    def _probes(self, value: Any):
        mixed = stable_hash(value)
        h1 = mixed & (self.n_bits - 1)
        h2 = ((mixed >> 17) | 1) & (self.n_bits - 1)
        for i in range(self.hashes):
            yield (h1 + i * h2) & (self.n_bits - 1)

    def add(self, value: Any) -> None:
        for probe in self._probes(value):
            self.bits |= 1 << probe
        self.adds += 1

    def __contains__(self, value: Any) -> bool:
        for probe in self._probes(value):
            if not (self.bits >> probe) & 1:
                return False
        return True

    def union(self, other: "BloomFilter") -> None:
        if (other.n_bits, other.hashes) != (self.n_bits, self.hashes):
            raise ValueError("cannot union Bloom filters of different geometry")
        self.bits |= other.bits
        self.adds += other.adds

    @property
    def size_bytes(self) -> int:
        return self.n_bits // 8


@dataclass
class FilterSlot:
    """Mutable cell linking a BloomBuild to the ShuffleExchange that
    consumes its filter; empty until the build side has run."""

    filter: Optional[BloomFilter] = None


class BloomBuild(Operator):
    """Pass-through over the build side that publishes the global filter.

    Runs the child, folds its join keys into a local Bloom filter,
    all-to-all exchanges the fragments' filters
    (:meth:`~repro.dist.exchange.ExchangeRuntime.exchange_object`) and
    stores the union in ``slot`` — then returns the child's rows
    unchanged, so it nests anywhere the plain build scan would.
    """

    def __init__(
        self,
        child: Operator,
        key: Callable[[tuple], Any],
        runtime: ExchangeRuntime,
        exchange_id: str,
        slot: FilterSlot,
        n_bits: int = 1 << 15,
        hashes: int = 4,
    ):
        self.child = child
        self.key = key
        self.runtime = runtime
        self.exchange_id = exchange_id
        self.slot = slot
        self.n_bits = n_bits
        self.hashes = hashes
        self.row_bytes = child.row_bytes

    def run(self, ctx: ExecContext) -> ProcessGenerator:
        rows = yield from self.child.run(ctx)
        local = BloomFilter(self.n_bits, self.hashes)
        yield from ctx.cpu.compute(len(rows) * PER_ROW_HASH_BUILD_CPU_US)
        for row in rows:
            local.add(self.key(row))
        merged = BloomFilter(self.n_bits, self.hashes)
        for remote in (
            yield from self.runtime.exchange_object(
                ctx, self.exchange_id, local, local.size_bytes
            )
        ):
            merged.union(remote)
        self.slot.filter = merged
        return rows
