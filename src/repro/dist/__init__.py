"""repro.dist: RDMA-native distributed query processing.

Query shipping vs page shipping on the paper's virtual hardware: the
partitioning grammar and cluster builder (:mod:`~repro.dist.partition`),
credit-flow-controlled RDMA exchange operators
(:mod:`~repro.dist.exchange`), Bloom-filter semi-join pushdown
(:mod:`~repro.dist.semijoin`) and the three-strategy planner
(:mod:`~repro.dist.planner`).
"""

from .exchange import (
    EOS_BYTES,
    BroadcastExchange,
    ExchangeError,
    ExchangeRuntime,
    ExchangeStats,
    GatherExchange,
    ShuffleExchange,
)
from .partition import (
    TPCH_PARTITIONING,
    DistSetup,
    DistSpec,
    PartitionSpec,
    build_dist,
    load_tpch_partitioned,
    load_tpch_single,
    partition_rows,
    prewarm_dist,
    stable_hash,
)
from .planner import (
    DistQuery,
    FragmentLowering,
    Strategy,
    StrategyResult,
    build_strategy,
    compile_fragments,
    compile_plan_fragments,
    compile_plan_single,
    compile_single,
    execute_plan,
    execute_query,
    place_exchanges,
)
from .semijoin import BloomBuild, BloomFilter, FilterSlot

__all__ = [
    "BloomBuild",
    "BloomFilter",
    "BroadcastExchange",
    "DistQuery",
    "DistSetup",
    "DistSpec",
    "EOS_BYTES",
    "ExchangeError",
    "ExchangeRuntime",
    "ExchangeStats",
    "FilterSlot",
    "FragmentLowering",
    "GatherExchange",
    "PartitionSpec",
    "ShuffleExchange",
    "Strategy",
    "StrategyResult",
    "TPCH_PARTITIONING",
    "build_dist",
    "build_strategy",
    "compile_fragments",
    "compile_plan_fragments",
    "compile_plan_single",
    "compile_single",
    "execute_plan",
    "execute_query",
    "place_exchanges",
    "load_tpch_partitioned",
    "load_tpch_single",
    "partition_rows",
    "prewarm_dist",
    "stable_hash",
]
