"""The memory marketplace: demand-driven lease reallocation over the pool.

The paper's broker (Section 4.2) is a static allocator: first come,
first served, and a lease lives until its holder releases it or the
provider needs the memory back.  At fleet scale — tens of databases
with shifting, bursty demand sharing one elastic pool (Wang et al.,
PAPERS.md) — that leaves memory parked with idle tenants while loaded
ones thrash.  The :class:`Marketplace` closes the loop:

* tenants publish :class:`DemandSignal`\\ s at every workload epoch
  (offered intensity, extension miss rate, epoch backlog);
* a rebalance daemon periodically recomputes each tenant's *target*
  extension size from demand × :class:`QosClass` weight over the live
  pool budget (which shrinks automatically when providers crash);
* shrink-before-grow with per-tenant cooldowns reclaims pages from
  low-priority tenants first and prevents resize thrash;
* an anti-affinity placement hook (installed into
  :attr:`~repro.broker.MemoryBroker.placement`) spreads each tenant's
  leases across providers so one memory-server crash degrades a tenant
  instead of destroying it.

Everything is deterministic: demand comes from seeded traffic shapes,
targets are integer arithmetic over the signals, and tie-breaks are
lexicographic — the same seed replays the same marketplace history.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..broker import BrokerUnavailable, InsufficientMemory, Lease, MemoryBroker
from ..engine.page import PAGE_SIZE
from ..sim.kernel import ProcessGenerator, Simulator
from ..telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .topology import TenantRuntime

__all__ = [
    "DemandSignal",
    "Marketplace",
    "MarketplacePolicy",
    "QosClass",
    "verify_broker_consistency",
]


class QosClass(enum.IntEnum):
    """Tenant priority class; higher values win contended memory."""

    BRONZE = 0
    SILVER = 1
    GOLD = 2


#: Relative marketplace weight per QoS class (GOLD demand counts 4x a
#: BRONZE tenant's at the same intensity).
QOS_WEIGHTS = {QosClass.BRONZE: 1.0, QosClass.SILVER: 2.0, QosClass.GOLD: 4.0}


@dataclass(frozen=True)
class DemandSignal:
    """One tenant's demand report for one workload epoch."""

    at_us: float
    #: Offered-load intensity in [0, 1] (the traffic shape's value).
    intensity: float
    #: Extension miss rate over the epoch, in [0, 1].
    miss_rate: float = 0.0
    #: How far past the epoch boundary the epoch's queries finished.
    backlog_us: float = 0.0
    #: Queries issued during the epoch.
    offered: int = 0

    @property
    def score(self) -> float:
        """Demand score used for apportioning: intensity, nudged up by
        cache pressure so two equally-loaded tenants split in favour of
        the one actually missing its extension."""
        return max(0.0, min(1.0, self.intensity)) * (1.0 + 0.5 * self.miss_rate)


@dataclass(frozen=True)
class MarketplacePolicy:
    """Knobs of the rebalance loop."""

    #: Rebalance cadence (virtual microseconds).
    period_us: float = 2e6
    #: Minimum gap between two resizes of the same tenant (anti-thrash).
    cooldown_us: float = 6e6
    #: Ignore target moves smaller than this many pages (anti-thrash).
    min_delta_pages: int = 128
    #: Fraction of the pool the marketplace never hands out, so MR
    #: rounding and in-flight rebuilds cannot deadlock on a full pool.
    headroom_fraction: float = 0.10
    #: Demand score assumed for a tenant that has not reported yet.
    default_score: float = 0.5


@dataclass
class _TenantAccount:
    runtime: "TenantRuntime"
    signal: Optional[DemandSignal] = None
    last_resize_us: float = field(default=-1e18)
    revocations: int = 0


class Marketplace:
    """Global memory marketplace over one :class:`~repro.broker.MemoryBroker`."""

    def __init__(
        self,
        sim: Simulator,
        broker: MemoryBroker,
        policy: MarketplacePolicy | None = None,
        registry: MetricsRegistry | None = None,
        mr_bytes: int = 2 * 1024 * 1024,
    ):
        self.sim = sim
        self.broker = broker
        self.policy = policy if policy is not None else MarketplacePolicy()
        self.registry = registry
        self.mr_pages = max(1, mr_bytes // PAGE_SIZE)
        self._accounts: dict[str, _TenantAccount] = {}
        #: Broker holder name (db server) -> tenant name, for placement.
        self._holder_tenant: dict[str, str] = {}
        # Stats (exported as fleet.marketplace.* gauges).
        self.rounds = 0
        self.resizes = 0
        self.reclaimed_pages = 0
        self.granted_pages = 0
        self.grow_deferred = 0
        self.aborted_rounds = 0
        self.revocations_seen = 0
        broker.placement = self.place
        if registry is not None:
            registry.gauge("fleet.marketplace.rounds", lambda: self.rounds)
            registry.gauge("fleet.marketplace.resizes", lambda: self.resizes)
            registry.gauge("fleet.marketplace.reclaimed_pages", lambda: self.reclaimed_pages)
            registry.gauge("fleet.marketplace.granted_pages", lambda: self.granted_pages)
            registry.gauge("fleet.marketplace.grow_deferred", lambda: self.grow_deferred)
            registry.gauge("fleet.marketplace.aborted_rounds", lambda: self.aborted_rounds)
            registry.gauge("fleet.marketplace.revocations", lambda: self.revocations_seen)

    # -- tenant membership -------------------------------------------------

    def adopt(self, runtime: "TenantRuntime") -> None:
        """Register a tenant: demand accounting + revocation observation."""
        account = _TenantAccount(runtime=runtime)
        self._accounts[runtime.name] = account
        for holder in runtime.holders():
            self._holder_tenant[holder] = runtime.name
            self.broker.add_revocation_listener(
                holder,
                lambda lease, account=account: self._on_revoked(account, lease),
            )

    def _on_revoked(self, account: _TenantAccount, lease: Lease) -> None:
        account.revocations += 1
        self.revocations_seen += 1
        account.runtime.on_lease_revoked(lease)

    def tenant_revocations(self, name: str) -> int:
        return self._accounts[name].revocations

    # -- demand ------------------------------------------------------------

    def report_demand(self, tenant: str, signal: DemandSignal) -> None:
        """Tenant-side epoch report; drives the next rebalance round."""
        account = self._accounts.get(tenant)
        if account is not None:
            account.signal = signal

    # -- placement ---------------------------------------------------------

    def place(self, holder: str, candidates: list[str], broker: MemoryBroker) -> str:
        """Anti-affinity: take the next MR from the provider currently
        backing the fewest of this *tenant's* leases (all replicas
        count), lexicographic provider name on ties."""
        tenant = self._holder_tenant.get(holder)
        holders = (
            {holder}
            if tenant is None
            else set(self._accounts[tenant].runtime.holders())
        )
        held: dict[str, int] = {}
        for lease in self.broker.active_leases:
            if lease.holder in holders:
                held[lease.provider] = held.get(lease.provider, 0) + 1
        return min(candidates, key=lambda p: (held.get(p, 0), p))

    # -- allocation --------------------------------------------------------

    def budget_pages(self) -> int:
        """Pages the marketplace may apportion right now.

        Live capacity = unleased pool + everything currently leased; a
        provider crash removes its regions from both terms, so targets
        shrink automatically after a failure storm.
        """
        live = self.broker.available_bytes() + sum(
            lease.region.size for lease in self.broker.active_leases
        )
        usable = int(live * (1.0 - self.policy.headroom_fraction))
        return (usable // PAGE_SIZE // self.mr_pages) * self.mr_pages

    def _round_pages(self, pages: int) -> int:
        return max(0, (pages // self.mr_pages) * self.mr_pages)

    def desired_allocation(self) -> dict[str, int]:
        """Target extension pages per tenant from demand × QoS weight.

        Floors come first (scaled down proportionally if a shrunken
        pool cannot cover them); the surplus is split by weighted
        demand.  Pure integer arithmetic over reported signals — no
        randomness, so the same history yields the same targets.
        """
        tenants = [
            account for _name, account in sorted(self._accounts.items())
            if account.runtime.resizable
        ]
        if not tenants:
            return {}
        budget = self.budget_pages()
        floors = {
            account.runtime.name: self._round_pages(account.runtime.floor_pages)
            for account in tenants
        }
        floor_total = sum(floors.values())
        if floor_total > budget and floor_total > 0:
            scale = budget / floor_total
            floors = {
                name: self._round_pages(int(pages * scale))
                for name, pages in floors.items()
            }
            floor_total = sum(floors.values())
        surplus = max(0, budget - floor_total)
        weights = {}
        for account in tenants:
            score = (
                account.signal.score
                if account.signal is not None
                else self.policy.default_score
            )
            weights[account.runtime.name] = (
                QOS_WEIGHTS[account.runtime.qos] * max(score, 0.05)
            )
        total_weight = sum(weights.values())
        targets = {}
        for account in tenants:
            name = account.runtime.name
            share = int(surplus * weights[name] / total_weight)
            targets[name] = floors[name] + self._round_pages(share)
        return targets

    # -- rebalancing -------------------------------------------------------

    def rebalance_once(self) -> ProcessGenerator:
        """One marketplace round: shrink low-priority first, then grow.

        Shrinks run in ascending QoS order (reclaim-from-low-priority
        under pressure), grows in descending order, both subject to the
        per-tenant cooldown and the ``min_delta_pages`` dead band —
        except repairs: a tenant left without a healthy extension by a
        crash or an interrupted rebuild is fixed regardless of cooldown.
        A broker restart (:class:`~repro.broker.BrokerUnavailable`)
        aborts the round; every tenant resize is individually re-runnable,
        so the next round simply retries from a consistent state.
        """
        self.rounds += 1
        now = self.sim.now
        targets = self.desired_allocation()
        moves: list[tuple[_TenantAccount, int, int]] = []
        for name, target in targets.items():
            account = self._accounts[name]
            runtime = account.runtime
            delta = target - runtime.ext_pages
            if runtime.needs_repair:
                moves.append((account, target, delta))
                continue
            if abs(delta) < self.policy.min_delta_pages:
                continue
            if now - account.last_resize_us < self.policy.cooldown_us:
                continue
            moves.append((account, target, delta))
        shrinks = sorted(
            (m for m in moves if m[2] < 0 or m[0].runtime.needs_repair),
            key=lambda m: (m[0].runtime.qos, m[0].runtime.name),
        )
        grows = sorted(
            (m for m in moves if m[2] >= 0 and not m[0].runtime.needs_repair),
            key=lambda m: (-m[0].runtime.qos, m[0].runtime.name),
        )
        changed = 0
        for account, target, delta in shrinks + grows:
            runtime = account.runtime
            before = runtime.ext_pages
            try:
                yield from runtime.set_extension_pages(target)
            except InsufficientMemory:
                self.grow_deferred += 1
                continue
            except BrokerUnavailable:
                self.aborted_rounds += 1
                return changed
            account.last_resize_us = self.sim.now
            self.resizes += 1
            changed += 1
            moved = runtime.ext_pages - before
            if moved < 0:
                self.reclaimed_pages += -moved
            else:
                self.granted_pages += moved
        return changed

    def rebalance_daemon(self) -> ProcessGenerator:
        """Spawn with ``sim.spawn``: periodic marketplace rounds."""
        while True:
            yield self.sim.timeout(self.policy.period_us)
            yield from self.rebalance_once()


def verify_broker_consistency(
    broker: MemoryBroker, proxies: Optional[dict] = None
) -> dict[str, int]:
    """Assert lease/region/metadata invariants; returns a count summary.

    Used by the broker-restart race tests and fleet benchmarks: after
    any storm of reallocation racing faults,

    * every ACTIVE lease has a record in the replicated
      :class:`~repro.broker.MetadataStore` and vice versa (no
      double-grant survives a replayed recovery, no ghost records);
    * no region is simultaneously available and leased, and no region
      backs two leases;
    * (with ``proxies``) every MR offered by a live proxy is accounted
      for — available or leased — i.e. no orphaned MR.
    """
    active = broker.active_leases
    recorded = {
        key.rsplit("/", 1)[-1] for key in broker.store.peek_keys("leases/")
    }
    active_ids = {str(lease.lease_id) for lease in active}
    if active_ids != recorded:
        raise AssertionError(
            f"lease table diverged from metadata store: active={sorted(active_ids)} "
            f"recorded={sorted(recorded)}"
        )
    leased = [lease.region for lease in active]
    if len({id(region) for region in leased}) != len(leased):
        raise AssertionError("double-grant: one region backs two active leases")
    available = broker.available_regions()
    overlap = {id(r) for r in available} & {id(r) for r in leased}
    if overlap:
        raise AssertionError("region is both available and leased")
    if proxies:
        accounted = {id(r) for r in available} | {id(r) for r in leased}
        for name, proxy in sorted(proxies.items()):
            if not proxy.server.alive:
                continue
            for region in proxy.offered:
                if id(region) not in accounted:
                    raise AssertionError(
                        f"orphaned MR: {name} offered region {region.mr_id} is "
                        "neither available nor leased"
                    )
    return {
        "active_leases": len(active),
        "available_regions": len(available),
        "recorded_leases": len(recorded),
    }
