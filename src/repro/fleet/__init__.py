"""repro.fleet — a multi-tenant memory marketplace over one shared pool.

The paper provisions remote memory statically per database (Section
4.2); the fleet layer asks the next question — what happens when *tens*
of databases with shifting, bursty demand share one elastic pool?  It
composes the existing pieces (``repro.tiers`` topologies per tenant,
the brokered lease machinery, ``repro.faults`` storms, telemetry) into
fleet-scale scenarios:

* :mod:`~repro.fleet.topology` — declarative N×M fleets
  (:class:`FleetSpec` / :class:`TenantSpec` → :func:`build_fleet`,
  scenarios via :func:`run_fleet`);
* :mod:`~repro.fleet.tenants` — deterministic seeded traffic shapes
  (diurnal, flash crowd, Zipf hot-tenant skew) multiplexed onto the
  existing rangescan/TPC-H drivers;
* :mod:`~repro.fleet.marketplace` — demand-driven lease reallocation
  with QoS classes, cooldowns, and anti-affinity placement.
"""

from .marketplace import (
    QOS_WEIGHTS,
    DemandSignal,
    Marketplace,
    MarketplacePolicy,
    QosClass,
    verify_broker_consistency,
)
from .tenants import (
    DiurnalShape,
    FlashCrowdShape,
    SteadyShape,
    TenantReport,
    TenantWorkload,
    TrafficShape,
    zipf_shares,
)
from .topology import (
    DEFAULT_TENANT_TIER,
    FleetReport,
    FleetSetup,
    FleetSpec,
    TenantRuntime,
    TenantSpec,
    build_fleet,
    run_fleet,
)

__all__ = [
    "DEFAULT_TENANT_TIER",
    "DemandSignal",
    "DiurnalShape",
    "FlashCrowdShape",
    "FleetReport",
    "FleetSetup",
    "FleetSpec",
    "Marketplace",
    "MarketplacePolicy",
    "QOS_WEIGHTS",
    "QosClass",
    "SteadyShape",
    "TenantReport",
    "TenantRuntime",
    "TenantSpec",
    "TenantWorkload",
    "TrafficShape",
    "build_fleet",
    "run_fleet",
    "verify_broker_consistency",
    "zipf_shares",
]
