"""Per-tenant workload generators: deterministic seeded traffic shapes.

A tenant's offered load over virtual time is a :class:`TrafficShape` —
a pure function of time returning an intensity in ``[0, 1]``:

* :class:`SteadyShape` — flat load;
* :class:`DiurnalShape` — sinusoidal day/night cycle, phase-shiftable
  so two tenants can peak in anti-phase (the traffic-shift scenario);
* :class:`FlashCrowdShape` — a step to peak for a bounded window (the
  "millions of users showed up" case).

:func:`zipf_shares` skews *base* rates across a fleet (hot-tenant
skew), while hotspot key distributions inside a tenant reuse the
rangescan driver's own machinery.

The :class:`TenantWorkload` drives epochs: each epoch it reads the
shape, issues ``round(peak × intensity)`` queries across the tenant's
replicas (multiplexed onto the existing rangescan or TPC-H drivers),
records per-query latency into the tenant's telemetry, then publishes a
:class:`~repro.fleet.marketplace.DemandSignal`.  All randomness comes
from the cluster's named RNG streams, so the same seed replays the same
traffic — including under fault storms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..sim import LatencyRecorder
from ..sim.kernel import AllOf, ProcessGenerator
from ..workloads.rangescan import read_query, txn_update_query, update_query
from .marketplace import DemandSignal, Marketplace

if TYPE_CHECKING:  # pragma: no cover
    from .topology import TenantRuntime

__all__ = [
    "DiurnalShape",
    "FlashCrowdShape",
    "SteadyShape",
    "TenantReport",
    "TenantWorkload",
    "TrafficShape",
    "zipf_shares",
]


class TrafficShape:
    """Offered-load intensity as a pure function of virtual time."""

    def intensity(self, t_us: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class SteadyShape(TrafficShape):
    level: float = 1.0

    def intensity(self, t_us: float) -> float:
        return self.level


@dataclass(frozen=True)
class DiurnalShape(TrafficShape):
    """Sinusoidal day/night cycle between ``low`` and ``high``.

    ``phase`` is a fraction of the period: two tenants with phases 0.0
    and 0.5 peak in perfect anti-phase — the marketplace's bread and
    butter, memory following the sun.
    """

    period_us: float = 24e6
    low: float = 0.1
    high: float = 1.0
    phase: float = 0.0

    def intensity(self, t_us: float) -> float:
        cycle = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t_us / self.period_us + self.phase)))
        return self.low + (self.high - self.low) * cycle


@dataclass(frozen=True)
class FlashCrowdShape(TrafficShape):
    """Base load with a step to ``peak`` during ``[at_us, at_us + duration_us)``."""

    at_us: float
    duration_us: float
    base: float = 0.1
    peak: float = 1.0

    def intensity(self, t_us: float) -> float:
        if self.at_us <= t_us < self.at_us + self.duration_us:
            return self.peak
        return self.base


def zipf_shares(n: int, s: float = 1.2) -> list[float]:
    """Zipf(s) weights over ``n`` tenants, normalized to sum to 1.

    Rank 1 is the hot tenant; use to scale per-tenant peak rates so one
    tenant dominates the fleet's offered load (hot-tenant skew).
    """
    if n <= 0:
        return []
    raw = [1.0 / (rank**s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass
class _EpochRecord:
    epoch: int
    intensity: float
    issued: int
    miss_rate: float
    backlog_us: float


class TenantReport:
    """Per-tenant results of one fleet scenario."""

    def __init__(self, name: str):
        self.name = name
        self.queries = 0
        self.latency = LatencyRecorder(f"fleet.{name}")
        self.epochs: list[_EpochRecord] = []
        self.elapsed_us = 0.0

    @property
    def throughput_qps(self) -> float:
        return self.queries / (self.elapsed_us / 1e6) if self.elapsed_us > 0 else 0.0

    def as_dict(self) -> dict:
        """Exact (virtual-time deterministic) summary for reports."""
        return {
            "queries": self.queries,
            "throughput_qps": round(self.throughput_qps, 6),
            "latency_p50_ms": round(self.latency.percentile(50) / 1000.0, 6),
            "latency_p95_ms": round(self.latency.percentile(95) / 1000.0, 6),
            "latency_p99_ms": round(self.latency.percentile(99) / 1000.0, 6),
            "latency_mean_ms": round(self.latency.mean / 1000.0, 6),
            "epoch_issued": [record.issued for record in self.epochs],
        }


class TenantWorkload:
    """Epoch-driven driver multiplexing a tenant onto its replicas."""

    def __init__(
        self,
        runtime: "TenantRuntime",
        epochs: int,
        epoch_us: float,
        marketplace: Optional[Marketplace] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.runtime = runtime
        self.spec = runtime.spec
        self.epochs = epochs
        self.epoch_us = epoch_us
        self.marketplace = marketplace
        self.rng = (
            rng
            if rng is not None
            else runtime.cluster.rng.stream(f"fleet.tenant.{runtime.name}")
        )
        self.report = TenantReport(runtime.name)
        self._tpch_cursor = 0

    # -- query generation --------------------------------------------------

    def _start_keys(self, count: int) -> np.ndarray:
        spec = self.spec
        top = max(1, spec.n_rows - spec.range_size)
        if spec.distribution == "uniform":
            return self.rng.integers(0, top, size=count)
        hot_top = max(1, int(top * spec.hotspot_fraction))
        hot = self.rng.random(count) < spec.hotspot_probability
        keys = self.rng.integers(0, top, size=count)
        keys[hot] = self.rng.integers(0, hot_top, size=int(hot.sum()))
        return keys

    def _run_one(self, replica, start_key: int, update: bool) -> ProcessGenerator:
        db, table = replica.database, replica.table
        sim = db.sim
        begin = sim.now
        if self.spec.workload == "tpch":
            # db.execute charges query-setup CPU itself.
            spec = self.runtime.tpch_specs[self._tpch_cursor % len(self.runtime.tpch_specs)]
            self._tpch_cursor += 1
            plan, memory, consumers = spec.factory(db, replica.tpch_tables, self.rng)
            yield from db.execute(
                plan, requested_memory_bytes=memory, memory_consumers=consumers
            )
        elif update:
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            if self.spec.transactional:
                manager = db.transactions()
                yield from manager.run(
                    lambda txn, table=table, start_key=start_key: txn_update_query(
                        txn, table, start_key, self.spec.range_size
                    ),
                    name=f"{self.runtime.name}.update",
                )
            else:
                yield from update_query(db, table, start_key, self.spec.range_size)
        else:
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            yield from read_query(db, table, start_key, self.spec.range_size)
        latency = sim.now - begin
        self.report.latency.record(latency)
        self.report.queries += 1
        self.runtime.record_query(latency)

    def _epoch_queries(self, count: int) -> list[ProcessGenerator]:
        """Plan one epoch: draw keys, split work over replicas/workers."""
        replicas = self.runtime.replicas
        starts = self._start_keys(count)
        updates = (
            self.rng.random(count) < self.spec.update_fraction
            if self.spec.update_fraction > 0
            else np.zeros(count, dtype=bool)
        )
        workers: list[ProcessGenerator] = []
        n_lanes = max(1, min(self.spec.workers * len(replicas), count))

        def lane(lane_index: int) -> ProcessGenerator:
            for position in range(lane_index, count, n_lanes):
                replica = replicas[position % len(replicas)]
                yield from self._run_one(
                    replica, int(starts[position]), bool(updates[position])
                )

        for lane_index in range(n_lanes):
            workers.append(lane(lane_index))
        return workers

    # -- the epoch loop ----------------------------------------------------

    def run(self) -> ProcessGenerator:
        sim = self.runtime.sim
        start = sim.now
        for epoch in range(self.epochs):
            epoch_begin = epoch * self.epoch_us
            target_end = start + (epoch + 1) * self.epoch_us
            level = self.spec.shape.intensity(epoch_begin)
            count = int(round(self.spec.peak_queries_per_epoch * level))
            hits0, misses0 = self.runtime.ext_counters()
            if count > 0:
                lanes = [sim.spawn(g) for g in self._epoch_queries(count)]
                yield AllOf(sim, lanes)
            hits1, misses1 = self.runtime.ext_counters()
            lookups = (hits1 - hits0) + (misses1 - misses0)
            miss_rate = (misses1 - misses0) / lookups if lookups > 0 else 0.0
            backlog_us = max(0.0, sim.now - target_end)
            self.report.epochs.append(
                _EpochRecord(epoch, level, count, round(miss_rate, 6), backlog_us)
            )
            if self.marketplace is not None:
                self.marketplace.report_demand(
                    self.runtime.name,
                    DemandSignal(
                        at_us=sim.now,
                        intensity=level,
                        miss_rate=miss_rate,
                        backlog_us=backlog_us,
                        offered=count,
                    ),
                )
            if sim.now < target_end:
                yield sim.timeout(target_end - sim.now)
        self.report.elapsed_us = sim.now - start
        return self.report
