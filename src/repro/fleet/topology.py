"""Fleet topology: N database servers × M memory servers as pure data.

The paper stops at a handful of servers (Figures 5/6/25); the fleet
layer instantiates *tens* from declarative specs.  A :class:`FleetSpec`
names M memory servers and a set of :class:`TenantSpec`\\ s; every
tenant gets ``replicas`` database servers, each running its own engine
over the tenant's :class:`~repro.tiers.TierSpec` (the PR-5 grammar:
remote tiers lease from the shared broker through a per-replica
:class:`~repro.remotefile.RemoteMemoryFilesystem`, local tiers attach
devices).  All tenants share one simulator, network, broker and
metadata store — one elastic pool, many databases.

:func:`build_fleet` is the builder; :func:`run_fleet` drives a full
scenario (tenant workloads × optional marketplace × optional fault
plan) and returns a :class:`FleetReport` whose ``as_dict()`` is exactly
reproducible for a given seed — the determinism contract the fleet CI
smoke job asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..broker import MemoryBroker, MemoryProxy
from ..cluster import Cluster, Server
from ..engine import Database, DevicePageFile, RemotePageFile
from ..engine.bufferpool import BufferPoolExtension
from ..engine.page import PAGE_SIZE
from ..faults import FaultEngine, FaultPlan
from ..net import Network
from ..remotefile import RemoteFile, RemoteMemoryFilesystem, StagingPool
from ..sim.kernel import AllOf, ProcessGenerator
from ..storage import GB, MB, Raid0Array, SsdDevice
from ..telemetry import MetricsRegistry
from ..tiers import Tier, TierDef, TierSpec, build_stack
from ..workloads import TpchScale, build_customer_table
from ..workloads.tpch import build_tpch_database, tpch_query_specs
from .marketplace import Marketplace, MarketplacePolicy, QosClass, verify_broker_consistency
from .tenants import SteadyShape, TenantWorkload, TrafficShape

__all__ = [
    "DEFAULT_TENANT_TIER",
    "FleetReport",
    "FleetSetup",
    "FleetSpec",
    "TenantRuntime",
    "TenantSpec",
    "build_fleet",
    "run_fleet",
]

#: The classic NDSPI single-tier remote extension, per tenant.
DEFAULT_TENANT_TIER = TierSpec(
    name="fleet-ndspi",
    extension=(TierDef(medium="remote"),),
    tempdb="hdd",
    wal="hdd",
    semcache="ssd",
    protocol="ndspi",
)

#: File-id base for fleet extension stores (dbbench uses 900 for its
#: single engine; fleet replicas each own a database so ids only need
#: to be unique within one replica).
FLEET_EXT_FILE_ID = 900


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: QoS class, replica count, data, traffic, tier shape."""

    name: str
    qos: QosClass = QosClass.SILVER
    #: Database servers running this tenant (round-robin multiplexed).
    replicas: int = 1
    #: Offered-load intensity over virtual time.
    shape: TrafficShape = field(default_factory=SteadyShape)
    #: Queries issued per epoch at intensity 1.0 (whole tenant).
    peak_queries_per_epoch: int = 200
    #: Concurrent query lanes per replica.
    workers: int = 8
    #: DRAM buffer-pool pages per replica.
    bp_pages: int = 96
    #: Initial extension pages (whole tenant; the static partition).
    ext_pages: int = 1024
    #: Marketplace floor — never reclaimed below this (``None`` =
    #: half the initial allocation).
    floor_pages: Optional[int] = None
    #: Rows in the per-replica Customer table (rangescan tenants).
    n_rows: int = 10_000
    range_size: int = 100
    update_fraction: float = 0.0
    distribution: str = "uniform"  # "uniform" | "hotspot"
    hotspot_fraction: float = 0.2
    hotspot_probability: float = 0.99
    #: "rangescan" or "tpch" — which existing driver queries multiplex onto.
    workload: str = "rangescan"
    #: Run rangescan updates inside real transactions (2PL + undo +
    #: retry, see :mod:`repro.txn`) instead of the legacy single-record
    #: autocommit path.  Off by default: the legacy path is the golden
    #: baseline for existing fleet scenarios.
    transactional: bool = False
    tpch_scale: TpchScale = field(
        default_factory=lambda: TpchScale(orders=600, customers=60, parts=80, suppliers=10)
    )
    #: Memory-hierarchy topology (PR-5 grammar) for every replica.
    tier: TierSpec = DEFAULT_TENANT_TIER

    def resolved_floor(self) -> int:
        return self.floor_pages if self.floor_pages is not None else self.ext_pages // 2


@dataclass(frozen=True)
class FleetSpec:
    """The whole fleet, declaratively."""

    tenants: tuple[TenantSpec, ...]
    name: str = "fleet"
    memory_servers: int = 4
    #: MR granularity for the whole pool (small, so reallocation is fine-grained).
    mr_bytes: int = 2 * MB
    #: Total brokered pool size; ``None`` = 2.5x the tenants' initial
    #: extension footprint (room for the marketplace to triple a share).
    pool_bytes: Optional[int] = None
    seed: int = 0
    #: Long leases: fleet scenarios exercise *reallocation*, not expiry
    #: (the fault layer force-expires when a storm wants it).
    lease_duration_us: float = 600e6
    db_cores: int = 8
    spindles: int = 8

    def __post_init__(self):
        if not self.tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")

    @property
    def db_servers(self) -> int:
        return sum(tenant.replicas for tenant in self.tenants)

    def total_initial_ext_bytes(self) -> int:
        return sum(tenant.ext_pages for tenant in self.tenants) * PAGE_SIZE


class TenantReplica:
    """One database server's worth of a tenant."""

    def __init__(self, index: int, server: Server, fs: RemoteMemoryFilesystem):
        self.index = index
        self.server = server
        self.fs = fs
        self.database: Database = None  # type: ignore[assignment]
        self.table = None
        self.tpch_tables: Optional[dict] = None
        #: The remote extension level the marketplace resizes (None for
        #: tenants whose tier spec keeps everything local).
        self.remote_level: Optional[BufferPoolExtension] = None
        self.file: Optional[RemoteFile] = None
        self.ext_file_id: int = FLEET_EXT_FILE_ID
        self.ext_pages: int = 0
        #: False between a torn-down old store and an opened new one
        #: (e.g. a broker restart interrupting a rebuild).
        self.healthy: bool = True


class TenantRuntime:
    """Live state of one tenant: replicas, telemetry, resize machinery."""

    def __init__(
        self,
        spec: TenantSpec,
        cluster: Cluster,
        registry: MetricsRegistry,
        mr_pages: int,
    ):
        self.spec = spec
        self.cluster = cluster
        self.sim = cluster.sim
        self.registry = registry
        self.mr_pages = mr_pages
        self.replicas: list[TenantReplica] = []
        self.resizes = 0
        self._file_seq = 0
        prefix = f"fleet.tenant.{spec.name}"
        self.query_counter = registry.counter(f"{prefix}.queries")
        self.latency_hist = registry.histogram(f"{prefix}.latency")
        self.revoked_counter = registry.counter(f"{prefix}.leases_revoked")
        registry.gauge(f"{prefix}.ext_pages", lambda: float(self.ext_pages))
        registry.gauge(f"{prefix}.resizes", lambda: float(self.resizes))
        for stat in (
            "begins", "commits", "aborts", "deadlock_aborts", "doom_aborts",
            "dooms", "retries", "exhausted", "deadlocks_detected",
            "lock_waits", "lock_wait_us",
        ):
            registry.gauge(
                f"{prefix}.txn.{stat}",
                lambda stat=stat: float(self.txn_stats().get(stat, 0.0)),
            )
        self.tpch_specs = tpch_query_specs() if spec.workload == "tpch" else []

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def qos(self) -> QosClass:
        return self.spec.qos

    @property
    def floor_pages(self) -> int:
        return self.spec.resolved_floor()

    def holders(self) -> list[str]:
        """Broker holder names (one per replica database server)."""
        return [replica.server.name for replica in self.replicas]

    # -- extension accounting ---------------------------------------------

    @property
    def resizable(self) -> bool:
        return any(replica.remote_level is not None for replica in self.replicas)

    @property
    def ext_pages(self) -> int:
        return sum(
            replica.ext_pages
            for replica in self.replicas
            if replica.remote_level is not None
        )

    @property
    def needs_repair(self) -> bool:
        return any(
            replica.remote_level is not None and not replica.healthy
            for replica in self.replicas
        )

    def txn_stats(self) -> dict[str, float]:
        """Transaction counters summed over replicas (0s when no
        replica ever started a transaction — the gauges always exist)."""
        totals: dict[str, float] = {}
        for replica in self.replicas:
            manager = getattr(replica.database, "_txn_manager", None)
            if manager is None:
                continue
            for key, value in manager.stats().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def ext_counters(self) -> tuple[int, int]:
        """(hits, misses) summed over every replica's extension stack."""
        hits = misses = 0
        for replica in self.replicas:
            extension = replica.database.pool.extension
            if extension is None:
                continue
            levels = getattr(extension, "levels", None)
            for level in levels if levels is not None else (extension,):
                hits += level.hits
                misses += level.misses
        return hits, misses

    # -- telemetry hooks ---------------------------------------------------

    def record_query(self, latency_us: float) -> None:
        self.query_counter.add()
        self.latency_hist.record(latency_us)

    def on_lease_revoked(self, lease) -> None:
        """Marketplace revocation observer: invalidate parked pages on
        the revoked lease's provider for the replica that held it."""
        self.revoked_counter.add()
        for replica in self.replicas:
            if replica.server.name == lease.holder and replica.remote_level is not None:
                replica.remote_level.on_fault(provider=lease.provider)

    # -- resizing ----------------------------------------------------------

    def _per_replica(self, pages: int, n_replicas: Optional[int] = None) -> int:
        if n_replicas is None:
            n_replicas = len([r for r in self.replicas if r.remote_level is not None])
        per = pages // max(1, n_replicas)
        return max(self.mr_pages, (per // self.mr_pages) * self.mr_pages)

    def set_extension_pages(self, pages: int) -> ProcessGenerator:
        """Resize every replica's remote extension to its share of
        ``pages`` — release-then-acquire, idempotent, re-runnable.

        The old file's leases are relinquished *before* the new file is
        created (reclaim must never deadlock on a full pool), so the
        extension restarts cold and re-warms — the cost the
        marketplace's cooldown exists to amortize.  If the broker dies
        mid-rebuild the replica is left disabled-but-consistent
        (``healthy=False``) and the next call finishes the job.
        """
        per = self._per_replica(pages)
        changed = 0
        for replica in self.replicas:
            if replica.remote_level is None:
                continue
            if replica.ext_pages == per and replica.healthy:
                continue
            yield from self._rebuild_replica(replica, per)
            changed += 1
        if changed:
            self.resizes += 1
        return changed

    def _rebuild_replica(self, replica: TenantReplica, per: int) -> ProcessGenerator:
        level = replica.remote_level
        level.enabled = False
        replica.healthy = False
        if replica.file is not None:
            # Re-runnable: release() skips non-ACTIVE leases, so a retry
            # after a broker restart only relinquishes the remainder.
            yield from replica.fs.delete(replica.file)
            replica.file = None
        name = f"{self.name}.{replica.index}.ext.{self._file_seq}"
        self._file_seq += 1
        file = yield from replica.fs.create(name, per * PAGE_SIZE)
        yield from file.open()
        level.replace_store(
            RemotePageFile(replica.ext_file_id, file, capacity_pages=per)
        )
        replica.file = file
        replica.ext_pages = per
        replica.healthy = True


@dataclass
class FleetSetup:
    """Everything a fleet scenario needs to run."""

    spec: FleetSpec
    cluster: Cluster
    network: Network
    broker: MemoryBroker
    memory_servers: list[Server] = field(default_factory=list)
    proxies: dict[str, MemoryProxy] = field(default_factory=dict)
    tenants: dict[str, TenantRuntime] = field(default_factory=dict)
    marketplace: Optional[Marketplace] = None
    metrics: Optional[MetricsRegistry] = None

    @property
    def sim(self):
        return self.cluster.sim

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))

    def fault_engine(self, monitor=None) -> FaultEngine:
        """A fault engine whose extension surface spans every tenant."""
        return FaultEngine(
            sim=self.sim,
            servers=dict(self.cluster.servers),
            broker=self.broker,
            proxies=dict(self.proxies),
            extension=_FleetExtensionSurface(self),
            monitor=monitor,
            rng=self.cluster.rng.stream("fleet.faults"),
        )


class _FleetExtensionSurface:
    """Fans ``on_fault`` out to every tenant replica's extension."""

    def __init__(self, setup: FleetSetup):
        self.setup = setup

    def on_fault(self, provider: str | None = None) -> list:
        lost: list = []
        for _name, runtime in sorted(self.setup.tenants.items()):
            for replica in runtime.replicas:
                extension = replica.database.pool.extension
                if extension is None:
                    continue
                lost.extend(extension.on_fault(provider=provider))
        return lost


def build_fleet(
    spec: FleetSpec,
    marketplace: MarketplacePolicy | bool | None = None,
    metrics: MetricsRegistry | None = None,
) -> FleetSetup:
    """Assemble the fleet: shared pool, brokered tenants, telemetry.

    With ``marketplace=None`` the fleet is *statically partitioned*:
    every tenant keeps its initial ``ext_pages`` forever (leases spread
    across providers, Figure-5 style).  Passing a
    :class:`~repro.fleet.MarketplacePolicy` (or ``True`` for defaults)
    installs the marketplace **before** any lease is placed, so
    anti-affinity governs initial placement too.
    """
    cluster = Cluster(seed=spec.seed)
    sim = cluster.sim
    network = Network(sim)
    registry = metrics if metrics is not None else MetricsRegistry(f"fleet.{spec.name}")
    broker = MemoryBroker(sim, lease_duration_us=spec.lease_duration_us)

    pool_bytes = (
        spec.pool_bytes
        if spec.pool_bytes is not None
        else int(spec.total_initial_ext_bytes() * 2.5)
    )
    per_server_bytes = (
        math.ceil(pool_bytes / spec.memory_servers / spec.mr_bytes) * spec.mr_bytes
    )

    setup = FleetSetup(
        spec=spec, cluster=cluster, network=network, broker=broker, metrics=registry
    )

    market = None
    if marketplace:
        policy = marketplace if isinstance(marketplace, MarketplacePolicy) else None
        market = Marketplace(
            sim, broker, policy=policy, registry=registry, mr_bytes=spec.mr_bytes
        )
        setup.marketplace = market

    for index in range(spec.memory_servers):
        server = cluster.add_server(
            f"mem{index}", memory_bytes=per_server_bytes + 64 * GB
        )
        network.attach(server)
        proxy = MemoryProxy(server, broker, mr_bytes=spec.mr_bytes)
        setup.memory_servers.append(server)
        setup.proxies[server.name] = proxy
        setup.run(proxy.offer_available(limit_bytes=per_server_bytes))

    mr_pages = max(1, spec.mr_bytes // PAGE_SIZE)
    spread_initial = market is None and spec.memory_servers > 1
    for tenant in spec.tenants:
        runtime = TenantRuntime(tenant, cluster, registry, mr_pages)
        per_replica = runtime._per_replica(tenant.ext_pages, n_replicas=tenant.replicas)
        plan = tenant.tier.resolve(
            analytic=False, bpext_pages=per_replica, tempdb_pages=0
        )
        for index in range(tenant.replicas):
            server = cluster.add_server(
                f"{tenant.name}-{index}", cores=spec.db_cores, memory_bytes=64 * GB
            )
            network.attach(server)
            hdd = server.attach_device(
                "hdd",
                Raid0Array(
                    sim,
                    spindles=spec.spindles,
                    rng=cluster.rng.stream(f"hdd.{tenant.name}.{index}"),
                ),
            )
            ssd = server.attach_device("ssd", SsdDevice(sim))
            local_media = {"hdd": hdd, "ssd": ssd}
            fs = RemoteMemoryFilesystem(server, broker, StagingPool(server))
            setup.run(fs.initialize())
            replica = TenantReplica(index, server, fs)

            tiers: list[Tier] = []
            for tier_index, resolved in enumerate(plan.extension):
                file_id = FLEET_EXT_FILE_ID + 10 * tier_index
                if resolved.medium == "remote":
                    def bootstrap(fs=fs, resolved=resolved):
                        file = yield from fs.create(
                            f"{tenant.name}.{index}.{resolved.name}.0",
                            resolved.capacity_pages * PAGE_SIZE,
                            spread=spread_initial,
                        )
                        yield from file.open()
                        return file

                    file = setup.run(bootstrap())
                    store = RemotePageFile(
                        file_id, file, capacity_pages=resolved.capacity_pages
                    )
                else:
                    store = DevicePageFile(
                        file_id,
                        server,
                        local_media[resolved.medium],
                        capacity_pages=resolved.capacity_pages,
                    )
                tiers.append(
                    Tier(
                        name=resolved.name,
                        store=store,
                        medium=resolved.medium,
                        latency_class=resolved.latency_class,
                        promote_on_hit=resolved.promote_on_hit,
                    )
                )
            extension = build_stack(tiers)
            database = Database(
                server, bp_pages=tenant.bp_pages, data_device=hdd, extension=extension
            )
            replica.database = database

            # Find the remote level the marketplace resizes (if any).
            if extension is not None:
                levels = getattr(extension, "levels", None)
                for level in levels if levels is not None else (extension,):
                    if isinstance(level.store, RemotePageFile):
                        replica.remote_level = level
                        replica.ext_file_id = level.store.file_id
                        replica.file = level.store.remote_file
                        replica.ext_pages = level.capacity_pages
                        break

            if tenant.workload == "tpch":
                replica.tpch_tables = build_tpch_database(
                    database, tenant.tpch_scale, seed=spec.seed
                )
            else:
                replica.table = build_customer_table(database, tenant.n_rows)
            runtime.replicas.append(replica)

        setup.tenants[tenant.name] = runtime
        if market is not None:
            market.adopt(runtime)
    return setup


@dataclass
class FleetReport:
    """One scenario's results: per-tenant and fleet-wide."""

    name: str
    seed: int
    elapsed_us: float
    tenants: dict[str, dict]
    aggregate_qps: float
    marketplace: Optional[dict] = None
    consistency: Optional[dict] = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "elapsed_us": round(self.elapsed_us, 3),
            "aggregate_qps": round(self.aggregate_qps, 6),
            "tenants": self.tenants,
            "marketplace": self.marketplace,
            "consistency": self.consistency,
        }


def run_fleet(
    setup: FleetSetup,
    epochs: int,
    epoch_us: float = 2e6,
    fault_plan: Optional[FaultPlan] = None,
    monitor=None,
) -> FleetReport:
    """Drive every tenant for ``epochs`` epochs; returns the report.

    Spawns the marketplace rebalance daemon (when installed) and an
    optional fault plan alongside the tenant workloads, waits for every
    workload to finish, then verifies broker/metadata consistency —
    whatever storm just happened, the lease table must balance.
    """
    sim = setup.sim
    workloads = {
        name: TenantWorkload(
            runtime, epochs=epochs, epoch_us=epoch_us, marketplace=setup.marketplace
        )
        for name, runtime in sorted(setup.tenants.items())
    }
    if setup.marketplace is not None:
        sim.spawn(setup.marketplace.rebalance_daemon(), name="fleet.marketplace")
    if fault_plan is not None:
        engine = setup.fault_engine(monitor=monitor)
        engine.run_plan(fault_plan)
    begin = sim.now
    processes = [
        sim.spawn(workload.run(), name=f"fleet.tenant.{name}")
        for name, workload in workloads.items()
    ]

    def waiter() -> ProcessGenerator:
        yield AllOf(sim, processes)

    sim.run_until_complete(sim.spawn(waiter()))
    elapsed = sim.now - begin

    tenants: dict[str, dict] = {}
    aggregate = 0.0
    for name, workload in workloads.items():
        runtime = setup.tenants[name]
        summary = workload.report.as_dict()
        summary["qos"] = runtime.qos.name
        summary["ext_pages_final"] = runtime.ext_pages
        summary["resizes"] = runtime.resizes
        summary["leases_revoked"] = int(runtime.revoked_counter.value)
        if runtime.spec.transactional:
            summary["txn"] = runtime.txn_stats()
        tenants[name] = summary
        aggregate += workload.report.throughput_qps

    market = setup.marketplace
    market_summary = None
    if market is not None:
        market_summary = {
            "rounds": market.rounds,
            "resizes": market.resizes,
            "reclaimed_pages": market.reclaimed_pages,
            "granted_pages": market.granted_pages,
            "grow_deferred": market.grow_deferred,
            "aborted_rounds": market.aborted_rounds,
            "revocations": market.revocations_seen,
        }
    consistency = verify_broker_consistency(setup.broker, setup.proxies)
    return FleetReport(
        name=setup.spec.name,
        seed=setup.spec.seed,
        elapsed_us=elapsed,
        tenants=tenants,
        aggregate_qps=round(aggregate, 6),
        marketplace=market_summary,
        consistency=consistency,
    )
