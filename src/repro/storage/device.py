"""Block-device abstraction shared by every storage medium.

A device accepts read/write requests of ``(offset, size)`` and completes
them after a modelled service time.  All devices expose the same two
entry points:

* :meth:`BlockDevice.submit` — returns an :class:`~repro.sim.Event` that
  fires when the I/O completes (value = latency in µs), and
* :meth:`BlockDevice.io` — a ``yield from``-able generator wrapper.

Devices also keep counters used by the drill-down figures (bytes moved,
per-operation latencies).
"""

from __future__ import annotations

import abc
from enum import Enum

from ..sim import Event, LatencyRecorder, Simulator, TimeSeries
from ..sim.kernel import ProcessGenerator

__all__ = [
    "IoOp",
    "BlockDevice",
    "DeviceUnavailable",
    "DramDevice",
    "RamDrive",
    "KB",
    "MB",
    "GB",
    "PAGE_SIZE",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Database page size used throughout (SQL Server uses 8K pages).
PAGE_SIZE = 8 * KB


class IoOp(Enum):
    READ = "read"
    WRITE = "write"


class DeviceUnavailable(RuntimeError):
    """The device's host server is down (fault injection)."""


class BlockDevice(abc.ABC):
    """Base class: queueing and accounting common to all media."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.read_latency = LatencyRecorder(f"{name}.read")
        self.write_latency = LatencyRecorder(f"{name}.write")
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        self.throughput_series: TimeSeries | None = None
        #: Host server, set by :meth:`repro.cluster.Server.attach_device`;
        #: submissions are refused while the host is down.
        self.owner = None
        # Span names are hot-path constants; build them once.
        self._span_names = {op: f"{name}.{op.value}" for op in IoOp}

    def track_throughput(self, bucket_us: float = 1e6) -> TimeSeries:
        """Start recording bytes-moved per time bucket (drill-downs)."""
        self.throughput_series = TimeSeries(bucket_us, name=f"{self.name}.bytes")
        return self.throughput_series

    # -- subclass contract ----------------------------------------------

    @abc.abstractmethod
    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        """Advance virtual time by the device's service model."""

    # -- public API ------------------------------------------------------

    def io(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        """Perform one I/O; returns the observed latency in µs."""
        if size <= 0:
            raise ValueError(f"I/O size must be positive, got {size}")
        if offset < 0:
            raise ValueError(f"I/O offset must be >= 0, got {offset}")
        start = self.sim.now
        if self.sim.tracer.enabled:
            with self.sim.tracer.span(self._span_names[op], cat="disk", size=size):
                yield from self._service(op, offset, size)
        else:
            yield from self._service(op, offset, size)
        latency = self.sim.now - start
        self._account(op, size, latency)
        return latency

    def submit(self, op: IoOp, offset: int, size: int) -> Event:
        """Fire-and-collect variant of :meth:`io`."""
        if self.owner is not None and not self.owner.alive:
            raise DeviceUnavailable(f"{self.name}: host server is down")
        return self.sim.spawn(self.io(op, offset, size), name=f"{self.name}.{op.value}")

    def read(self, offset: int, size: int) -> ProcessGenerator:
        return (yield from self.io(IoOp.READ, offset, size))

    def write(self, offset: int, size: int) -> ProcessGenerator:
        return (yield from self.io(IoOp.WRITE, offset, size))

    def _account(self, op: IoOp, size: int, latency: float) -> None:
        if op is IoOp.READ:
            self.reads += 1
            self.bytes_read += size
            self.read_latency.record(latency)
        else:
            self.writes += 1
            self.bytes_written += size
            self.write_latency.record(latency)
        if self.throughput_series is not None:
            self.throughput_series.add(self.sim.now, size)

    def reset_stats(self) -> None:
        self.read_latency.reset()
        self.write_latency.reset()
        self.bytes_read = self.bytes_written = 0
        self.reads = self.writes = 0
        if self.throughput_series is not None:
            self.throughput_series.reset()


class DramDevice(BlockDevice):
    """Local DRAM treated as a block device (the *Local Memory* design).

    Access cost is ~0.1 µs plus a very high-bandwidth copy; effectively
    two orders of magnitude faster than remote memory, as the paper
    notes in Section 6.
    """

    ACCESS_US = 0.1
    BANDWIDTH_BYTES_PER_US = 30 * GB / 1e6  # ~30 GB/s memcpy bandwidth

    def __init__(self, sim: Simulator, name: str = "dram"):
        super().__init__(sim, name)
        self._pipe = sim.resource(capacity=8, name=f"{name}.channels")

    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        yield self._pipe.request()
        try:
            yield self.sim.timeout(self.ACCESS_US + size / self.BANDWIDTH_BYTES_PER_US)
        finally:
            self._pipe.release()


class RamDrive(BlockDevice):
    """A RAM-backed drive mounted on a (remote) server.

    This is the third-party RamDrive of the *SMB+RamDrive* and
    *SMBDirect+RamDrive* baselines: plain memory speed locally; the
    network protocol on top is what differentiates the baselines.
    """

    ACCESS_US = 1.0
    BANDWIDTH_BYTES_PER_US = 10 * GB / 1e6

    def __init__(self, sim: Simulator, name: str = "ramdrive"):
        super().__init__(sim, name)
        self._pipe = sim.resource(capacity=4, name=f"{name}.pipe")

    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        yield self._pipe.request()
        try:
            yield self.sim.timeout(self.ACCESS_US + size / self.BANDWIDTH_BYTES_PER_US)
        finally:
            self._pipe.release()
