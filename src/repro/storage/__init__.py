"""Storage substrate: HDD spindles, RAID-0, SSD, RAM-backed devices."""

from .device import (
    GB,
    KB,
    MB,
    PAGE_SIZE,
    BlockDevice,
    DeviceUnavailable,
    DramDevice,
    IoOp,
    RamDrive,
)
from .hdd import HDD_PROFILE, HddSpindle, Raid0Array
from .ssd import SSD_PROFILE, SsdDevice

__all__ = [
    "GB",
    "KB",
    "MB",
    "PAGE_SIZE",
    "BlockDevice",
    "DeviceUnavailable",
    "DramDevice",
    "HDD_PROFILE",
    "HddSpindle",
    "IoOp",
    "Raid0Array",
    "RamDrive",
    "SSD_PROFILE",
    "SsdDevice",
]
