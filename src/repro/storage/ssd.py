"""SSD model calibrated to the paper's SAS SLC drive (Table 3, Fig 3/4).

The 2013-era enterprise SAS SSD behind the RAID controller shows:

* random 8K reads : ~0.24 GB/s at 20 outstanding (≈30 K IOPS, ~620 µs
  latency at saturation),
* sequential 512K : ~0.39 GB/s — *slower* than the 20-spindle RAID-0
  array, which drives the paper's decision to disable BPExt for the
  analytic workloads in the HDD/HDD+SSD baselines.

The model is a serialized controller pipe: each request occupies the
pipe for ``per_op + size / bandwidth``; a parallel fixed access latency
covers flash read + controller dispatch so single-threaded latency stays
realistic without affecting saturated throughput.
"""

from __future__ import annotations

from ..sim import Simulator
from ..sim.kernel import ProcessGenerator
from .device import MB, BlockDevice, IoOp

__all__ = ["SsdDevice", "SSD_PROFILE"]


class SsdProfile:
    #: Fixed per-request controller/command overhead (serialized).
    per_op_us = 12.5
    #: Media/interface streaming bandwidth.
    bandwidth_bytes_per_us = 400 * MB / 1e6
    #: Parallel access latency (flash read, not serialized).
    access_us = 100.0
    #: Writes are slower on SLC-era drives: program time multiplier.
    write_penalty = 1.5


SSD_PROFILE = SsdProfile()


class SsdDevice(BlockDevice):
    """Single SSD with one controller pipe and parallel flash access."""

    def __init__(self, sim: Simulator, name: str = "ssd", profile: SsdProfile = SSD_PROFILE):
        super().__init__(sim, name)
        self.profile = profile
        self._pipe = sim.resource(capacity=1, name=f"{name}.pipe")

    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        profile = self.profile
        # Flash access happens for all queued requests in parallel.
        access = self.sim.timeout(profile.access_us)
        pipe_time = profile.per_op_us + size / profile.bandwidth_bytes_per_us
        if op is IoOp.WRITE:
            pipe_time *= profile.write_penalty
        yield self._pipe.request()
        try:
            yield self.sim.timeout(pipe_time)
        finally:
            self._pipe.release()
        if not access.processed:
            yield access
