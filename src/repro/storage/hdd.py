"""Spinning-disk model and RAID-0 striping.

Calibrated against the paper's Table 3 hardware (1 TB 7.2K RPM NL-SAS
drives behind a Dell PERC H710P RAID controller) and the SQLIO results
of Figures 3/4:

* random 8K read  : several ms per request per spindle (seek distance +
  rotational latency),
* sequential read : ~90 MB/s per spindle, so a 20-spindle RAID-0 array
  sustains ~1.8 GB/s — *faster* sequentially than the SSD, which is why
  the paper keeps analytic data files on the HDD array (Table 5).

Each spindle services its queue with a C-LOOK elevator (like the RAID
controller's NCQ): requests are picked in ascending offset order from
the current head position, so concurrent sequential streams keep
streaming even when random probes interleave — the behaviour mixed
OLTP/scan workloads depend on.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from ..sim import Simulator
from ..sim.kernel import AllOf, ProcessGenerator
from .device import KB, MB, GB, BlockDevice, IoOp

__all__ = ["HddSpindle", "Raid0Array", "HDD_PROFILE"]


class HddProfile:
    """Tunable characteristics of one spindle."""

    #: Head settle when the request exactly continues the previous one.
    sequential_access_us = 50.0
    #: Positioning for short hops (same cylinder group, < near_bytes).
    near_seek_us = 600.0
    near_bytes = 2 * MB
    #: Rotational latency (half a revolution at 7.2K RPM) for any
    #: non-contiguous access.
    rotational_us = 2100.0
    #: Seek-time curve: base + span * sqrt(distance / reference).
    seek_base_us = 400.0
    seek_span_us = 2900.0
    seek_reference_bytes = 2 * 1024 * GB
    #: Jitter applied to positioning (uniform +/- fraction).
    random_jitter = 0.25
    #: Media transfer rate.
    transfer_bytes_per_us = 90 * MB / 1e6
    #: Drive read-ahead (track) cache: segment count and how far past a
    #: served request each segment extends.  This is what lets several
    #: concurrent sequential streams coexist on one spindle.
    cache_segments = 8
    cache_readahead_bytes = 2 * MB
    cache_hit_us = 100.0
    #: Read-ahead only engages for streaming-sized requests; drives do
    #: not speculatively buffer megabytes after a random 8K probe.
    cache_fill_min_bytes = 64 * KB


HDD_PROFILE = HddProfile()


class HddSpindle(BlockDevice):
    """One disk: C-LOOK elevator over the queue; seeks cost by distance."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "hdd",
        profile: HddProfile = HDD_PROFILE,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(sim, name)
        self.profile = profile
        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Pending requests: (offset, size, completion event).
        self._pending: list[tuple[int, int, object]] = []
        self._head_pos = 0
        #: Read-ahead cache segments: (start, end), most recent last.
        self._segments: deque[tuple[int, int]] = deque(
            maxlen=profile.cache_segments
        )
        self._signal = sim.store(name=f"{name}.signal")
        sim.spawn(self._server(), name=f"{name}.server")

    def _positioning_us(self, offset: int) -> float:
        profile = self.profile
        distance = abs(offset - self._head_pos)
        if distance == 0:
            return profile.sequential_access_us
        if distance <= profile.near_bytes:
            return profile.near_seek_us
        seek = profile.seek_base_us + profile.seek_span_us * math.sqrt(
            min(1.0, distance / profile.seek_reference_bytes)
        )
        jitter = 1.0 + profile.random_jitter * (2.0 * self._rng.random() - 1.0)
        return (profile.rotational_us + seek) * jitter

    def _pick_next(self) -> int:
        """C-LOOK: lowest offset at/after the head, else wrap to lowest."""
        best_after = None
        best_any = None
        for index, (offset, _size, _event) in enumerate(self._pending):
            if best_any is None or offset < self._pending[best_any][0]:
                best_any = index
            if offset >= self._head_pos and (
                best_after is None or offset < self._pending[best_after][0]
            ):
                best_after = index
        return best_after if best_after is not None else best_any

    def _cache_lookup(self, offset: int, size: int) -> bool:
        for start, end in self._segments:
            if start <= offset and offset + size <= end:
                return True
        return False

    def _cache_fill(self, offset: int, size: int) -> None:
        self._segments.append(
            (offset, offset + size + self.profile.cache_readahead_bytes)
        )

    def _server(self) -> ProcessGenerator:
        profile = self.profile
        while True:
            yield self._signal.get()
            while self._pending:
                index = self._pick_next()
                offset, size, event = self._pending.pop(index)
                transfer = size / profile.transfer_bytes_per_us
                if self._cache_lookup(offset, size):
                    # Served from the drive's read-ahead cache: the head
                    # does not move.
                    yield self.sim.timeout(profile.cache_hit_us + transfer)
                else:
                    positioning = self._positioning_us(offset)
                    self._head_pos = offset + size
                    if size >= profile.cache_fill_min_bytes:
                        self._cache_fill(offset, size)
                    yield self.sim.timeout(positioning + transfer)
                event.succeed()

    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        done = self.sim.event()
        self._pending.append((offset, size, done))
        self._signal.put(None)
        yield done


class Raid0Array(BlockDevice):
    """RAID-0 across N spindles with a fixed stripe unit.

    A request is split into per-stripe chunks issued to their spindles in
    parallel; the request completes when the slowest chunk lands, like a
    hardware RAID controller scatter/gather.
    """

    def __init__(
        self,
        sim: Simulator,
        spindles: int,
        name: str = "raid0",
        stripe_bytes: int = 64 * KB,
        profile: HddProfile = HDD_PROFILE,
        rng: np.random.Generator | None = None,
    ):
        if spindles < 1:
            raise ValueError("RAID-0 needs at least one spindle")
        super().__init__(sim, name)
        self.stripe_bytes = stripe_bytes
        rng = rng if rng is not None else np.random.default_rng(0)
        self.spindles = [
            HddSpindle(sim, name=f"{name}.d{index}", profile=profile, rng=rng)
            for index in range(spindles)
        ]

    def _chunks(self, offset: int, size: int):
        """Split [offset, offset+size) into (spindle, disk_offset, length)."""
        stripe = self.stripe_bytes
        count = len(self.spindles)
        cursor = offset
        remaining = size
        while remaining > 0:
            stripe_index = cursor // stripe
            spindle = stripe_index % count
            within = cursor - stripe_index * stripe
            length = min(remaining, stripe - within)
            # Offset on the member disk: which of *its* stripes, plus offset within.
            disk_offset = (stripe_index // count) * stripe + within
            yield spindle, disk_offset, length
            cursor += length
            remaining -= length

    def _service(self, op: IoOp, offset: int, size: int) -> ProcessGenerator:
        events = [
            self.spindles[spindle].submit(op, disk_offset, length)
            for spindle, disk_offset, length in self._chunks(offset, size)
        ]
        yield AllOf(self.sim, events)
