"""The logical plan IR: one query representation, three lowerings.

Queries are trees of declarative nodes — :class:`Scan`,
:class:`Filter`, :class:`Project`, :class:`Join`, :class:`Aggregate`,
:class:`TopN` — with **schemas derived bottom-up**: every node can
report the exact (qualified name, kind, width) layout of the tuples it
produces given a catalog of base-table schemas.  Nothing in a logical
plan names a physical operator, a server, or an exchange; those appear
only when the plan is *lowered*:

* :func:`repro.plan.lower_single` → the single-node physical operators
  (TableScan/HashJoin/HashAggregate/ExternalSort), optionally
  consulting the §3.3 cost model for INLJ-vs-hash join choice;
* :func:`repro.dist.planner.place_exchanges` → the same tree with
  :class:`Exchange` nodes inserted (shuffle / gather) wherever data
  must move between fragments, then per-fragment physical plans.

Column references are strings: either a bare column name (resolved
left-to-right, first match — the build side of a join wins ties) or a
qualified ``"table.column"``.  Qualification survives joins, so
``customer.custkey`` and ``orders.custkey`` stay distinct in a join's
output schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..engine.catalog import Column, Schema

__all__ = [
    "PlanError",
    "FieldRef",
    "PlanSchema",
    "Agg",
    "PlanNode",
    "Scan",
    "Filter",
    "Project",
    "Join",
    "Aggregate",
    "TopN",
    "Exchange",
    "output_schema",
    "walk",
    "count_nodes",
]


class PlanError(ValueError):
    """A logical plan is malformed (unknown table/column, bad agg...)."""


@dataclass(frozen=True)
class FieldRef:
    """One column of a derived schema: qualified name + storage shape."""

    name: str  # qualified, e.g. "orders.custkey" or "sum_quantity"
    kind: str = "int"  # "int" | "float" | "str"
    width: int = 8

    @property
    def short(self) -> str:
        return self.name.rsplit(".", 1)[-1]


class PlanSchema:
    """Ordered field list a node produces; column order = tuple order."""

    def __init__(self, fields: tuple[FieldRef, ...]):
        self.fields = tuple(fields)

    @property
    def row_bytes(self) -> int:
        return sum(f.width for f in self.fields) + 8  # row header

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def index_of(self, ref: str) -> int:
        """Resolve a bare or qualified reference to a tuple position."""
        if "." in ref:
            for position, f in enumerate(self.fields):
                if f.name == ref:
                    return position
        else:
            for position, f in enumerate(self.fields):
                if f.short == ref:
                    return position
        raise PlanError(
            f"no column {ref!r} in schema ({', '.join(f.name for f in self.fields)})"
        )

    def field_of(self, ref: str) -> FieldRef:
        return self.fields[self.index_of(ref)]

    def extractor(self, ref: str):
        position = self.index_of(ref)
        return lambda row: row[position]

    def concat(self, other: "PlanSchema") -> "PlanSchema":
        return PlanSchema(self.fields + other.fields)

    def describe(self) -> str:
        return ", ".join(f"{f.name} {f.kind}" for f in self.fields)


#: Aggregate functions the IR understands, with their decomposition
#: into partial components for two-phase distributed aggregation.
AGG_FNS = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class Agg:
    """One aggregate: ``fn`` over ``column`` (None for count).

    Every function decomposes into partial/final phases: count and sum
    merge by addition, min/max by themselves, avg carries (sum, count)
    partials and divides at the final phase — which is what makes
    two-phase distributed aggregation return *identical* groups to the
    single-phase plan (exactly so for int-typed inputs; float sums are
    order-sensitive, see DESIGN.md §13).
    """

    fn: str
    column: Optional[str] = None
    name: Optional[str] = None

    def __post_init__(self):
        if self.fn not in AGG_FNS:
            raise PlanError(f"unknown aggregate fn {self.fn!r} (have {AGG_FNS})")
        if self.fn != "count" and self.column is None:
            raise PlanError(f"aggregate {self.fn!r} needs a column")

    @property
    def out_name(self) -> str:
        if self.name:
            return self.name
        return self.fn if self.column is None else f"{self.fn}_{self.column.rsplit('.', 1)[-1]}"


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanNode:
    """Base logical node; subclasses define children + derived schema."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()


@dataclass(frozen=True)
class Scan(PlanNode):
    """Read one base table, with optional column-level conditions.

    ``conditions`` is a tuple of ``(column, op, value)`` triples ANDed
    together; ops are ``< <= > >= ==``.  Conditions are fused into the
    physical TableScan's predicate at lowering.
    """

    table: str
    conditions: tuple = ()


@dataclass(frozen=True)
class Filter(PlanNode):
    """One ``(column, op, value)`` condition over any child."""

    child: PlanNode
    condition: tuple

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Project(PlanNode):
    """Keep only ``columns`` (bare or qualified refs), in order."""

    child: PlanNode
    columns: tuple

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Join(PlanNode):
    """Equi-join ``left.left_key == right.right_key``.

    Output rows are left-tuple + right-tuple (the physical build side
    is always the left child).  ``semijoin`` requests Bloom-filter
    pushdown when the distributed lowering shuffles the right side.
    """

    left: PlanNode
    right: PlanNode
    left_key: str
    right_key: str
    semijoin: bool = False
    bloom_bits: int = 1 << 15

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Aggregate(PlanNode):
    """Group by ``group_by`` columns, computing ``aggs``.

    Output schema: the group columns (original qualified names and
    types) followed by one column per aggregate.  ``phase`` is
    ``single`` in source plans; the distributed lowering rewrites one
    Aggregate into a ``partial``/``final`` pair around a gather.
    """

    child: PlanNode
    group_by: tuple
    aggs: tuple = ()
    phase: str = "single"  # "single" | "partial" | "final"

    def __post_init__(self):
        if not self.group_by:
            raise PlanError("Aggregate needs at least one group-by column")
        if self.phase not in ("single", "partial", "final"):
            raise PlanError(f"unknown aggregate phase {self.phase!r}")

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class TopN(PlanNode):
    """Total-order top-N: sort by the *full tuple*, keep ``n`` rows.

    Full-tuple ordering is what makes results comparable across
    lowerings — include a primary key in the projection so it is total.
    """

    child: PlanNode
    n: int

    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class Exchange(PlanNode):
    """Data movement marker, inserted by the distributed lowering only.

    ``kind`` is ``shuffle`` (hash-route rows by ``key`` using
    ``spec.owner``) or ``gather`` (funnel every fragment's rows to the
    root).  Source plans never contain Exchange nodes; they appear in
    the placed tree that :func:`repro.dist.planner.place_exchanges`
    returns, so ``explain`` can show exactly where tuples cross the
    fabric.
    """

    child: PlanNode
    kind: str  # "shuffle" | "gather"
    key: Optional[str] = None
    spec: Any = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in ("shuffle", "gather"):
            raise PlanError(f"unknown exchange kind {self.kind!r}")
        if self.kind == "shuffle" and self.key is None:
            raise PlanError("shuffle exchange needs a routing key")

    def children(self):
        return (self.child,)


# ---------------------------------------------------------------------------
# Bottom-up schema derivation
# ---------------------------------------------------------------------------


def _scan_schema(table: str, base: Schema) -> PlanSchema:
    return PlanSchema(tuple(
        FieldRef(f"{table}.{column.name}", column.kind, column.width)
        for column in base.columns
    ))


def _agg_field(agg: Agg, child: PlanSchema) -> FieldRef:
    if agg.fn == "count":
        return FieldRef(agg.out_name, "int", 8)
    source = child.field_of(agg.column)
    if agg.fn == "avg":
        return FieldRef(agg.out_name, "float", 8)
    return FieldRef(agg.out_name, source.kind, source.width)


def output_schema(node: PlanNode, schemas: dict[str, Schema]) -> PlanSchema:
    """Derive the tuple layout ``node`` produces, bottom-up.

    ``schemas`` maps base-table names to engine :class:`Schema`s (e.g.
    :data:`repro.workloads.TPCH_SCHEMAS`).  Raises :class:`PlanError`
    on unknown tables/columns, so deriving the root schema doubles as
    plan validation.
    """
    if isinstance(node, Scan):
        if node.table not in schemas:
            raise PlanError(f"unknown table {node.table!r}")
        schema = _scan_schema(node.table, schemas[node.table])
        for column, _op, _value in node.conditions:
            schema.index_of(column)  # validate
        return schema
    if isinstance(node, Filter):
        schema = output_schema(node.child, schemas)
        schema.index_of(node.condition[0])
        return schema
    if isinstance(node, Project):
        child = output_schema(node.child, schemas)
        return PlanSchema(tuple(child.field_of(ref) for ref in node.columns))
    if isinstance(node, Join):
        left = output_schema(node.left, schemas)
        right = output_schema(node.right, schemas)
        left.index_of(node.left_key)
        right.index_of(node.right_key)
        return left.concat(right)
    if isinstance(node, Aggregate):
        child = output_schema(node.child, schemas)
        if node.phase == "final":
            # Child rows are partial rows: group cols + partial slots.
            n_group = len(node.group_by)
            group_fields = child.fields[:n_group]
            return PlanSchema(group_fields + tuple(
                _final_agg_field(agg, child) for agg in node.aggs
            ))
        group_fields = tuple(child.field_of(ref) for ref in node.group_by)
        if node.phase == "partial":
            partials: list[FieldRef] = []
            for agg in node.aggs:
                partials.extend(_partial_fields(agg, child))
            return PlanSchema(group_fields + tuple(partials))
        return PlanSchema(group_fields + tuple(
            _agg_field(agg, child) for agg in node.aggs
        ))
    if isinstance(node, (TopN, Exchange)):
        return output_schema(node.child, schemas)
    raise PlanError(f"unknown plan node {type(node).__name__}")


def _partial_fields(agg: Agg, child: PlanSchema) -> list[FieldRef]:
    """Schema slots one aggregate contributes to a partial row."""
    if agg.fn == "count":
        return [FieldRef(f"{agg.out_name}.partial", "int", 8)]
    source = child.field_of(agg.column)
    if agg.fn == "avg":
        return [
            FieldRef(f"{agg.out_name}.sum", source.kind, 8),
            FieldRef(f"{agg.out_name}.count", "int", 8),
        ]
    return [FieldRef(f"{agg.out_name}.partial", source.kind, source.width)]


def _final_agg_field(agg: Agg, partial: PlanSchema) -> FieldRef:
    if agg.fn == "count":
        return FieldRef(agg.out_name, "int", 8)
    if agg.fn == "avg":
        return FieldRef(agg.out_name, "float", 8)
    return FieldRef(agg.out_name, partial.field_of(f"{agg.out_name}.partial").kind, 8)


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


def walk(node: PlanNode):
    """Pre-order traversal of a plan tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def count_nodes(node: PlanNode, *kinds) -> int:
    """How many nodes of the given classes the tree contains."""
    return sum(1 for n in walk(node) if isinstance(n, kinds))


#: Default Column kinds for synthesized fields, re-exported so lowering
#: code can build engine Schemas from PlanSchemas when needed.
def to_engine_schema(schema: PlanSchema, key: Optional[str] = None) -> Schema:
    """Best-effort engine Schema from a derived plan schema."""
    columns = tuple(
        Column(f.name.replace(".", "_"), f.kind, f.width) for f in schema.fields
    )
    return Schema(columns=columns, key=key or columns[0].name)
